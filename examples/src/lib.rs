//! Shared helpers for examples.
