//! Tracing an adaptive application: the FLASH-Cellular proxy refines its
//! PARAMESH-style block tree every few steps, so its communication
//! pattern — and therefore its trace — keeps growing, unlike static
//! codes. This example contrasts the three FLASH regimes (paper Fig 6)
//! and shows where the bytes go.
//!
//! Run with: `cargo run -p pilgrim-examples --bin amr_tracing`

use mpi_sim::{World, WorldConfig};
use mpi_workloads::by_name;
use pilgrim::PilgrimTracer;

fn run(app: &'static str, iters: usize) -> pilgrim::GlobalTrace {
    let body = by_name(app, iters);
    let mut tracers =
        World::run(&WorldConfig::new(8), PilgrimTracer::with_defaults, move |env| body(env));
    tracers[0].take_output().trace.unwrap()
}

fn main() {
    println!("FLASH proxies on 8 ranks — trace size vs iterations (bytes):\n");
    println!("{:<12}{:>12}{:>12}{:>12}{:>12}", "iterations", "stirturb", "sedov", "cellular", "");
    for iters in [50, 100, 200, 400] {
        let st = run("stirturb", iters);
        let se = run("sedov", iters);
        let ce = run("cellular", iters);
        println!(
            "{:<12}{:>12}{:>12}{:>12}",
            iters,
            st.size_bytes(),
            se.size_bytes(),
            ce.size_bytes()
        );
    }

    println!("\nWhy Cellular grows — its trace at 200 iterations:");
    let trace = run("cellular", 200);
    let report = trace.size_report();
    println!("  CST entries:     {} (every refinement adds new partners)", trace.cst.len());
    println!("  unique grammars: {} of {} ranks", trace.unique_grammars, trace.nranks);
    println!(
        "  bytes:           CST {} + grammar {} + meta {}",
        report.cst_bytes,
        report.grammar_bytes,
        report.meta_bytes()
    );
    println!("\nStirTurb's pattern never changes: its trace is constant (the paper");
    println!("stores a multi-minute 4K-rank StirTurb run in 4 KB). Sedov sits in");
    println!("between: only its dt-probe source drifts every ~100 iterations.");
}
