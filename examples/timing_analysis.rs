//! Non-aggregated timing (§3.2): collect lossy per-call durations and
//! intervals with a 20% error bound (b = 1.2), decompress them, and
//! reconstruct per-call entry/exit times.
//!
//! Run with: `cargo run -p pilgrim-examples --bin timing_analysis`

use mpi_sim::datatype::BasicType;
use mpi_sim::types::ReduceOp;
use mpi_sim::{World, WorldConfig};
use pilgrim::timing::reconstruct_times;
use pilgrim::{PilgrimConfig, PilgrimTracer, TimingMode};

fn main() {
    let base = 1.2;
    let cfg = PilgrimConfig::new().timing(TimingMode::Lossy { base });
    let mut tracers = World::run(
        &WorldConfig::new(4),
        |rank| PilgrimTracer::new(rank, cfg),
        |env| {
            let world = env.comm_world();
            let dt = env.basic(BasicType::Double);
            let buf = env.malloc(8);
            for _ in 0..500 {
                env.compute(20_000);
                env.allreduce(buf, buf, 1, dt, ReduceOp::Max, world);
            }
        },
    );
    let trace = tracers[0].take_output().trace.unwrap();
    let report = trace.size_report();

    println!("timing mode: lossy, b = {base} (relative error <= {:.0}%)\n", (base - 1.0) * 100.0);
    println!("call trace:        {} bytes", report.core_total());
    println!(
        "duration grammars: {} bytes ({} unique)",
        report.duration_bytes,
        trace.duration_grammars.len()
    );
    println!(
        "interval grammars: {} bytes ({} unique)",
        report.interval_bytes,
        trace.interval_grammars.len()
    );

    // Reconstruct rank 1's timeline from the compressed streams.
    let rank = 1usize;
    let terms = trace.decode_rank(rank);
    let dg = &trace.duration_grammars[trace.duration_rank_map[rank] as usize];
    let ig = &trace.interval_grammars[trace.interval_rank_map[rank] as usize];
    let times = reconstruct_times(base, &terms, &dg.expand(), &ig.expand());

    println!("\nreconstructed timeline of rank {rank} (simulated ns):");
    println!("{:<8}{:>16}{:>16}{:>12}", "call", "t_start", "t_end", "duration");
    for (i, (t0, t1)) in times.iter().enumerate().take(6) {
        println!("{i:<8}{t0:>16.0}{t1:>16.0}{:>12.0}", t1 - t0);
    }
    println!("...");
    let last = times.len() - 1;
    let (t0, t1) = times[last];
    println!("{last:<8}{t0:>16.0}{t1:>16.0}{:>12.0}", t1 - t0);

    // Compressed timing vs raw 16-byte timestamps per call.
    let raw = terms.len() * 16;
    let comp = report.duration_bytes + report.interval_bytes;
    println!(
        "\ncompression: {} calls x 16 B raw = {} B  ->  {} B ({:.1}x)",
        terms.len(),
        raw * trace.nranks,
        comp,
        (raw * trace.nranks) as f64 / comp as f64
    );
}
