//! Quickstart: trace a small MPI program with Pilgrim, inspect the
//! compressed trace, decode it, and verify it is lossless.
//!
//! Run with: `cargo run -p pilgrim-examples --bin quickstart`

use mpi_sim::datatype::BasicType;
use mpi_sim::types::ReduceOp;
use mpi_sim::{World, WorldConfig};
use pilgrim::{decode_rank_calls, verify_lossless, PilgrimConfig, PilgrimTracer};

fn main() {
    // 1. Run a 4-rank MPI program with the Pilgrim tracer attached.
    //    (capture_reference keeps the raw records so we can verify.)
    let cfg = PilgrimConfig::new().capture_reference(true);
    let mut tracers = World::run(
        &WorldConfig::new(4),
        |rank| PilgrimTracer::new(rank, cfg),
        |env| {
            let world = env.comm_world();
            let dt = env.basic(BasicType::Double);
            let buf = env.malloc(80);
            let sum = env.malloc(8);
            for _ in 0..1000 {
                env.bcast(buf, 10, dt, 0, world);
                env.compute(5_000);
                env.allreduce(sum, sum, 1, dt, ReduceOp::Sum, world);
            }
        },
    );

    // 2. Rank 0 holds the merged trace after MPI_Finalize.
    let trace = tracers[0].take_output().trace.expect("rank 0 trace");
    let report = trace.size_report();
    println!("ranks:            {}", trace.nranks);
    println!("MPI calls traced: {}", trace.rank_lengths.iter().sum::<u64>());
    println!("unique grammars:  {}", trace.unique_grammars);
    println!("CST entries:      {}", trace.cst.len());
    println!(
        "trace size:       {} bytes  (CST {} + grammar {} + meta {})",
        trace.size_bytes(),
        report.cst_bytes,
        report.grammar_bytes,
        report.meta_bytes()
    );

    // 3. Decode rank 2's calls back out of the compressed trace.
    let calls = decode_rank_calls(&trace, 2).expect("rank 2 decodes");
    println!("\nfirst three decoded calls of rank 2:");
    for call in calls.iter().take(3) {
        println!("  func id {} with {} recorded arguments", call.func, call.args.len());
    }

    // 4. Verify losslessness against the captured reference.
    let refs: Vec<_> = tracers.iter().map(|t| t.captured().to_vec()).collect();
    let v = verify_lossless(&trace, &refs).expect("trace is lossless");
    println!("\nverified {} calls / {} arguments decode exactly", v.calls_checked, v.args_checked);

    // 5. The trace round-trips through its file format.
    let bytes = trace.serialize();
    let back = pilgrim::GlobalTrace::decode(&bytes).unwrap();
    assert_eq!(back.decode_all_ranks(), trace.decode_all_ranks());
    println!("serialized file round-trips at {} bytes", bytes.len());

    // 6. Query the compressed trace without expanding it: indexed random
    //    access and a grammar-aware communication matrix.
    let index = pilgrim::TraceIndex::build(&trace);
    let call_500 = index.call_at(&trace, 2, 500).expect("rank 2 has 3000 calls");
    println!("\nrank 2 call #500 is func id {} (via O(depth) random access)", call_500.func);
    let engine = pilgrim::QueryEngine::new(&trace, &index);
    let matrix = engine.comm_matrix();
    println!("p2p messages sent: {} (this workload is all collectives)", matrix.total_sends());
}
