//! The paper's §4.1 headline in miniature: a 2D stencil's trace stays the
//! same size no matter how many ranks or iterations you run, because the
//! relative-rank encoding collapses every interior rank to one signature
//! set and counted Sequitur rules absorb the loop.
//!
//! Run with: `cargo run -p pilgrim-examples --bin stencil_trace`

use mpi_sim::{World, WorldConfig};
use mpi_workloads::by_name;
use pilgrim::PilgrimTracer;

fn trace_size(nranks: usize, iters: usize) -> (usize, usize) {
    let body = by_name("stencil2d", iters);
    let mut tracers =
        World::run(&WorldConfig::new(nranks), PilgrimTracer::with_defaults, move |env| body(env));
    let trace = tracers[0].take_output().trace.unwrap();
    (trace.size_bytes(), trace.unique_grammars)
}

fn main() {
    println!("2D 5-point stencil (non-periodic), 50 iterations:\n");
    println!("{:<8}{:>14}{:>18}", "ranks", "trace bytes", "unique grammars");
    for n in [4, 9, 16, 25, 36, 49] {
        let (size, uniq) = trace_size(n, 50);
        println!("{n:<8}{size:>14}{uniq:>18}");
    }
    println!("\nAll nine position classes (4 corners, 4 edges, interior) exist on a");
    println!("3x3 mesh, so the trace stops growing at 9 ranks — the paper's result.\n");

    println!("{:<12}{:>14}", "iterations", "trace bytes");
    for iters in [10, 100, 1000, 10_000] {
        let (size, _) = trace_size(9, iters);
        println!("{iters:<12}{size:>14}");
    }
    println!("\nCounted grammar rules store a loop of N iterations in O(1) space:");
    println!("10,000 iterations cost only a few more counter bytes than 10.");
}
