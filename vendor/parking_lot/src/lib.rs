//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: [`Mutex`] whose `lock`
//! returns a guard directly (no poisoning), and [`Condvar`] whose waits
//! take `&mut MutexGuard`. Poisoned std locks are transparently recovered
//! — a panicking rank thread must not wedge the whole simulated world.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait*` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside of wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside of wait")
    }
}

/// Result of a timed wait; mirrors parking_lot's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose waits take `&mut MutexGuard`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
