//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! benchmark groups, `iter`/`iter_batched`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's full statistical
//! machinery. Good enough to spot order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

/// How batched inputs are sized; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Prevents the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None, sample_size: 20 }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!("  {:>12.1} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            format!("  {:>12.1} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{name:<44} median {median:>12.3?}{rate}");
}

/// Declares a benchmark group in criterion's syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
