//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `ident in strategy` bindings, and `prop_assert*` early returns;
//! * [`Strategy`] with `prop_map`, integer-range / tuple / `any::<T>()`
//!   strategies, `collection::vec`, `option::of`, [`Just`], and a
//!   character-class string strategy (`"[a-z0-9]{0,64}"` style patterns).
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generating seed so it can be replayed by rerunning the test (case
//! generation is deterministic per test name and case index).

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator seeding each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test name and case index so every
    /// run replays the same cases.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config + case errors
// ---------------------------------------------------------------------------

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (carried out of the case body).
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128 + 1) as u64;
                (s as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident : $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T` (see [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// String strategy from a character-class pattern like `"[a-z0-9 _-]{0,64}"`.
///
/// Supports exactly the `[class]{min,max}` shape (with `-` ranges inside the
/// class and a literal `-` last), which is the only regex form the
/// workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = counts.split_once(',')?;
    let (min, max) = (min_s.trim().parse().ok()?, max_s.trim().parse().ok()?);
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || min > max {
        return None;
    }
    Some((alphabet, min, max))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s: `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test harness macro; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {case}/{}: {}",
                            stringify!($name),
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let (alpha, min, max) = super::parse_class_pattern("[a-c_ -]{2,5}").unwrap();
        assert!(alpha.contains(&'a') && alpha.contains(&'c'));
        assert!(alpha.contains(&'_') && alpha.contains(&' ') && alpha.contains(&'-'));
        assert_eq!((min, max), (2, 5));
    }

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = crate::collection::vec(0u32..10, 1..8);
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 5u32..9, w in any::<bool>()) {
            prop_assert!((5..9).contains(&v));
            let _ = w;
        }

        #[test]
        fn mapped_strategies_apply(v in (0u32..4).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 8);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn strings_match_class(s in "[ab]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
