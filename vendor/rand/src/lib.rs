//! Offline stand-in for `rand`: the API subset the workspace uses
//! (`SmallRng::seed_from_u64` + `Rng::gen_range`), implemented with
//! xoshiro256** so sequences are deterministic, fast, and well mixed.
//! Not cryptographic; simulation jitter only.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: raw output plus uniform range sampling.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |bound| uniform_below(self, bound))
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Rejection-free-enough uniform sample in `[0, bound)` (`bound > 0`).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sample range");
    // Lemire's multiply-shift; a single rejection loop removes bias.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges that can produce a uniform sample given a `[0, bound)` sampler.
pub trait SampleRange<T> {
    fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, below: &mut dyn FnMut(u64) -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return below(u64::MAX) as $t; // practically unreachable
                }
                start + below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u32, u64, usize);

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the small, fast generator rand uses for `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, as rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
