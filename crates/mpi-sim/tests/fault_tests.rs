//! Fault-injection world tests: killed ranks, degraded survivors, and the
//! abort path that keeps genuine panics from deadlocking blocked peers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpi_sim::datatype::BasicType;
use mpi_sim::hooks::{CallRec, TraceCtx, Tracer};
use mpi_sim::types::ReduceOp;
use mpi_sim::{Env, FaultPlan, NullTracer, World, WorldConfig};

/// Counts traced calls; used to check kill points are honored exactly.
struct CountingTracer {
    calls: u64,
}

impl Tracer for CountingTracer {
    fn on_call(&mut self, _ctx: &TraceCtx<'_>, _rec: &CallRec, _t0: u64, _t1: u64) {
        self.calls += 1;
    }
}

/// A deterministic workload: iterations of world all-reduce plus a ring
/// sendrecv with concrete neighbors (no wildcards), so every rank's trace
/// is a pure function of (rank, size, iters).
fn ring_and_allreduce(env: &mut Env, iters: usize) {
    let me = env.world_rank();
    let n = env.world_size();
    let world = env.comm_world();
    let dt = env.basic(BasicType::LongLong);
    let buf = env.malloc(8);
    let tmp = env.malloc(8);
    for i in 0..iters {
        env.heap_write_u64s(buf, &[(me + i) as u64]);
        env.allreduce(buf, tmp, 1, dt, ReduceOp::Max, world);
        let right = ((me + 1) % n) as i32;
        let left = ((me + n - 1) % n) as i32;
        env.sendrecv(buf, 1, dt, right, 7, tmp, 1, dt, left, 7, world);
    }
}

fn faulty_cfg(n: usize, plan: FaultPlan) -> WorldConfig {
    let mut cfg = WorldConfig::new(n);
    cfg.faults = Some(plan);
    cfg
}

#[test]
fn killed_rank_mid_run_world_completes() {
    // Kill rank 3 of 8 after its 6th traced call (init + a few iterations
    // in). The world must finish without deadlock, report exactly that
    // failure, and hand back tracers for every survivor.
    let plan = FaultPlan::new(0xFA11).kill(3, 6);
    let out = World::run_faulty(
        &faulty_cfg(8, plan),
        |_| CountingTracer { calls: 0 },
        |env| ring_and_allreduce(env, 20),
    );
    assert_eq!(out.failures.len(), 1);
    assert_eq!(out.failures[0].rank, 3);
    assert_eq!(out.failures[0].calls, 6);
    assert!(out.tracers[3].is_none());
    assert_eq!(out.survivors().len(), 7);
    for (rank, tracer) in out.tracers.iter().enumerate() {
        if rank != 3 {
            let t = tracer.as_ref().expect("survivor tracer");
            assert!(t.calls >= 1, "rank {rank} traced nothing");
        }
    }
    // The killed rank traced exactly as many calls as the plan allowed.
    assert!(out.bailed.contains(&2) || out.bailed.contains(&4), "neighbors should have bailed");
}

#[test]
fn genuine_panic_mid_collective_unblocks_all_ranks() {
    // Regression for the abort path: one rank dies with a *real* panic
    // while everyone else is parked inside a collective. The blocked ranks
    // must unblock (via the abort flag in their wait loops) and the panic
    // must propagate to the caller instead of deadlocking the join.
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::run(
            &WorldConfig::new(6),
            |_| NullTracer,
            |env| {
                let world = env.comm_world();
                let dt = env.basic(BasicType::LongLong);
                let buf = env.malloc(8);
                let tmp = env.malloc(8);
                if env.world_rank() == 2 {
                    panic!("injected genuine failure");
                }
                // Everyone else blocks in a collective that can never complete.
                env.allreduce(buf, tmp, 1, dt, ReduceOp::Sum, world);
            },
        );
    }));
    let err = result.expect_err("panic must propagate");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("injected genuine failure") || msg.contains("abort"),
        "unexpected panic payload: {msg}"
    );
}

#[test]
fn kill_during_collective_survivors_bail() {
    // Rank 1 dies right after init; everyone else is in an all-reduce with
    // it and must detect the dead member, bail, and still reach finalize.
    let plan = FaultPlan::new(7).kill(1, 1);
    let out =
        World::run_faulty(&faulty_cfg(4, plan), |_| NullTracer, |env| ring_and_allreduce(env, 4));
    assert_eq!(out.failures, vec![mpi_sim::RankFailure { rank: 1, calls: 1 }]);
    assert_eq!(out.survivors(), vec![0, 2, 3]);
    assert_eq!(out.bailed, vec![0, 2, 3]);
}

#[test]
fn fault_plans_are_deterministic() {
    let run_once = || {
        let plan = FaultPlan::new(0xD373).kill(5, 9);
        let out = World::run_faulty(
            &faulty_cfg(8, plan),
            |_| CountingTracer { calls: 0 },
            |env| ring_and_allreduce(env, 12),
        );
        let counts: Vec<Option<u64>> =
            out.tracers.iter().map(|t| t.as_ref().map(|t| t.calls)).collect();
        (counts, out.failures, out.bailed)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn delays_and_stalls_do_not_change_results() {
    // Message delays and a rank stall perturb timing, never semantics.
    let total = Arc::new(AtomicU64::new(0));
    let t = total.clone();
    let plan = FaultPlan::new(42).delay_messages(0.5, 3_000).stall(2, 1_000_000);
    World::run_faulty(
        &faulty_cfg(4, plan),
        |_| NullTracer,
        move |env| {
            let me = env.world_rank();
            let world = env.comm_world();
            let dt = env.basic(BasicType::LongLong);
            let buf = env.malloc(8);
            let tmp = env.malloc(8);
            env.heap_write_u64s(buf, &[me as u64 + 1]);
            env.allreduce(buf, tmp, 1, dt, ReduceOp::Sum, world);
            t.fetch_add(env.heap_read_u64s(tmp, 1)[0], Ordering::Relaxed);
        },
    );
    // 4 ranks each saw the sum 1+2+3+4 = 10.
    assert_eq!(total.load(Ordering::Relaxed), 40);
}

#[test]
fn world_run_panics_on_killed_rank() {
    let plan = FaultPlan::new(1).kill(1, 2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::run(
            &faulty_cfg(2, plan),
            |_| NullTracer,
            |env| {
                ring_and_allreduce(env, 2);
            },
        );
    }));
    assert!(result.is_err(), "World::run must refuse fault-plan kills");
}
