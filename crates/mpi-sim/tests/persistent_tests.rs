//! Persistent-request semantics: init/start/wait cycles, startall,
//! inactive-request behaviour in the wait/test families.

use mpi_sim::datatype::BasicType;
use mpi_sim::request::REQUEST_NULL;
use mpi_sim::{Env, NullTracer, World, WorldConfig, PROC_NULL};

fn run<B: Fn(&mut Env) + Send + Sync + 'static>(n: usize, body: B) {
    World::run(&WorldConfig::new(n), |_| NullTracer, body);
}

#[test]
fn persistent_ping_pong() {
    run(2, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        let mut req = if me == 0 {
            env.send_init(buf, 1, dt, 1, 5, world)
        } else {
            env.recv_init(buf, 1, dt, 0, 5, world)
        };
        for i in 0..20u64 {
            if me == 0 {
                env.heap_write_u64s(buf, &[i * 3]);
            }
            env.start(req);
            let st = env.wait(&mut req);
            // The handle survives completion (persistent semantics).
            assert_ne!(req, REQUEST_NULL);
            if me == 1 {
                assert_eq!(st.source, 0);
                assert_eq!(env.heap_read_u64s(buf, 1)[0], i * 3);
            }
            env.barrier(world);
        }
        env.request_free(&mut req);
        assert_eq!(req, REQUEST_NULL);
    });
}

#[test]
fn startall_halo_exchange() {
    run(4, |env| {
        let me = env.world_rank();
        let n = env.world_size();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(8);
        env.heap_write_u64s(sbuf, &[me as u64 + 100]);
        let left = ((me + n - 1) % n) as i32;
        let right = ((me + 1) % n) as i32;
        let reqs = vec![
            env.recv_init(rbuf, 1, dt, left, 0, world),
            env.send_init(sbuf, 1, dt, right, 0, world),
        ];
        for _ in 0..10 {
            env.startall(&reqs);
            let mut active = reqs.clone();
            env.waitall(&mut active);
            // Persistent entries survive waitall in the caller's array.
            assert!(active.iter().all(|&r| r != REQUEST_NULL));
            assert_eq!(env.heap_read_u64s(rbuf, 1)[0], left as u64 + 100);
        }
        for mut r in reqs {
            env.request_free(&mut r);
        }
    });
}

#[test]
fn wait_on_inactive_persistent_returns_immediately() {
    run(1, |env| {
        let world = env.comm_world();
        let dt = env.basic(BasicType::Int);
        let buf = env.malloc(4);
        let mut req = env.send_init(buf, 1, dt, PROC_NULL, 0, world);
        // Never started: wait must not block, status is empty.
        let st = env.wait(&mut req);
        assert_eq!(st.source, PROC_NULL);
        assert_ne!(req, REQUEST_NULL);
        env.request_free(&mut req);
    });
}

#[test]
fn waitany_ignores_inactive_persistents() {
    run(2, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        if me == 0 {
            let p = env.recv_init(buf, 1, dt, 1, 0, world);
            // Inactive persistent + nothing else: waitany returns None
            // (MPI_UNDEFINED) instead of spinning forever.
            let mut reqs = vec![p, REQUEST_NULL];
            assert!(env.waitany(&mut reqs).is_none());
            // Start it and the same call completes it.
            env.start(p);
            let mut reqs = vec![p];
            let (idx, st) = env.waitany(&mut reqs).expect("completes");
            assert_eq!(idx, 0);
            assert_eq!(st.source, 1);
            let mut p = p;
            env.request_free(&mut p);
        } else {
            // The inactive-request None check on rank 0 is purely local:
            // the message parks in the unexpected queue until start().
            env.send(buf, 1, dt, 0, 0, world);
        }
    });
}

#[test]
fn test_family_with_persistent_requests() {
    run(2, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        if me == 0 {
            let p = env.recv_init(buf, 1, dt, 1, 7, world);
            env.start(p);
            let mut h = p;
            let mut completions = 0;
            while completions == 0 {
                if env.test(&mut h).is_some() {
                    completions += 1;
                }
            }
            assert_ne!(h, REQUEST_NULL, "persistent handle survives test");
            let mut p = p;
            env.request_free(&mut p);
        } else {
            env.send(buf, 1, dt, 0, 7, world);
        }
    });
}
