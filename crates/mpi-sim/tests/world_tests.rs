//! End-to-end simulator tests: multi-rank worlds exercising p2p,
//! collectives, communicator management, requests, and the tracer seam.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpi_sim::datatype::BasicType;
use mpi_sim::hooks::{CallRec, TraceCtx, Tracer};
use mpi_sim::types::ReduceOp;
use mpi_sim::{Env, FuncId, NullTracer, World, WorldConfig, ANY_SOURCE, ANY_TAG, PROC_NULL};

fn run<B: Fn(&mut Env) + Send + Sync + 'static>(n: usize, body: B) {
    World::run(&WorldConfig::new(n), |_| NullTracer, body);
}

#[test]
fn ring_pass_u64() {
    run(4, |env| {
        let me = env.world_rank();
        let n = env.world_size();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        if me == 0 {
            env.heap_write_u64s(buf, &[100]);
            env.send(buf, 1, dt, 1, 0, world);
            env.recv(buf, 1, dt, (n - 1) as i32, 0, world);
            assert_eq!(env.heap_read_u64s(buf, 1), vec![100 + n as u64 - 1]);
        } else {
            env.recv(buf, 1, dt, (me - 1) as i32, 0, world);
            let v = env.heap_read_u64s(buf, 1)[0];
            env.heap_write_u64s(buf, &[v + 1]);
            env.send(buf, 1, dt, ((me + 1) % n) as i32, 0, world);
        }
    });
}

#[test]
fn any_source_recv() {
    run(3, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        if me == 0 {
            let mut seen = Vec::new();
            for _ in 0..2 {
                let st = env.recv(buf, 1, dt, ANY_SOURCE, ANY_TAG, world);
                assert_eq!(env.heap_read_u64s(buf, 1)[0], st.source as u64 * 7);
                seen.push(st.source);
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![1, 2]);
        } else {
            env.heap_write_u64s(buf, &[me as u64 * 7]);
            env.send(buf, 1, dt, 0, me as i32, world);
        }
    });
}

#[test]
fn proc_null_communication_is_noop() {
    run(2, |env| {
        let world = env.comm_world();
        let dt = env.basic(BasicType::Int);
        let buf = env.malloc(4);
        env.send(buf, 1, dt, PROC_NULL, 5, world);
        let st = env.recv(buf, 1, dt, PROC_NULL, 5, world);
        assert_eq!(st.source, PROC_NULL);
        assert_eq!(st.count, 0);
        let mut r = env.irecv(buf, 1, dt, PROC_NULL, 5, world);
        env.wait(&mut r);
    });
}

#[test]
fn isend_irecv_waitall_exchange() {
    run(4, |env| {
        let me = env.world_rank();
        let n = env.world_size();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let left = ((me + n - 1) % n) as i32;
        let right = ((me + 1) % n) as i32;
        let sbuf = env.malloc(8);
        let rbuf_l = env.malloc(8);
        let rbuf_r = env.malloc(8);
        env.heap_write_u64s(sbuf, &[me as u64]);
        let mut reqs = vec![
            env.irecv(rbuf_l, 1, dt, left, 1, world),
            env.irecv(rbuf_r, 1, dt, right, 2, world),
            env.isend(sbuf, 1, dt, right, 1, world),
            env.isend(sbuf, 1, dt, left, 2, world),
        ];
        env.waitall(&mut reqs);
        assert_eq!(env.heap_read_u64s(rbuf_l, 1)[0], left as u64);
        assert_eq!(env.heap_read_u64s(rbuf_r, 1)[0], right as u64);
    });
}

#[test]
fn waitany_completes_everything() {
    run(3, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        if me == 0 {
            let bufs: Vec<_> = (0..4).map(|_| env.malloc(8)).collect();
            let mut reqs: Vec<_> =
                bufs.iter().map(|&b| env.irecv(b, 1, dt, ANY_SOURCE, ANY_TAG, world)).collect();
            let mut done = 0;
            while let Some((_idx, st)) = env.waitany(&mut reqs) {
                assert!(st.source == 1 || st.source == 2);
                done += 1;
            }
            assert_eq!(done, 4);
        } else {
            let buf = env.malloc(8);
            env.heap_write_u64s(buf, &[me as u64]);
            env.send(buf, 1, dt, 0, 0, world);
            env.send(buf, 1, dt, 0, 1, world);
        }
    });
}

#[test]
fn testsome_loop_drains_requests() {
    run(3, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        if me == 0 {
            let bufs: Vec<_> = (0..2).map(|_| env.malloc(8)).collect();
            let mut reqs: Vec<_> = bufs
                .iter()
                .zip([1, 2])
                .map(|(&b, src)| env.irecv(b, 1, dt, src, 9, world))
                .collect();
            let mut completed = 0;
            while completed < 2 {
                completed += env.testsome(&mut reqs).len();
            }
        } else {
            let buf = env.malloc(8);
            env.send(buf, 1, dt, 0, 9, world);
        }
    });
}

#[test]
fn collectives_compute_correct_results() {
    run(4, |env| {
        let me = env.world_rank() as u64;
        let n = env.world_size() as u64;
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(8 * n);
        env.heap_write_u64s(sbuf, &[me + 1]);

        env.allreduce(sbuf, rbuf, 1, dt, ReduceOp::Sum, world);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], n * (n + 1) / 2);

        env.allreduce(sbuf, rbuf, 1, dt, ReduceOp::Max, world);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], n);

        env.reduce(sbuf, rbuf, 1, dt, ReduceOp::Min, 0, world);
        if me == 0 {
            assert_eq!(env.heap_read_u64s(rbuf, 1)[0], 1);
        }

        env.allgather(sbuf, 1, dt, rbuf, 1, dt, world);
        assert_eq!(env.heap_read_u64s(rbuf, n as usize), (1..=n).collect::<Vec<_>>());

        env.scan(sbuf, rbuf, 1, dt, ReduceOp::Sum, world);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], (me + 1) * (me + 2) / 2);

        env.barrier(world);

        // Bcast from rank 2.
        if me == 2 {
            env.heap_write_u64s(sbuf, &[4242]);
        }
        env.bcast(sbuf, 1, dt, 2, world);
        assert_eq!(env.heap_read_u64s(sbuf, 1)[0], 4242);
    });
}

#[test]
fn alltoall_transpose() {
    run(3, |env| {
        let me = env.world_rank() as u64;
        let n = env.world_size() as u64;
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8 * n);
        let rbuf = env.malloc(8 * n);
        let vals: Vec<u64> = (0..n).map(|j| me * 10 + j).collect();
        env.heap_write_u64s(sbuf, &vals);
        env.alltoall(sbuf, 1, dt, rbuf, 1, dt, world);
        let got = env.heap_read_u64s(rbuf, n as usize);
        let want: Vec<u64> = (0..n).map(|j| j * 10 + me).collect();
        assert_eq!(got, want);
    });
}

#[test]
fn gather_scatter_roundtrip() {
    run(4, |env| {
        let me = env.world_rank() as u64;
        let n = env.world_size() as u64;
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let one = env.malloc(8);
        let all = env.malloc(8 * n);
        env.heap_write_u64s(one, &[me * me]);
        env.gather(one, 1, dt, all, 1, dt, 0, world);
        if me == 0 {
            assert_eq!(
                env.heap_read_u64s(all, n as usize),
                (0..n).map(|i| i * i).collect::<Vec<_>>()
            );
        }
        env.scatter(all, 1, dt, one, 1, dt, 0, world);
        assert_eq!(env.heap_read_u64s(one, 1)[0], me * me);
    });
}

#[test]
fn alltoallv_variable_chunks() {
    run(3, |env| {
        let me = env.world_rank() as u64;
        let n = env.world_size();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        // Rank r sends (j+1) values of r*100+j to rank j.
        let total_send: u64 = (1..=n as u64).sum();
        let sbuf = env.malloc(8 * total_send);
        let mut sendcounts = Vec::new();
        let mut sdispls = Vec::new();
        let mut vals = Vec::new();
        for j in 0..n as u64 {
            sdispls.push(vals.len() as i64);
            sendcounts.push(j + 1);
            for _ in 0..=j {
                vals.push(me * 100 + j);
            }
        }
        env.heap_write_u64s(sbuf, &vals);
        // Everyone receives (me+1) values from each rank.
        let per = me + 1;
        let rbuf = env.malloc(8 * per * n as u64);
        let recvcounts = vec![per; n];
        let rdispls: Vec<i64> = (0..n as i64).map(|i| i * per as i64).collect();
        env.alltoallv(sbuf, &sendcounts, &sdispls, dt, rbuf, &recvcounts, &rdispls, dt, world);
        let got = env.heap_read_u64s(rbuf, (per as usize) * n);
        for (i, chunk) in got.chunks(per as usize).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as u64 * 100 + me));
        }
    });
}

#[test]
fn comm_split_even_odd() {
    run(4, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let color = (me % 2) as i32;
        let sub = env.comm_split(world, color, me as i32).expect("defined color");
        assert_eq!(env.comm_size(sub), 2);
        assert_eq!(env.comm_rank(sub), me / 2);
        // Exchange within the subcomm.
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(16);
        env.heap_write_u64s(sbuf, &[me as u64]);
        env.allgather(sbuf, 1, dt, rbuf, 1, dt, sub);
        let got = env.heap_read_u64s(rbuf, 2);
        assert_eq!(got, vec![color as u64, color as u64 + 2]);
        env.comm_free(sub);
    });
}

#[test]
fn comm_split_undefined_color() {
    run(3, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let color = if me == 0 { -3 } else { 0 };
        let sub = env.comm_split(world, color, 0);
        if me == 0 {
            assert!(sub.is_none());
        } else {
            let sub = sub.expect("members get a communicator");
            assert_eq!(env.comm_size(sub), 2);
        }
    });
}

#[test]
fn comm_dup_isolates_traffic() {
    run(2, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dup = env.comm_dup(world);
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        // Same tag on two communicators must not cross-match.
        if me == 0 {
            env.heap_write_u64s(buf, &[111]);
            env.send(buf, 1, dt, 1, 7, world);
            env.heap_write_u64s(buf, &[222]);
            env.send(buf, 1, dt, 1, 7, dup);
        } else {
            env.recv(buf, 1, dt, 0, 7, dup);
            assert_eq!(env.heap_read_u64s(buf, 1)[0], 222);
            env.recv(buf, 1, dt, 0, 7, world);
            assert_eq!(env.heap_read_u64s(buf, 1)[0], 111);
        }
    });
}

#[test]
fn comm_idup_completes_via_wait() {
    run(3, |env| {
        let world = env.comm_world();
        let (newcomm, mut req) = env.comm_idup(world);
        env.wait(&mut req);
        assert_eq!(env.comm_size(newcomm), 3);
        env.barrier(newcomm);
        env.comm_free(newcomm);
    });
}

#[test]
fn comm_idup_completes_via_test_loop() {
    run(2, |env| {
        let world = env.comm_world();
        let (newcomm, mut req) = env.comm_idup(world);
        while env.test(&mut req).is_none() {}
        env.barrier(newcomm);
    });
}

#[test]
fn comm_create_subset() {
    run(4, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let wg = env.comm_group(world);
        let sub_g = env.group_incl(wg, &[1, 3]);
        let sub = env.comm_create(world, sub_g);
        if me == 1 || me == 3 {
            let sub = sub.expect("group member");
            assert_eq!(env.comm_size(sub), 2);
            env.barrier(sub);
        } else {
            assert!(sub.is_none());
        }
        env.group_free(sub_g);
        env.group_free(wg);
    });
}

#[test]
fn intercomm_create_and_merge() {
    run(4, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        // Split into low {0,1} and high {2,3} halves.
        let color = (me >= 2) as i32;
        let local = env.comm_split(world, color, me as i32).unwrap();
        let remote_leader = if color == 0 { 2 } else { 0 };
        let inter = env.intercomm_create(local, 0, world, remote_leader, 42);
        // P2p across the intercomm: rank i talks to remote rank i.
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        let peer = (me % 2) as i32;
        env.heap_write_u64s(buf, &[me as u64]);
        let mut sreq = env.isend(buf, 1, dt, peer, 3, inter);
        let rbuf = env.malloc(8);
        env.recv(rbuf, 1, dt, peer, 3, inter);
        env.wait(&mut sreq);
        let expected = if me >= 2 { me - 2 } else { me + 2 };
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], expected as u64);
        // Merge: low group first.
        let merged = env.intercomm_merge(inter, color == 1);
        assert_eq!(env.comm_size(merged), 4);
        assert_eq!(env.comm_rank(merged), me, "low-first merge preserves world order here");
        env.barrier(merged);
    });
}

#[test]
fn derived_datatype_vector_transfer() {
    run(2, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let int = env.basic(BasicType::Int);
        // Every other int out of 8.
        let vec_t = env.type_vector(4, 1, 2, int);
        env.type_commit(vec_t);
        let buf = env.malloc(32);
        if me == 0 {
            let vals: Vec<u8> = (0..32).collect();
            env.heap_write(buf, &vals);
            env.send(buf, 1, vec_t, 1, 0, world);
        } else {
            let st = env.recv(buf, 1, vec_t, 0, 0, world);
            assert_eq!(st.count, 16, "vector of 4 ints sends 16 bytes");
            // Strided unpack: elements land at offsets 0, 8, 16, 24.
            assert_eq!(env.heap_read(buf, 4), vec![0, 1, 2, 3]);
            assert_eq!(env.heap_read(buf + 8, 4), vec![8, 9, 10, 11]);
        }
        env.type_free(vec_t);
    });
}

#[test]
fn probe_then_recv() {
    run(2, |env| {
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(24);
        if me == 0 {
            env.heap_write_u64s(buf, &[1, 2, 3]);
            env.send(buf, 3, dt, 1, 13, world);
        } else {
            let st = env.probe(ANY_SOURCE, ANY_TAG, world);
            assert_eq!(st.tag, 13);
            assert_eq!(st.count, 24);
            env.recv(buf, 3, dt, st.source, st.tag, world);
            assert_eq!(env.heap_read_u64s(buf, 3), vec![1, 2, 3]);
        }
    });
}

#[test]
fn ibarrier_and_iallreduce() {
    run(3, |env| {
        let me = env.world_rank() as u64;
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(8);
        env.heap_write_u64s(sbuf, &[me + 1]);
        let mut r1 = env.iallreduce(sbuf, rbuf, 1, dt, ReduceOp::Prod, world);
        let mut r2 = env.ibarrier(world);
        env.wait(&mut r1);
        env.wait(&mut r2);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], 6);
    });
}

#[test]
fn sendrecv_shift() {
    run(4, |env| {
        let me = env.world_rank();
        let n = env.world_size();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(8);
        env.heap_write_u64s(sbuf, &[me as u64]);
        let right = ((me + 1) % n) as i32;
        let left = ((me + n - 1) % n) as i32;
        let st = env.sendrecv(sbuf, 1, dt, right, 0, rbuf, 1, dt, left, 0, world);
        assert_eq!(st.source, left);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], left as u64);
    });
}

/// A tracer that counts calls per function and checks timestamps.
#[derive(Default)]
struct CountingTracer {
    calls: Vec<(FuncId, u64, u64)>,
    allocs: usize,
    frees: usize,
    finalized: bool,
}

impl Tracer for CountingTracer {
    fn on_call(&mut self, _ctx: &TraceCtx<'_>, rec: &CallRec, t0: u64, t1: u64) {
        assert!(t1 >= t0, "exit before entry");
        self.calls.push((rec.func, t0, t1));
    }
    fn on_alloc(&mut self, _addr: u64, _size: u64) {
        self.allocs += 1;
    }
    fn on_free(&mut self, _addr: u64) {
        self.frees += 1;
    }
    fn on_finalize(&mut self, _ctx: &TraceCtx<'_>) {
        self.finalized = true;
    }
}

#[test]
fn tracer_observes_all_calls_and_allocs() {
    let tracers = World::run(
        &WorldConfig::new(2),
        |_| CountingTracer::default(),
        |env| {
            let me = env.world_rank();
            let world = env.comm_world();
            let dt = env.basic(BasicType::Int);
            let buf = env.malloc(4);
            if me == 0 {
                env.send(buf, 1, dt, 1, 0, world);
            } else {
                env.recv(buf, 1, dt, 0, 0, world);
            }
            env.barrier(world);
            env.free(buf);
        },
    );
    assert_eq!(tracers.len(), 2);
    for (rank, t) in tracers.iter().enumerate() {
        assert!(t.finalized, "finalize hook must run");
        assert_eq!(t.allocs, 1);
        assert_eq!(t.frees, 1);
        let funcs: Vec<FuncId> = t.calls.iter().map(|&(f, _, _)| f).collect();
        assert_eq!(funcs[0], FuncId::Init);
        assert_eq!(*funcs.last().unwrap(), FuncId::Finalize);
        assert!(funcs.contains(&FuncId::Barrier));
        if rank == 0 {
            assert!(funcs.contains(&FuncId::Send));
        } else {
            assert!(funcs.contains(&FuncId::Recv));
        }
        // Timestamps are non-decreasing across calls.
        for w in t.calls.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}

#[test]
fn tool_allreduce_assigns_consistent_ids() {
    // A tracer that mimics Pilgrim's communicator id assignment.
    #[derive(Default)]
    struct IdTracer {
        ids: Vec<u64>,
        next: u64,
    }
    impl Tracer for IdTracer {
        fn on_call(&mut self, ctx: &TraceCtx<'_>, rec: &CallRec, _t0: u64, _t1: u64) {
            if rec.func == FuncId::CommDup {
                if let mpi_sim::Arg::Comm(new) = rec.args[1] {
                    let id = ctx.tool_allreduce_max(new, self.next) + 1;
                    self.next = id;
                    self.ids.push(id);
                }
            }
        }
    }
    let tracers = World::run(
        &WorldConfig::new(3),
        |_| IdTracer::default(),
        |env| {
            let world = env.comm_world();
            let a = env.comm_dup(world);
            let _b = env.comm_dup(a);
        },
    );
    // All ranks computed the same id sequence.
    let first = &tracers[0].ids;
    assert_eq!(first.len(), 2);
    for t in &tracers[1..] {
        assert_eq!(&t.ids, first);
    }
}

#[test]
fn world_scales_to_many_ranks() {
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = counter.clone();
    run(64, move |env| {
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(8);
        env.heap_write_u64s(sbuf, &[1]);
        env.allreduce(sbuf, rbuf, 1, dt, ReduceOp::Sum, world);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], 64);
        c2.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(counter.load(Ordering::Relaxed), 64);
}

#[test]
fn simulated_clock_advances_through_communication() {
    let tracers = World::run(
        &WorldConfig::new(2),
        |_| CountingTracer::default(),
        |env| {
            let me = env.world_rank();
            let world = env.comm_world();
            let dt = env.basic(BasicType::LongLong);
            let buf = env.malloc(800);
            env.compute(50_000);
            if me == 0 {
                env.send(buf, 100, dt, 1, 0, world);
            } else {
                env.recv(buf, 100, dt, 0, 0, world);
            }
        },
    );
    // The receiver's recv must end after the sender's send began plus the
    // modeled network latency.
    let send = tracers[0].calls.iter().find(|c| c.0 == FuncId::Send).unwrap();
    let recv = tracers[1].calls.iter().find(|c| c.0 == FuncId::Recv).unwrap();
    assert!(recv.2 > send.1, "recv exit after send entry (causality)");
}

#[test]
fn cart_topology_stencil() {
    run(6, |env| {
        let world = env.comm_world();
        let dims = env.dims_create(6, 2);
        assert_eq!(dims, vec![3, 2]);
        let cart =
            env.cart_create(world, &dims, &[false, true], false).expect("all ranks fit the grid");
        let me = env.comm_rank(cart);
        let coords = env.cart_coords(cart, me);
        assert_eq!(env.cart_rank(cart, &coords), me);
        // Shift along dim 0 (non-periodic) and dim 1 (periodic).
        let (src0, dst0) = env.cart_shift(cart, 0, 1);
        let (src1, dst1) = env.cart_shift(cart, 1, 1);
        if coords[0] == 0 {
            assert_eq!(src0, PROC_NULL);
        }
        assert_ne!(src1, PROC_NULL, "periodic dim always has neighbors");
        assert_ne!(dst1, PROC_NULL);
        // Use the shift results in a real exchange.
        let dt = env.basic(BasicType::LongLong);
        let sbuf = env.malloc(8);
        let rbuf = env.malloc(8);
        env.heap_write_u64s(sbuf, &[me as u64]);
        env.sendrecv(sbuf, 1, dt, dst0, 0, rbuf, 1, dt, src0, 0, cart);
        if src0 != PROC_NULL {
            assert_eq!(env.heap_read_u64s(rbuf, 1)[0], src0 as u64);
        }
        env.sendrecv(sbuf, 1, dt, dst1, 1, rbuf, 1, dt, src1, 1, cart);
        assert_eq!(env.heap_read_u64s(rbuf, 1)[0], src1 as u64);
    });
}

#[test]
fn cart_create_excess_ranks_get_null() {
    run(5, |env| {
        let world = env.comm_world();
        // 2x2 grid on 5 ranks: rank 4 gets MPI_COMM_NULL.
        let cart = env.cart_create(world, &[2, 2], &[false, false], false);
        if env.world_rank() < 4 {
            let cart = cart.expect("grid member");
            assert_eq!(env.comm_size(cart), 4);
            env.barrier(cart);
        } else {
            assert!(cart.is_none());
        }
    });
}

#[test]
fn sendrecv_replace_rotates_values() {
    run(4, |env| {
        let me = env.world_rank();
        let n = env.world_size();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        let buf = env.malloc(8);
        env.heap_write_u64s(buf, &[me as u64 * 11]);
        let right = ((me + 1) % n) as i32;
        let left = ((me + n - 1) % n) as i32;
        let st = env.sendrecv_replace(buf, 1, dt, right, 2, left, 2, world);
        assert_eq!(st.source, left);
        assert_eq!(env.heap_read_u64s(buf, 1)[0], left as u64 * 11);
    });
}
