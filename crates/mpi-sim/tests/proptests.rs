//! Property tests for the simulator substrate: datatype layout algebra
//! against a direct model, heap pack/unpack inverses, and fabric matching
//! against a reference implementation.

use mpi_sim::datatype::{BasicType, TypeTable};
use mpi_sim::fabric::{Fabric, Message};
use mpi_sim::heap::SimHeap;
use proptest::prelude::*;

/// Model of a datatype layout: explicit byte offsets of the payload.
fn model_offsets(blocks: &[(i64, u64)]) -> Vec<i64> {
    let mut out = Vec::new();
    for &(off, len) in blocks {
        for b in 0..len as i64 {
            out.push(off + b);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vector_layout_matches_model(
        count in 1u64..6,
        blocklen in 1u64..5,
        stride in 1i64..8,
    ) {
        let mut t = TypeTable::new();
        let h = t.vector(count, blocklen, stride, BasicType::Int.handle());
        let dt = t.get(h);
        // Model: for block i, ints at (i*stride .. i*stride+blocklen).
        let mut want = Vec::new();
        for i in 0..count as i64 {
            for e in 0..blocklen as i64 {
                let base = (i * stride + e) * 4;
                want.extend(base..base + 4);
            }
        }
        want.sort_unstable();
        let mut got = model_offsets(&dt.blocks);
        got.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(dt.size, count * blocklen * 4);
    }

    #[test]
    fn indexed_layout_matches_model(
        spec in proptest::collection::vec((1u64..4, 0i64..12), 1..5),
    ) {
        // Build non-overlapping displacements by spacing them out.
        let mut blocklens = Vec::new();
        let mut displs = Vec::new();
        let mut cursor = 0i64;
        for (len, gap) in &spec {
            cursor += *gap;
            displs.push(cursor);
            blocklens.push(*len);
            cursor += *len as i64;
        }
        let mut t = TypeTable::new();
        let h = t.indexed(&blocklens, &displs, BasicType::Double.handle());
        let dt = t.get(h);
        let mut want = Vec::new();
        for (len, disp) in blocklens.iter().zip(&displs) {
            let start = disp * 8;
            want.extend(start..start + (*len as i64) * 8);
        }
        want.sort_unstable();
        let mut got = model_offsets(&dt.blocks);
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pack_unpack_is_identity_on_payload(
        count in 1u64..4,
        blocklen in 1u64..4,
        stride in 1i64..6,
        seed in any::<u64>(),
    ) {
        let stride = stride.max(blocklen as i64);
        let mut t = TypeTable::new();
        let h = t.vector(count, blocklen, stride, BasicType::Byte.handle());
        let dt = t.get(h).clone();
        let mut heap = SimHeap::new();
        let span = (count as i64 * stride) as u64 + 16;
        let src = heap.malloc(span);
        let dst = heap.malloc(span);
        // Deterministic fill.
        let mut state = seed | 1;
        for i in 0..span {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            heap.write(src + i, &[(state >> 33) as u8]);
        }
        let packed = heap.pack(src, &dt.blocks, dt.extent, 1);
        prop_assert_eq!(packed.len() as u64, dt.size);
        heap.unpack(dst, &dt.blocks, dt.extent, 1, &packed);
        // Every payload byte must have moved; gaps stay zero.
        for &(off, len) in &dt.blocks {
            for b in 0..len {
                let at = (off as u64) + b;
                prop_assert_eq!(heap.read(src + at, 1), heap.read(dst + at, 1));
            }
        }
    }

    #[test]
    fn fabric_matching_agrees_with_model(
        msgs in proptest::collection::vec((0i32..3, 0i32..3), 1..12),
        recvs in proptest::collection::vec((-1i32..3, -1i32..3), 1..12),
    ) {
        // Deliver all messages first, then post receives; compare against
        // a straightforward queue model.
        let f = Fabric::new(1);
        let mut model: Vec<(i32, i32, u8)> = Vec::new();
        for (i, &(src, tag)) in msgs.iter().enumerate() {
            f.send(0, Message {
                ctx: 0,
                src_comm_rank: src,
                tag,
                data: vec![i as u8],
                send_time: 0,
            });
            model.push((src, tag, i as u8));
        }
        for &(src, tag) in &recvs {
            let slot = f.post_recv(0, 0, src, tag, None);
            // Model: earliest message matching (src|ANY, tag|ANY).
            let pos = model.iter().position(|&(ms, mt, _)| {
                (src == -1 || src == ms) && (tag == -1 || tag == mt)
            });
            match pos {
                Some(p) => {
                    let (ms, mt, payload) = model.remove(p);
                    let got = slot.try_take().expect("fabric must match like the model");
                    prop_assert_eq!(got.src_comm_rank, ms);
                    prop_assert_eq!(got.tag, mt);
                    prop_assert_eq!(got.data, vec![payload]);
                }
                None => prop_assert!(slot.try_take().is_none(), "fabric matched, model did not"),
            }
        }
    }

    #[test]
    fn heap_alloc_free_never_overlaps(ops in proptest::collection::vec((1u64..128, any::<bool>()), 1..64)) {
        let mut h = SimHeap::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                h.free(addr);
            } else {
                let addr = h.malloc(size);
                for &(a, s) in &live {
                    prop_assert!(
                        addr + size <= a || a + s <= addr,
                        "overlap: [{addr},{}) vs [{a},{})",
                        addr + size,
                        a + s
                    );
                }
                live.push((addr, size));
            }
        }
    }
}
