//! The tracing seam: what a PMPI interposition layer observes.
//!
//! Every MPI call executed by a rank produces a [`CallRec`] — the function
//! id plus *all* of its arguments, input and output — delivered to the
//! rank's [`Tracer`] together with entry/exit timestamps. Tracers also see
//! heap allocation events, and get a [`TraceCtx`] side-channel for their
//! own coordination (globally consistent communicator ids require an
//! all-reduce among the new communicator's members; the inter-process
//! merge at finalize needs point-to-point exchanges). Tool traffic runs on
//! dedicated fabric lanes and is never traced.

use std::any::Any;
use std::sync::Arc;

use crate::comm::{CommHandle, CommTable};
use crate::fabric::{CollCtx, Fabric, Lane};
use crate::funcs::FuncId;

/// One observed argument value. Raw handle values are reported exactly as
/// the application passed them; symbolic re-encoding is the tracer's job.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Plain integer (counts, flags, roots, ...).
    Int(i64),
    /// A source/destination rank — candidate for relative-rank encoding.
    Rank(i32),
    /// A message tag.
    Tag(i32),
    /// Raw communicator handle.
    Comm(u32),
    /// Raw datatype handle.
    Datatype(u32),
    /// Raw reduce-op handle.
    Op(u32),
    /// Raw group handle.
    Group(u32),
    /// Raw request handle (output of nonblocking calls).
    Request(u64),
    /// Array of raw request handles (wait/test families).
    RequestArr(Vec<u64>),
    /// Raw memory address passed as a buffer pointer.
    Ptr(u64),
    /// Returned `MPI_Status` (the fields Pilgrim keeps: source and tag).
    Status { source: i32, tag: i32 },
    /// Array of returned statuses.
    StatusArr(Vec<(i32, i32)>),
    /// Integer array (counts/displacements/indices).
    IntArr(Vec<i64>),
    /// Split color (candidate for relative encoding).
    Color(i32),
    /// Split key (candidate for relative encoding).
    Key(i32),
    /// A string argument (names).
    Str(String),
}

/// A fully recorded MPI call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRec {
    pub func: FuncId,
    pub args: Vec<Arg>,
}

impl CallRec {
    pub fn new(func: FuncId, args: Vec<Arg>) -> Self {
        CallRec { func, args }
    }
}

/// Introspection and tool communication available to tracers during a
/// callback — the equivalent of the MPI calls a PMPI tool may itself issue.
pub struct TraceCtx<'a> {
    pub world_rank: usize,
    pub world_size: usize,
    pub(crate) fabric: &'a Arc<Fabric>,
    pub(crate) comms: &'a CommTable,
}

impl<'a> TraceCtx<'a> {
    /// The local group (comm rank -> world rank) of a live communicator.
    pub fn comm_group(&self, handle: u32) -> Option<&[usize]> {
        self.comms.try_get(CommHandle(handle)).map(|c| c.group.as_slice())
    }

    /// This rank's rank within the communicator.
    pub fn comm_rank(&self, handle: u32) -> Option<usize> {
        self.comms.try_get(CommHandle(handle)).map(|c| c.my_rank)
    }

    /// The remote group of an inter-communicator.
    pub fn comm_remote_group(&self, handle: u32) -> Option<&[usize]> {
        self.comms.try_get(CommHandle(handle)).and_then(|c| c.remote_group.as_deref())
    }

    /// Blocking all-reduce (max) over the communicator's members on the
    /// tool lane. Every member's tracer must call this in the same
    /// callback, which holds because tracers intercept the same collective
    /// call on every member (paper §3.3.1).
    pub fn tool_allreduce_max(&self, handle: u32, value: u64) -> u64 {
        let info = self.comms.get(CommHandle(handle));
        let coll = self.fabric.coll(info.ctx, Lane::Tool);
        let round = info.tool_round.get();
        info.tool_round.set(round + 1);
        coll.deposit(round, info.lane_rank(), value.to_le_bytes().to_vec(), 0);
        let (contribs, _) = coll.wait_collect(self.fabric, round, self.world_rank);
        contribs
            .iter()
            .map(|c| u64::from_le_bytes(c.as_slice().try_into().expect("8-byte contrib")))
            .max()
            .expect("non-empty communicator")
    }

    /// Non-blocking variant for `MPI_Comm_idup` interception: deposits now,
    /// result polled later via [`ToolRequest::try_complete`] or awaited via
    /// [`ToolRequest::wait_complete`].
    pub fn tool_iallreduce_max(&self, handle: u32, value: u64) -> ToolRequest {
        let info = self.comms.get(CommHandle(handle));
        let coll = self.fabric.coll(info.ctx, Lane::Tool);
        let round = info.tool_round.get();
        info.tool_round.set(round + 1);
        coll.deposit(round, info.lane_rank(), value.to_le_bytes().to_vec(), 0);
        ToolRequest { coll, round, fabric: self.fabric.clone(), me: self.world_rank }
    }

    /// Untraced point-to-point send to another rank's tracer.
    pub fn tool_send(&self, dest_world: usize, tag: i32, data: Vec<u8>) {
        self.fabric.tool_send(dest_world, self.world_rank, tag, data);
    }

    /// Untraced blocking point-to-point receive from another rank's tracer.
    pub fn tool_recv(&self, src_world: usize, tag: i32) -> Vec<u8> {
        self.fabric.tool_recv(self.world_rank, src_world, tag)
    }

    /// Bounded tool-channel receive with exponential backoff. Returns
    /// `(message, backoff_rounds)`; the message is `None` when the wait
    /// timed out or the sender died without sending.
    pub fn tool_recv_timeout(
        &self,
        src_world: usize,
        tag: i32,
        timeout: std::time::Duration,
    ) -> (Option<Vec<u8>>, u64) {
        self.fabric.tool_recv_timeout(self.world_rank, src_world, tag, timeout)
    }

    /// World-wide tool barrier (used around merge phases).
    pub fn tool_barrier(&self) {
        self.tool_allreduce_max(0, 0);
    }

    // --------------- fault-tolerance surface for tracers ---------------

    /// Whether any rank has died or bailed.
    pub fn any_failures(&self) -> bool {
        self.fabric.has_failures()
    }

    /// Killed ranks with the MPI-call count each completed before dying.
    pub fn dead_ranks(&self) -> Vec<(usize, u64)> {
        self.fabric.dead_ranks()
    }

    /// Whether `rank` was killed (bailed survivors still merge and do not
    /// count).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.fabric.is_dead(rank)
    }

    /// Stores this rank's crash-consistent snapshot covering `calls` calls.
    pub fn store_checkpoint(&self, calls: u64, bytes: Vec<u8>) {
        self.fabric.store_checkpoint(self.world_rank, calls, bytes);
    }

    /// Latest stored checkpoint of `rank`, if any.
    pub fn load_checkpoint(&self, rank: usize) -> Option<(u64, Vec<u8>)> {
        self.fabric.load_checkpoint(rank)
    }
}

/// Handle to a pending tool-lane non-blocking all-reduce.
pub struct ToolRequest {
    coll: Arc<CollCtx>,
    round: u64,
    fabric: Arc<Fabric>,
    me: usize,
}

impl ToolRequest {
    /// Polls for completion; returns the group max when done. Must be
    /// called at most once after it returns `Some`.
    pub fn try_complete(&self) -> Option<u64> {
        let (contribs, _) = self.coll.try_collect(self.round)?;
        Some(Self::fold_max(&contribs))
    }

    /// Blocks (with abort and dead-peer checking) until the all-reduce
    /// completes — replaces busy-spinning on [`Self::try_complete`].
    pub fn wait_complete(&self) -> u64 {
        let (contribs, _) = self.coll.wait_collect(&self.fabric, self.round, self.me);
        Self::fold_max(&contribs)
    }

    fn fold_max(contribs: &[Vec<u8>]) -> u64 {
        contribs
            .iter()
            .map(|c| u64::from_le_bytes(c.as_slice().try_into().expect("8-byte contrib")))
            .max()
            .expect("non-empty group")
    }
}

/// A per-rank tracer: the PMPI-equivalent observer. `Any` is a supertrait
/// so harnesses can downcast the boxed tracers [`crate::World::run`]
/// returns back to their concrete type.
pub trait Tracer: Any + Send {
    /// Called after each MPI call completes, with the full record and the
    /// simulated entry/exit times.
    fn on_call(&mut self, ctx: &TraceCtx<'_>, rec: &CallRec, t_start: u64, t_end: u64);

    /// A heap segment was allocated.
    fn on_alloc(&mut self, _addr: u64, _size: u64) {}

    /// A heap segment was freed.
    fn on_free(&mut self, _addr: u64) {}

    /// Called inside `MPI_Finalize`, before the world shuts down; this is
    /// where Pilgrim runs its inter-process compression.
    fn on_finalize(&mut self, _ctx: &TraceCtx<'_>) {}
}

/// The no-op tracer (used for untraced baseline timing runs).
#[derive(Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn on_call(&mut self, _ctx: &TraceCtx<'_>, _rec: &CallRec, _t0: u64, _t1: u64) {}
}

/// An alias used by dispatch code.
pub type BoxedTracer = Box<dyn Tracer>;

/// One recorded nondeterministic resolution, fed back into the rank's
/// operations during directed replay ([`Env::set_replay_director`]
/// (crate::Env::set_replay_director)). Each variant pins down exactly the
/// choice the fabric made freely during recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Resolve a wildcard receive or probe to this concrete
    /// `(source, tag)`. `source` is a *delta* relative to the caller's
    /// rank in the call's communicator (the same relative form the trace
    /// encoder uses for status ranks, so a directive derived from a
    /// decoded trace needs no communicator-membership reconstruction);
    /// `tag` is absolute.
    MatchSource { source: i32, tag: i32 },
    /// Waitany/Testany outcome: complete this index (`None` = the call
    /// completed nothing).
    CompleteOne { index: Option<u32> },
    /// Waitsome/Testsome outcome: complete exactly these indices, in
    /// this order (possibly empty for Testsome).
    CompleteSet { indices: Vec<u32> },
    /// Test/Testall (and Iprobe-miss) flag outcome.
    Flag(bool),
}

/// Feeds recorded resolutions back to one rank during replay.
///
/// `call_index` is the 0-based index of the *upcoming* MPI call on the
/// rank (the number of calls already completed), matching the per-rank
/// call positions of a decoded trace. Directives are looked up by key —
/// a call with no recorded directive resolves live, so partially
/// directed replays degrade gracefully instead of stalling.
pub trait ReplayDirector: Send {
    /// The recorded directive for the upcoming call, if any.
    fn directive(&mut self, call_index: u64, func: FuncId) -> Option<Directive>;

    /// A directive could not be satisfied (the recorded message never
    /// arrived, the recorded index never became ready, …). The rank
    /// unwinds as dead immediately after this report.
    fn unsatisfied(&mut self, rank: usize, call_index: u64, func: FuncId, detail: String);
}
