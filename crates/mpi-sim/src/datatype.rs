//! MPI datatypes: predefined basic types and derived types
//! (contiguous / vector / indexed / struct), with the type-map machinery
//! needed to pack and unpack non-contiguous buffers.

/// Rank-local handle to a datatype, as a PMPI layer would observe it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatatypeHandle(pub u32);

/// Predefined basic datatypes (a representative subset of the MPI set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicType {
    Byte,
    Char,
    Int,
    Unsigned,
    Long,
    Float,
    Double,
    LongLong,
    DoubleInt,
}

impl BasicType {
    /// Size in bytes.
    pub fn size(self) -> u64 {
        match self {
            BasicType::Byte | BasicType::Char => 1,
            BasicType::Int | BasicType::Unsigned | BasicType::Float => 4,
            BasicType::Long | BasicType::Double | BasicType::LongLong => 8,
            BasicType::DoubleInt => 12,
        }
    }

    /// Handle value: predefined types occupy the low handle space, exactly
    /// as implementations reserve handles for built-ins.
    pub fn handle(self) -> DatatypeHandle {
        DatatypeHandle(match self {
            BasicType::Byte => 0,
            BasicType::Char => 1,
            BasicType::Int => 2,
            BasicType::Unsigned => 3,
            BasicType::Long => 4,
            BasicType::Float => 5,
            BasicType::Double => 6,
            BasicType::LongLong => 7,
            BasicType::DoubleInt => 8,
        })
    }
}

/// Number of predefined handles; derived types are numbered after these.
pub const NUM_BASIC_TYPES: u32 = 9;

/// How a derived datatype was constructed — kept so that tracers can record
/// the constructor arguments and so the layout can be recreated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDef {
    Basic(BasicType),
    /// `count` consecutive copies of the base type.
    Contiguous {
        count: u64,
        base: DatatypeHandle,
    },
    /// `count` blocks of `blocklen` elements, strided by `stride` elements.
    Vector {
        count: u64,
        blocklen: u64,
        stride: i64,
        base: DatatypeHandle,
    },
    /// Explicit (blocklen, displacement-in-elements) pairs.
    Indexed {
        blocklens: Vec<u64>,
        displs: Vec<i64>,
        base: DatatypeHandle,
    },
    /// Heterogeneous struct: per-block (len, byte displacement, type).
    Struct {
        blocklens: Vec<u64>,
        displs: Vec<i64>,
        types: Vec<DatatypeHandle>,
    },
}

/// A registered datatype: its definition plus derived properties.
#[derive(Debug, Clone)]
pub struct Datatype {
    pub def: TypeDef,
    pub committed: bool,
    /// Total payload bytes one element of this type carries.
    pub size: u64,
    /// Span in memory from the lowest to one past the highest byte touched.
    pub extent: u64,
    /// Byte ranges (offset, len) relative to the element start, contiguous
    /// runs coalesced; used for pack/unpack.
    pub blocks: Vec<(i64, u64)>,
}

/// Per-rank datatype table. Handles are local, matching MPI semantics
/// (the same derived type may get different handles on different ranks —
/// which is exactly why Pilgrim re-encodes them symbolically).
#[derive(Debug)]
pub struct TypeTable {
    types: Vec<Option<Datatype>>,
}

impl Default for TypeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeTable {
    /// Creates a table pre-populated with the predefined types.
    pub fn new() -> Self {
        let mut types = Vec::new();
        for b in [
            BasicType::Byte,
            BasicType::Char,
            BasicType::Int,
            BasicType::Unsigned,
            BasicType::Long,
            BasicType::Float,
            BasicType::Double,
            BasicType::LongLong,
            BasicType::DoubleInt,
        ] {
            let size = b.size();
            types.push(Some(Datatype {
                def: TypeDef::Basic(b),
                committed: true,
                size,
                extent: size,
                blocks: vec![(0, size)],
            }));
        }
        TypeTable { types }
    }

    /// Looks up a datatype; panics on a dangling handle (a program error in
    /// the simulated application, as in MPI).
    pub fn get(&self, h: DatatypeHandle) -> &Datatype {
        self.types
            .get(h.0 as usize)
            .and_then(|t| t.as_ref())
            .unwrap_or_else(|| panic!("use of invalid datatype handle {}", h.0))
    }

    fn insert(&mut self, dt: Datatype) -> DatatypeHandle {
        // Reuse freed slots after the predefined range, as MPI libraries do.
        for (i, slot) in self.types.iter_mut().enumerate().skip(NUM_BASIC_TYPES as usize) {
            if slot.is_none() {
                *slot = Some(dt);
                return DatatypeHandle(i as u32);
            }
        }
        self.types.push(Some(dt));
        DatatypeHandle((self.types.len() - 1) as u32)
    }

    /// `MPI_Type_contiguous`.
    pub fn contiguous(&mut self, count: u64, base: DatatypeHandle) -> DatatypeHandle {
        let b = self.get(base).clone();
        let blocks = replicate_blocks(&b.blocks, count, b.extent as i64);
        let dt = Datatype {
            size: b.size * count,
            extent: b.extent * count,
            blocks,
            committed: false,
            def: TypeDef::Contiguous { count, base },
        };
        self.insert(dt)
    }

    /// `MPI_Type_vector` (stride in elements of the base type).
    pub fn vector(
        &mut self,
        count: u64,
        blocklen: u64,
        stride: i64,
        base: DatatypeHandle,
    ) -> DatatypeHandle {
        let b = self.get(base).clone();
        let mut blocks = Vec::new();
        for i in 0..count {
            let disp = i as i64 * stride * b.extent as i64;
            let one = replicate_blocks(&b.blocks, blocklen, b.extent as i64);
            for (off, len) in one {
                blocks.push((off + disp, len));
            }
        }
        let blocks = coalesce(blocks);
        let dt = Datatype {
            size: b.size * blocklen * count,
            extent: span(&blocks),
            blocks,
            committed: false,
            def: TypeDef::Vector { count, blocklen, stride, base },
        };
        self.insert(dt)
    }

    /// `MPI_Type_indexed` (displacements in elements of the base type).
    pub fn indexed(
        &mut self,
        blocklens: &[u64],
        displs: &[i64],
        base: DatatypeHandle,
    ) -> DatatypeHandle {
        assert_eq!(blocklens.len(), displs.len(), "indexed arity mismatch");
        let b = self.get(base).clone();
        let mut blocks = Vec::new();
        for (&len, &disp) in blocklens.iter().zip(displs) {
            let start = disp * b.extent as i64;
            let one = replicate_blocks(&b.blocks, len, b.extent as i64);
            for (off, l) in one {
                blocks.push((off + start, l));
            }
        }
        let blocks = coalesce(blocks);
        let size: u64 = blocklens.iter().map(|&l| l * b.size).sum();
        let dt = Datatype {
            size,
            extent: span(&blocks),
            blocks,
            committed: false,
            def: TypeDef::Indexed { blocklens: blocklens.to_vec(), displs: displs.to_vec(), base },
        };
        self.insert(dt)
    }

    /// `MPI_Type_create_struct` (displacements in bytes).
    pub fn structured(
        &mut self,
        blocklens: &[u64],
        displs: &[i64],
        types: &[DatatypeHandle],
    ) -> DatatypeHandle {
        assert!(
            blocklens.len() == displs.len() && displs.len() == types.len(),
            "struct arity mismatch"
        );
        let mut blocks = Vec::new();
        let mut size = 0;
        for ((&len, &disp), &ty) in blocklens.iter().zip(displs).zip(types) {
            let b = self.get(ty).clone();
            size += b.size * len;
            let one = replicate_blocks(&b.blocks, len, b.extent as i64);
            for (off, l) in one {
                blocks.push((off + disp, l));
            }
        }
        let blocks = coalesce(blocks);
        let dt = Datatype {
            size,
            extent: span(&blocks),
            blocks,
            committed: false,
            def: TypeDef::Struct {
                blocklens: blocklens.to_vec(),
                displs: displs.to_vec(),
                types: types.to_vec(),
            },
        };
        self.insert(dt)
    }

    /// `MPI_Type_commit`.
    pub fn commit(&mut self, h: DatatypeHandle) {
        let dt = self
            .types
            .get_mut(h.0 as usize)
            .and_then(|t| t.as_mut())
            .unwrap_or_else(|| panic!("commit of invalid datatype handle {}", h.0));
        dt.committed = true;
    }

    /// `MPI_Type_free`; predefined types cannot be freed.
    pub fn free(&mut self, h: DatatypeHandle) {
        assert!(h.0 >= NUM_BASIC_TYPES, "cannot free predefined datatype {}", h.0);
        let slot = self
            .types
            .get_mut(h.0 as usize)
            .unwrap_or_else(|| panic!("free of invalid datatype handle {}", h.0));
        assert!(slot.is_some(), "double free of datatype handle {}", h.0);
        *slot = None;
    }
}

/// Replicates a block list `count` times at `extent`-byte intervals.
fn replicate_blocks(blocks: &[(i64, u64)], count: u64, extent: i64) -> Vec<(i64, u64)> {
    let mut out = Vec::with_capacity(blocks.len() * count as usize);
    for i in 0..count as i64 {
        for &(off, len) in blocks {
            out.push((off + i * extent, len));
        }
    }
    coalesce(out)
}

/// Sorts blocks and merges adjacent runs.
fn coalesce(mut blocks: Vec<(i64, u64)>) -> Vec<(i64, u64)> {
    blocks.sort_unstable();
    let mut out: Vec<(i64, u64)> = Vec::with_capacity(blocks.len());
    for (off, len) in blocks {
        if len == 0 {
            continue;
        }
        if let Some(last) = out.last_mut() {
            if last.0 + last.1 as i64 == off {
                last.1 += len;
                continue;
            }
        }
        out.push((off, len));
    }
    out
}

/// Memory span covered by a block list.
fn span(blocks: &[(i64, u64)]) -> u64 {
    if blocks.is_empty() {
        return 0;
    }
    let lo = blocks.iter().map(|&(o, _)| o).min().unwrap();
    let hi = blocks.iter().map(|&(o, l)| o + l as i64).max().unwrap();
    (hi - lo) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_sizes() {
        let t = TypeTable::new();
        assert_eq!(t.get(BasicType::Int.handle()).size, 4);
        assert_eq!(t.get(BasicType::Double.handle()).size, 8);
        assert_eq!(t.get(BasicType::Byte.handle()).size, 1);
    }

    #[test]
    fn contiguous_type() {
        let mut t = TypeTable::new();
        let h = t.contiguous(5, BasicType::Int.handle());
        let dt = t.get(h);
        assert_eq!(dt.size, 20);
        assert_eq!(dt.extent, 20);
        assert_eq!(dt.blocks, vec![(0, 20)]);
    }

    #[test]
    fn vector_type_layout() {
        let mut t = TypeTable::new();
        // 3 blocks of 2 ints, stride 4 ints: bytes [0,8) [16,24) [32,40)
        let h = t.vector(3, 2, 4, BasicType::Int.handle());
        let dt = t.get(h);
        assert_eq!(dt.size, 24);
        assert_eq!(dt.blocks, vec![(0, 8), (16, 8), (32, 8)]);
        assert_eq!(dt.extent, 40);
    }

    #[test]
    fn indexed_type_layout() {
        let mut t = TypeTable::new();
        let h = t.indexed(&[1, 3], &[0, 2], BasicType::Double.handle());
        let dt = t.get(h);
        assert_eq!(dt.size, 32);
        assert_eq!(dt.blocks, vec![(0, 8), (16, 24)]);
    }

    #[test]
    fn struct_type_layout() {
        let mut t = TypeTable::new();
        let h =
            t.structured(&[1, 2], &[0, 8], &[BasicType::Int.handle(), BasicType::Double.handle()]);
        let dt = t.get(h);
        assert_eq!(dt.size, 4 + 16);
        assert_eq!(dt.blocks, vec![(0, 4), (8, 16)]);
    }

    #[test]
    fn nested_derived_types() {
        let mut t = TypeTable::new();
        let row = t.contiguous(4, BasicType::Int.handle());
        let col = t.vector(3, 1, 2, row);
        let dt = t.get(col);
        assert_eq!(dt.size, 3 * 16);
    }

    #[test]
    fn commit_and_free_cycle() {
        let mut t = TypeTable::new();
        let h = t.contiguous(2, BasicType::Int.handle());
        assert!(!t.get(h).committed);
        t.commit(h);
        assert!(t.get(h).committed);
        t.free(h);
        // Slot is reused for the next derived type.
        let h2 = t.contiguous(3, BasicType::Int.handle());
        assert_eq!(h.0, h2.0);
    }

    #[test]
    #[should_panic(expected = "cannot free predefined")]
    fn freeing_predefined_panics() {
        let mut t = TypeTable::new();
        t.free(BasicType::Int.handle());
    }

    #[test]
    fn contiguous_of_vector_gap_preserved() {
        let mut t = TypeTable::new();
        let v = t.vector(2, 1, 2, BasicType::Int.handle()); // [0,4) [8,12)
        let c = t.contiguous(2, v);
        let dt = t.get(c);
        // extent of v = 12, replicated at 12-byte interval:
        // [0,4) [8,12)+[12,16) merge => [8,16), [20,24)
        assert_eq!(dt.blocks, vec![(0, 4), (8, 8), (20, 4)]);
        assert_eq!(dt.size, 16);
    }
}
