//! World construction: spawns one OS thread per rank, each with its own
//! [`Env`], attaches tracers, runs the application body, and collects the
//! tracers back when all ranks have finalized.

use std::sync::Arc;

use crate::clock::ClockModel;
use crate::env::Env;
use crate::fabric::Fabric;
use crate::hooks::Tracer;

/// World parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks (threads).
    pub n_ranks: usize,
    /// Seed for the deterministic clock jitter.
    pub seed: u64,
    /// Clock cost model.
    pub clock: ClockModel,
    /// Stack size per rank thread. Workloads are shallow; small stacks let
    /// a single machine host thousands of ranks.
    pub stack_size: usize,
    /// Real busy-spin per simulated compute nanosecond (0.0 = off).
    /// Overhead experiments set this so the untraced baseline carries
    /// compute work proportional to the simulated application, the way a
    /// real code would.
    pub compute_spin: f64,
}

impl WorldConfig {
    pub fn new(n_ranks: usize) -> Self {
        WorldConfig {
            n_ranks,
            seed: 0x5EED,
            clock: ClockModel::default(),
            stack_size: 256 * 1024,
            compute_spin: 0.0,
        }
    }
}

/// Entry point for running simulated MPI programs.
pub struct World;

impl World {
    /// Runs `body` on `cfg.n_ranks` ranks with a tracer built per rank by
    /// `tracer_factory`. `MPI_Init` is recorded before the body runs and
    /// `MPI_Finalize` after it returns (if the body did not call
    /// [`Env::finalize`] itself). Returns the tracers in rank order.
    ///
    /// Panics in any rank abort the whole world (all blocked ranks unblock
    /// and panic) and the panic is propagated to the caller.
    pub fn run<T, F, B>(cfg: &WorldConfig, tracer_factory: F, body: B) -> Vec<T>
    where
        T: Tracer,
        F: Fn(usize) -> T,
        B: Fn(&mut Env) + Send + Sync + 'static,
    {
        let fabric = Fabric::new(cfg.n_ranks);
        let body = Arc::new(body);
        let mut handles = Vec::with_capacity(cfg.n_ranks);
        for rank in 0..cfg.n_ranks {
            let fabric = fabric.clone();
            let body = body.clone();
            let tracer: Box<dyn Tracer> = Box::new(tracer_factory(rank));
            let clock = cfg.clock;
            let seed = cfg.seed;
            let spin = cfg.compute_spin;
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size)
                .spawn(move || {
                    // Any rank panic aborts the world so peers unblock.
                    let guard = AbortOnPanic(fabric.clone());
                    let mut env = Env::new(rank, fabric, clock, seed, Some(tracer));
                    env.set_compute_spin(spin);
                    env.init();
                    body(&mut env);
                    if !env.is_finalized() {
                        env.finalize();
                    }
                    std::mem::forget(guard);
                    env.take_tracer().expect("tracer present at world end")
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        let mut tracers: Vec<T> = Vec::with_capacity(cfg.n_ranks);
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(boxed) => {
                    let any: Box<dyn std::any::Any> = boxed;
                    let t = any.downcast::<T>().expect("tracer type mismatch at collection");
                    tracers.push(*t);
                }
                Err(e) => {
                    fabric.abort();
                    panic_payload = Some(e);
                }
            }
        }
        if let Some(e) = panic_payload {
            std::panic::resume_unwind(e);
        }
        tracers
    }
}

/// Aborts the fabric if the owning thread unwinds.
struct AbortOnPanic(Arc<Fabric>);

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        self.0.abort();
    }
}
