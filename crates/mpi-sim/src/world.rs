//! World construction: spawns one OS thread per rank, each with its own
//! [`Env`], attaches tracers, runs the application body, and collects the
//! tracers back when all ranks have finalized.
//!
//! Two entry points: [`World::run`] for fault-free runs (any rank panic
//! aborts the world and propagates), and [`World::run_faulty`] which honors
//! the [`FaultPlan`] in [`WorldConfig::faults`] — ranks killed by the plan
//! unwind in a controlled way, survivors that hit a dead peer abandon the
//! rest of their body but still finalize (and merge) their trace, and the
//! caller gets a [`WorldOutcome`] describing who survived.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::clock::ClockModel;
use crate::env::Env;
use crate::fabric::{Fabric, WorldRank};
use crate::fault::{self, FaultPlan, PeerFailure, RankKilled};
use crate::hooks::{BoxedTracer, Tracer};

/// World parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks (threads).
    pub n_ranks: usize,
    /// Seed for the deterministic clock jitter.
    pub seed: u64,
    /// Clock cost model.
    pub clock: ClockModel,
    /// Stack size per rank thread. Workloads are shallow; small stacks let
    /// a single machine host thousands of ranks.
    pub stack_size: usize,
    /// Real busy-spin per simulated compute nanosecond (0.0 = off).
    /// Overhead experiments set this so the untraced baseline carries
    /// compute work proportional to the simulated application, the way a
    /// real code would.
    pub compute_spin: f64,
    /// Injected-fault schedule, honored by [`World::run_faulty`].
    pub faults: Option<FaultPlan>,
    /// Optional label appended to rank thread names (`rank-3@<label>`).
    /// Multi-job drivers (the streaming ingest service runs many worlds
    /// concurrently in one process) set this so thread dumps and panics
    /// attribute a rank to its job.
    pub label: Option<String>,
}

impl WorldConfig {
    pub fn new(n_ranks: usize) -> Self {
        WorldConfig {
            n_ranks,
            seed: 0x5EED,
            clock: ClockModel::default(),
            stack_size: 256 * 1024,
            compute_spin: 0.0,
            faults: None,
            label: None,
        }
    }

    /// Sets the deterministic clock-jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-rank thread stack size.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Labels this world's rank threads (`rank-3@<label>`), so concurrent
    /// worlds in one process are distinguishable.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The thread name for `rank` under this configuration.
    fn thread_name(&self, rank: usize) -> String {
        match &self.label {
            Some(l) => format!("rank-{rank}@{l}"),
            None => format!("rank-{rank}"),
        }
    }
}

/// A rank killed by the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFailure {
    pub rank: WorldRank,
    /// MPI calls it completed (and traced) before dying.
    pub calls: u64,
}

/// Result of a faulty run: per-rank tracers (`None` for killed ranks), the
/// kill record, and the survivors that abandoned mid-body or mid-merge.
#[derive(Debug)]
pub struct WorldOutcome<T> {
    /// Tracers in rank order; `None` for ranks killed by the plan.
    pub tracers: Vec<Option<T>>,
    /// Ranks killed by the plan, sorted by rank.
    pub failures: Vec<RankFailure>,
    /// Surviving ranks that hit a peer failure and abandoned their body
    /// (their traces end early but are still merged).
    pub bailed: Vec<WorldRank>,
}

impl<T> WorldOutcome<T> {
    /// Ranks that returned a tracer.
    pub fn survivors(&self) -> Vec<WorldRank> {
        self.tracers.iter().enumerate().filter_map(|(r, t)| t.as_ref().map(|_| r)).collect()
    }
}

/// What a rank thread reports back when it exits.
enum RankExit {
    Done(BoxedTracer),
    Killed(u64),
    /// Finalize itself hit a peer failure; the tracer (if recoverable)
    /// rides along.
    Abandoned(Option<BoxedTracer>),
}

/// Entry point for running simulated MPI programs.
pub struct World;

impl World {
    /// Runs `body` on `cfg.n_ranks` ranks with a tracer built per rank by
    /// `tracer_factory`. `MPI_Init` is recorded before the body runs and
    /// `MPI_Finalize` after it returns (if the body did not call
    /// [`Env::finalize`] itself). Returns the tracers in rank order.
    ///
    /// Panics in any rank abort the whole world (all blocked ranks unblock
    /// and panic) and the panic is propagated to the caller. Ranks killed
    /// by a fault plan also panic here — use [`World::run_faulty`] to get
    /// partial results instead.
    pub fn run<T, F, B>(cfg: &WorldConfig, tracer_factory: F, body: B) -> Vec<T>
    where
        T: Tracer,
        F: Fn(usize) -> T,
        B: Fn(&mut Env) + Send + Sync + 'static,
    {
        let out = Self::run_faulty(cfg, tracer_factory, body);
        out.tracers
            .into_iter()
            .enumerate()
            .map(|(rank, t)| {
                t.unwrap_or_else(|| {
                    panic!("rank {rank} was killed by the fault plan; use World::run_faulty")
                })
            })
            .collect()
    }

    /// Fault-tolerant variant of [`World::run`]: honors
    /// [`WorldConfig::faults`] and returns a [`WorldOutcome`] instead of
    /// panicking when ranks die. Genuine (non-injected) panics still abort
    /// the world and propagate.
    pub fn run_faulty<T, F, B>(cfg: &WorldConfig, tracer_factory: F, body: B) -> WorldOutcome<T>
    where
        T: Tracer,
        F: Fn(usize) -> T,
        B: Fn(&mut Env) + Send + Sync + 'static,
    {
        if cfg.faults.as_ref().is_some_and(|p| p.is_active()) {
            fault::silence_fault_panics();
        }
        let fabric = Fabric::with_faults(cfg.n_ranks, cfg.faults.clone());
        let body = Arc::new(body);
        let mut handles = Vec::with_capacity(cfg.n_ranks);
        for rank in 0..cfg.n_ranks {
            let fabric = fabric.clone();
            let body = body.clone();
            let tracer: Box<dyn Tracer> = Box::new(tracer_factory(rank));
            let clock = cfg.clock;
            let seed = cfg.seed;
            let spin = cfg.compute_spin;
            let handle = std::thread::Builder::new()
                .name(cfg.thread_name(rank))
                .stack_size(cfg.stack_size)
                .spawn(move || rank_main(rank, fabric, clock, seed, spin, tracer, body))
                .expect("spawn rank thread");
            handles.push(handle);
        }
        let mut out = WorldOutcome {
            tracers: Vec::with_capacity(cfg.n_ranks),
            failures: Vec::new(),
            bailed: Vec::new(),
        };
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(RankExit::Done(boxed)) => out.tracers.push(Some(downcast::<T>(boxed))),
                Ok(RankExit::Killed(calls)) => {
                    out.tracers.push(None);
                    out.failures.push(RankFailure { rank, calls });
                }
                Ok(RankExit::Abandoned(boxed)) => {
                    out.bailed.push(rank);
                    out.tracers.push(boxed.map(downcast::<T>));
                }
                Err(e) => {
                    fabric.abort();
                    out.tracers.push(None);
                    panic_payload = Some(e);
                }
            }
        }
        if let Some(e) = panic_payload {
            resume_unwind(e);
        }
        // Survivors whose body bailed (but whose finalize succeeded) are
        // recorded on the fabric; fold them into the outcome.
        for rank in 0..cfg.n_ranks {
            if fabric.is_app_unreachable(rank)
                && !fabric.is_dead(rank)
                && !out.bailed.contains(&rank)
            {
                out.bailed.push(rank);
            }
        }
        out.bailed.sort_unstable();
        out
    }
}

fn downcast<T: Tracer>(boxed: BoxedTracer) -> T {
    let any: Box<dyn std::any::Any> = boxed;
    *any.downcast::<T>().expect("tracer type mismatch at collection")
}

/// How a caught unwind should be handled.
enum Flow {
    Ok,
    Killed(u64),
    Peer,
    Other(Box<dyn std::any::Any + Send>),
}

fn classify(r: std::thread::Result<()>) -> Flow {
    match r {
        Ok(()) => Flow::Ok,
        Err(e) => {
            if let Some(k) = e.downcast_ref::<RankKilled>() {
                Flow::Killed(k.calls)
            } else if e.is::<PeerFailure>() {
                Flow::Peer
            } else {
                Flow::Other(e)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    rank: WorldRank,
    fabric: Arc<Fabric>,
    clock: ClockModel,
    seed: u64,
    spin: f64,
    tracer: BoxedTracer,
    body: Arc<dyn Fn(&mut Env) + Send + Sync>,
) -> RankExit {
    // Any *genuine* rank panic aborts the world so peers unblock; the
    // guard is disarmed on every controlled exit path.
    let guard = AbortOnPanic(fabric.clone());
    let mut env = Env::new(rank, fabric.clone(), clock, seed, Some(tracer));
    env.set_compute_spin(spin);
    let ran = catch_unwind(AssertUnwindSafe(|| {
        env.init();
        body(&mut env);
    }));
    match classify(ran) {
        Flow::Ok => {}
        Flow::Killed(calls) => {
            std::mem::forget(guard);
            return RankExit::Killed(calls);
        }
        Flow::Peer => {
            // The rest of the body is unreachable: mark it so peers
            // blocked on our app messages unblock, then still flush the
            // trace through the degraded merge — the tracing equivalent
            // of a signal handler writing out the buffer.
            fabric.mark_bailed(rank);
        }
        Flow::Other(e) => {
            drop(guard);
            resume_unwind(e);
        }
    }
    if !env.is_finalized() {
        let fin = catch_unwind(AssertUnwindSafe(|| env.finalize()));
        match classify(fin) {
            Flow::Ok => {}
            Flow::Killed(calls) => {
                std::mem::forget(guard);
                return RankExit::Killed(calls);
            }
            Flow::Peer => {
                fabric.mark_bailed(rank);
                std::mem::forget(guard);
                return RankExit::Abandoned(env.take_tracer());
            }
            Flow::Other(e) => {
                drop(guard);
                resume_unwind(e);
            }
        }
    }
    std::mem::forget(guard);
    RankExit::Done(env.take_tracer().expect("tracer present at world end"))
}

/// Aborts the fabric if the owning thread unwinds.
struct AbortOnPanic(Arc<Fabric>);

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        self.0.abort();
    }
}
