//! Rank-local communicator and group tables.
//!
//! Handles are local indices, mirroring MPI where `MPI_Comm` values are
//! process-local and carry no global meaning — which is precisely why
//! Pilgrim must assign its own globally consistent symbolic ids (§3.3.1).

use std::cell::Cell;

use crate::fabric::{ContextId, WorldRank, WORLD_CONTEXT};

/// Rank-local handle to a communicator. Handle 0 is `MPI_COMM_WORLD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommHandle(pub u32);

/// `MPI_COMM_WORLD`.
pub const COMM_WORLD: CommHandle = CommHandle(0);

/// Rank-local handle to a process group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupHandle(pub u32);

/// Cartesian topology information (`MPI_Cart_create`).
#[derive(Debug, Clone)]
pub struct CartTopology {
    pub dims: Vec<usize>,
    pub periods: Vec<bool>,
}

impl CartTopology {
    /// Comm rank -> coordinates (row-major, as MPI specifies).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        let mut c = vec![0; self.dims.len()];
        let mut r = rank;
        for i in (0..self.dims.len()).rev() {
            c[i] = r % self.dims[i];
            r /= self.dims[i];
        }
        c
    }

    /// Coordinates -> comm rank.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        let mut r = 0;
        for (i, &d) in self.dims.iter().enumerate() {
            r = r * d + coords[i];
        }
        r
    }

    /// Shifted neighbor along `dim` by `disp`; `None` maps to
    /// `MPI_PROC_NULL` at non-periodic boundaries.
    pub fn shift(&self, rank: usize, dim: usize, disp: i64) -> Option<usize> {
        let mut c = self.coords(rank);
        let extent = self.dims[dim] as i64;
        let pos = c[dim] as i64 + disp;
        if self.periods[dim] {
            c[dim] = ((pos % extent + extent) % extent) as usize;
            Some(self.rank_of(&c))
        } else if (0..extent).contains(&pos) {
            c[dim] = pos as usize;
            Some(self.rank_of(&c))
        } else {
            None
        }
    }
}

/// A communicator as seen by one rank.
#[derive(Debug)]
pub struct CommInfo {
    /// Matching context shared by all members.
    pub ctx: ContextId,
    /// Local group: comm rank -> world rank.
    pub group: Vec<WorldRank>,
    /// This rank's position in `group`.
    pub my_rank: usize,
    /// For inter-communicators: the remote group.
    pub remote_group: Option<Vec<WorldRank>>,
    /// Offset of the local group within the union ordering used for
    /// collective lanes (0 for intra-communicators).
    pub union_offset: usize,
    /// Per-rank collective round counters (Cell: advanced through shared
    /// references during tracing callbacks; each Env is single-threaded).
    pub app_round: Cell<u64>,
    pub tool_round: Cell<u64>,
    /// Name set by `MPI_Comm_set_name`.
    pub name: Option<String>,
    /// Cartesian topology attached by `MPI_Cart_create`.
    pub cart: Option<CartTopology>,
}

impl CommInfo {
    /// Size of the local group.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Total participants in the collective lane (union size for inter).
    pub fn lane_size(&self) -> usize {
        self.group.len() + self.remote_group.as_ref().map_or(0, |g| g.len())
    }

    /// This rank's slot in the collective lane.
    pub fn lane_rank(&self) -> usize {
        self.union_offset + self.my_rank
    }

    /// Members of the collective lane in lane-rank order: the local group
    /// for intra-communicators, the union ordering (low group first) for
    /// inter-communicators. Both sides compute the same list.
    pub fn lane_group(&self) -> Vec<WorldRank> {
        match &self.remote_group {
            None => self.group.clone(),
            Some(remote) if self.union_offset == 0 => {
                self.group.iter().chain(remote.iter()).copied().collect()
            }
            Some(remote) => remote.iter().chain(self.group.iter()).copied().collect(),
        }
    }

    /// Resolves a peer rank to a world rank: via the remote group on an
    /// inter-communicator, the local group otherwise.
    pub fn peer_world(&self, rank: i32) -> WorldRank {
        let g = self.remote_group.as_ref().unwrap_or(&self.group);
        *g.get(rank as usize).unwrap_or_else(|| panic!("rank {rank} out of range for communicator"))
    }

    pub fn is_inter(&self) -> bool {
        self.remote_group.is_some()
    }
}

/// Per-rank communicator table.
#[derive(Debug)]
pub struct CommTable {
    slots: Vec<Option<CommInfo>>,
    free: Vec<u32>,
}

impl CommTable {
    /// Creates the table with `MPI_COMM_WORLD` installed as handle 0.
    pub fn new(world_size: usize, my_world_rank: WorldRank) -> Self {
        let world = CommInfo {
            ctx: WORLD_CONTEXT,
            group: (0..world_size).collect(),
            my_rank: my_world_rank,
            remote_group: None,
            union_offset: 0,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        };
        CommTable { slots: vec![Some(world)], free: Vec::new() }
    }

    pub fn get(&self, h: CommHandle) -> &CommInfo {
        self.slots
            .get(h.0 as usize)
            .and_then(|c| c.as_ref())
            .unwrap_or_else(|| panic!("use of invalid communicator handle {}", h.0))
    }

    pub fn get_mut(&mut self, h: CommHandle) -> &mut CommInfo {
        self.slots
            .get_mut(h.0 as usize)
            .and_then(|c| c.as_mut())
            .unwrap_or_else(|| panic!("use of invalid communicator handle {}", h.0))
    }

    /// Looks up a communicator, returning `None` for dangling handles.
    pub fn try_get(&self, h: CommHandle) -> Option<&CommInfo> {
        self.slots.get(h.0 as usize).and_then(|c| c.as_ref())
    }

    /// Installs a communicator, reusing freed handle slots as MPI
    /// implementations do.
    pub fn insert(&mut self, info: CommInfo) -> CommHandle {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(info);
            return CommHandle(i);
        }
        self.slots.push(Some(info));
        CommHandle((self.slots.len() - 1) as u32)
    }

    /// Reserves an empty slot (for `MPI_Comm_idup`, whose handle exists
    /// before the communicator is usable).
    pub fn reserve(&mut self) -> CommHandle {
        if let Some(i) = self.free.pop() {
            return CommHandle(i);
        }
        self.slots.push(None);
        CommHandle((self.slots.len() - 1) as u32)
    }

    /// Fills a reserved slot.
    pub fn fill(&mut self, h: CommHandle, info: CommInfo) {
        let slot = &mut self.slots[h.0 as usize];
        debug_assert!(slot.is_none(), "fill of occupied comm slot");
        *slot = Some(info);
    }

    /// `MPI_Comm_free`.
    pub fn remove(&mut self, h: CommHandle) {
        assert_ne!(h, COMM_WORLD, "cannot free MPI_COMM_WORLD");
        let slot = self
            .slots
            .get_mut(h.0 as usize)
            .unwrap_or_else(|| panic!("free of invalid communicator handle {}", h.0));
        assert!(slot.is_some(), "double free of communicator handle {}", h.0);
        *slot = None;
        self.free.push(h.0);
    }
}

/// Per-rank group table.
#[derive(Debug, Default)]
pub struct GroupTable {
    slots: Vec<Option<Vec<WorldRank>>>,
    free: Vec<u32>,
}

impl GroupTable {
    pub fn new() -> Self {
        GroupTable::default()
    }

    pub fn insert(&mut self, members: Vec<WorldRank>) -> GroupHandle {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(members);
            return GroupHandle(i);
        }
        self.slots.push(Some(members));
        GroupHandle((self.slots.len() - 1) as u32)
    }

    pub fn get(&self, h: GroupHandle) -> &[WorldRank] {
        self.slots
            .get(h.0 as usize)
            .and_then(|g| g.as_ref())
            .map(|g| g.as_slice())
            .unwrap_or_else(|| panic!("use of invalid group handle {}", h.0))
    }

    pub fn remove(&mut self, h: GroupHandle) {
        let slot = self
            .slots
            .get_mut(h.0 as usize)
            .unwrap_or_else(|| panic!("free of invalid group handle {}", h.0));
        assert!(slot.is_some(), "double free of group handle {}", h.0);
        *slot = None;
        self.free.push(h.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_is_handle_zero() {
        let t = CommTable::new(4, 2);
        let w = t.get(COMM_WORLD);
        assert_eq!(w.size(), 4);
        assert_eq!(w.my_rank, 2);
        assert_eq!(w.ctx, WORLD_CONTEXT);
        assert!(!w.is_inter());
    }

    #[test]
    fn handle_reuse_after_free() {
        let mut t = CommTable::new(2, 0);
        let info = CommInfo {
            ctx: 5,
            group: vec![0, 1],
            my_rank: 0,
            remote_group: None,
            union_offset: 0,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        };
        let h = t.insert(info);
        t.remove(h);
        let info2 = CommInfo {
            ctx: 6,
            group: vec![0],
            my_rank: 0,
            remote_group: None,
            union_offset: 0,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        };
        let h2 = t.insert(info2);
        assert_eq!(h, h2, "freed handle slots are reused");
    }

    #[test]
    #[should_panic(expected = "cannot free MPI_COMM_WORLD")]
    fn freeing_world_panics() {
        let mut t = CommTable::new(2, 0);
        t.remove(COMM_WORLD);
    }

    #[test]
    fn intercomm_peer_resolution() {
        let info = CommInfo {
            ctx: 9,
            group: vec![0, 1],
            my_rank: 1,
            remote_group: Some(vec![5, 6, 7]),
            union_offset: 0,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        };
        assert_eq!(info.peer_world(2), 7, "inter p2p resolves via remote group");
        assert_eq!(info.lane_size(), 5);
        assert_eq!(info.lane_group(), vec![0, 1, 5, 6, 7]);
        assert!(info.is_inter());
    }

    #[test]
    fn union_lane_rank_offsets() {
        let info = CommInfo {
            ctx: 9,
            group: vec![5, 6],
            my_rank: 1,
            remote_group: Some(vec![0, 1]),
            union_offset: 2,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        };
        assert_eq!(info.lane_rank(), 3);
        assert_eq!(info.lane_group(), vec![0, 1, 5, 6], "low group orders first");
    }

    #[test]
    fn group_table_lifecycle() {
        let mut g = GroupTable::new();
        let h = g.insert(vec![3, 1, 4]);
        assert_eq!(g.get(h), &[3, 1, 4]);
        g.remove(h);
        let h2 = g.insert(vec![2]);
        assert_eq!(h.0, h2.0);
    }
}
