//! The per-rank MPI API surface.
//!
//! An [`Env`] is handed to each rank's body closure and exposes the MPI
//! operations the simulator implements. Every operation is executed against
//! the shared fabric, advances the rank's simulated clock, and is then
//! reported to the attached tracer as a [`CallRec`] carrying all input and
//! output arguments — the PMPI wrapper contract of the paper (§3.1):
//! prologue (timestamp), `PMPI_*` body, epilogue (record + tracer steps).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::{ClockModel, SimClock};
use crate::comm::{CommHandle, CommInfo, CommTable, GroupHandle, GroupTable, COMM_WORLD};
use crate::datatype::{BasicType, DatatypeHandle, TypeTable};
use crate::fabric::{Fabric, Lane, Message, WorldRank};
use crate::fault;
use crate::heap::{Addr, SimHeap};
use crate::hooks::{Arg, BoxedTracer, CallRec, Directive, ReplayDirector, TraceCtx};
use crate::request::{NbOp, ReqKind, RequestHandle, RequestTable, REQUEST_NULL};
use crate::types::{Status, ANY_SOURCE, ANY_TAG, PROC_NULL};
use crate::FuncId;

/// The rank-local MPI environment.
pub struct Env {
    rank: WorldRank,
    size: usize,
    fabric: Arc<Fabric>,
    pub(crate) comms: CommTable,
    groups: GroupTable,
    types: TypeTable,
    heap: SimHeap,
    reqs: RequestTable,
    clock: SimClock,
    tracer: Option<BoxedTracer>,
    compute_spin: f64,
    finalized: bool,
    /// Count of MPI calls made (paper plots total call counts in Fig 6).
    calls: u64,
    /// Fault plan: die right after this call number (1-based).
    kill_at: Option<u64>,
    /// Directed-replay seam: when set, recorded nondeterministic
    /// resolutions override the fabric's free choices.
    director: Option<Box<dyn ReplayDirector>>,
}

impl Env {
    pub(crate) fn new(
        rank: WorldRank,
        fabric: Arc<Fabric>,
        clock_model: ClockModel,
        seed: u64,
        tracer: Option<BoxedTracer>,
    ) -> Self {
        let size = fabric.n_ranks();
        let kill_at = fabric.fault_plan().and_then(|p| p.kill_for(rank));
        Env {
            rank,
            size,
            comms: CommTable::new(size, rank),
            groups: GroupTable::new(),
            types: TypeTable::new(),
            heap: SimHeap::new(),
            reqs: RequestTable::new(),
            clock: SimClock::new(clock_model, seed, rank),
            fabric,
            tracer,
            compute_spin: 0.0,
            finalized: false,
            calls: 0,
            kill_at,
            director: None,
        }
    }

    /// World rank of this process.
    pub fn world_rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.size
    }

    /// `MPI_COMM_WORLD`.
    pub fn comm_world(&self) -> CommHandle {
        COMM_WORLD
    }

    /// This rank's rank within a communicator, *without* recording an
    /// `MPI_Comm_rank` call (tool-side introspection, used by the trace
    /// replayer).
    pub fn comm_rank_untraced(&self, comm: CommHandle) -> usize {
        self.comms.get(comm).my_rank
    }

    /// A communicator's local size, untraced.
    pub fn comm_size_untraced(&self, comm: CommHandle) -> usize {
        self.comms.get(comm).size()
    }

    /// Handle for a predefined basic datatype.
    pub fn basic(&self, b: BasicType) -> DatatypeHandle {
        b.handle()
    }

    /// Total MPI calls made by this rank so far.
    pub fn call_count(&self) -> u64 {
        self.calls
    }

    /// Current simulated time (ns).
    pub fn sim_time(&self) -> u64 {
        self.clock.now()
    }

    /// Advances the simulated clock past a compute phase. When the world
    /// was configured with a compute-spin factor, also burns proportional
    /// real CPU time so tracing overhead can be measured against a
    /// realistic compute budget.
    pub fn compute(&mut self, ns: u64) {
        self.clock.compute(ns);
        if self.compute_spin > 0.0 {
            let budget = std::time::Duration::from_nanos((ns as f64 * self.compute_spin) as u64);
            let start = std::time::Instant::now();
            while start.elapsed() < budget {
                std::hint::spin_loop();
            }
        }
    }

    pub(crate) fn set_compute_spin(&mut self, factor: f64) {
        self.compute_spin = factor;
    }

    // ------------------------------------------------------------------
    // Tracer dispatch
    // ------------------------------------------------------------------

    /// Clock helpers for submodules: entry timestamp with call overhead.
    pub(crate) fn clock_now_entry(&mut self) -> u64 {
        let t0 = self.clock.now();
        self.clock.call_entry();
        t0
    }

    pub(crate) fn clock_now(&self) -> u64 {
        self.clock.now()
    }

    pub(crate) fn emit_rec(&mut self, rec: CallRec, t0: u64, t1: u64) {
        self.emit(rec, t0, t1);
    }

    fn emit(&mut self, rec: CallRec, t0: u64, t1: u64) {
        self.calls += 1;
        if let Some(mut tr) = self.tracer.take() {
            // The hook may unwind (e.g. a tool collective hits a dead
            // peer); restore the tracer first so its state — including any
            // checkpoint it stored — survives the unwind, then re-raise.
            let res = {
                let ctx = TraceCtx {
                    world_rank: self.rank,
                    world_size: self.size,
                    fabric: &self.fabric,
                    comms: &self.comms,
                };
                catch_unwind(AssertUnwindSafe(|| tr.on_call(&ctx, &rec, t0, t1)))
            };
            self.tracer = Some(tr);
            if let Err(e) = res {
                resume_unwind(e);
            }
        }
        // Injected kill: the call above completed (sends delivered, tracer
        // updated, checkpoint possibly stored), so peers can prove that
        // anything still missing from this rank will never arrive.
        if self.kill_at == Some(self.calls) {
            self.fabric.mark_dead(self.rank, self.calls);
            fault::raise_killed(self.rank, self.calls);
        }
    }

    pub(crate) fn run_finalize_hook(&mut self) {
        if let Some(mut tr) = self.tracer.take() {
            let res = {
                let ctx = TraceCtx {
                    world_rank: self.rank,
                    world_size: self.size,
                    fabric: &self.fabric,
                    comms: &self.comms,
                };
                catch_unwind(AssertUnwindSafe(|| tr.on_finalize(&ctx)))
            };
            self.tracer = Some(tr);
            if let Err(e) = res {
                resume_unwind(e);
            }
        }
    }

    pub(crate) fn take_tracer(&mut self) -> Option<BoxedTracer> {
        self.tracer.take()
    }

    pub(crate) fn is_finalized(&self) -> bool {
        self.finalized
    }

    // ------------------------------------------------------------------
    // Memory management (observed by tracers, not MPI calls)
    // ------------------------------------------------------------------

    /// Simulated `malloc`; the tracer observes the allocation.
    pub fn malloc(&mut self, size: u64) -> Addr {
        let addr = self.heap.malloc(size);
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_alloc(addr, size.max(1));
        }
        addr
    }

    /// Simulated `free`; the tracer observes the release.
    pub fn free(&mut self, addr: Addr) {
        self.heap.free(addr);
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_free(addr);
        }
    }

    /// Writes raw bytes into the simulated heap.
    pub fn heap_write(&mut self, addr: Addr, bytes: &[u8]) {
        self.heap.write(addr, bytes);
    }

    /// Reads raw bytes from the simulated heap.
    pub fn heap_read(&self, addr: Addr, len: u64) -> Vec<u8> {
        self.heap.read(addr, len).to_vec()
    }

    /// Writes u64 values into the simulated heap.
    pub fn heap_write_u64s(&mut self, addr: Addr, vals: &[u64]) {
        self.heap.write_u64s(addr, vals);
    }

    /// Reads u64 values from the simulated heap.
    pub fn heap_read_u64s(&self, addr: Addr, count: usize) -> Vec<u64> {
        self.heap.read_u64s(addr, count)
    }

    // ------------------------------------------------------------------
    // Init / finalize
    // ------------------------------------------------------------------

    pub(crate) fn init(&mut self) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::Init, vec![]), t0, t1);
    }

    /// `MPI_Finalize`: records the call, then runs the tracer's finalize
    /// hook (where Pilgrim performs inter-process compression).
    pub fn finalize(&mut self) {
        assert!(!self.finalized, "MPI_Finalize called twice");
        let t0 = self.clock.now();
        self.clock.call_entry();
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::Finalize, vec![]), t0, t1);
        self.run_finalize_hook();
        self.finalized = true;
    }

    // ------------------------------------------------------------------
    // Communicator queries
    // ------------------------------------------------------------------

    /// `MPI_Comm_rank`.
    pub fn comm_rank(&mut self, comm: CommHandle) -> usize {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let rank = self.comms.get(comm).my_rank;
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(FuncId::CommRank, vec![Arg::Comm(comm.0), Arg::Int(rank as i64)]),
            t0,
            t1,
        );
        rank
    }

    /// `MPI_Comm_size` (local group size).
    pub fn comm_size(&mut self, comm: CommHandle) -> usize {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let size = self.comms.get(comm).size();
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(FuncId::CommSize, vec![Arg::Comm(comm.0), Arg::Int(size as i64)]),
            t0,
            t1,
        );
        size
    }

    /// `MPI_Comm_set_name`.
    pub fn comm_set_name(&mut self, comm: CommHandle, name: &str) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.comms.get_mut(comm).name = Some(name.to_string());
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(FuncId::CommSetName, vec![Arg::Comm(comm.0), Arg::Str(name.to_string())]),
            t0,
            t1,
        );
    }

    /// `MPI_Comm_group`.
    pub fn comm_group(&mut self, comm: CommHandle) -> GroupHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let members = self.comms.get(comm).group.clone();
        let g = self.groups.insert(members);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(FuncId::CommGroup, vec![Arg::Comm(comm.0), Arg::Group(g.0)]),
            t0,
            t1,
        );
        g
    }

    /// `MPI_Group_incl`: group from the listed ranks of an existing group.
    pub fn group_incl(&mut self, group: GroupHandle, ranks: &[usize]) -> GroupHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let base = self.groups.get(group).to_vec();
        let members: Vec<WorldRank> = ranks.iter().map(|&r| base[r]).collect();
        let g = self.groups.insert(members);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::GroupIncl,
                vec![
                    Arg::Group(group.0),
                    Arg::Int(ranks.len() as i64),
                    Arg::IntArr(ranks.iter().map(|&r| r as i64).collect()),
                    Arg::Group(g.0),
                ],
            ),
            t0,
            t1,
        );
        g
    }

    /// World ranks of a group (helper, untraced).
    pub fn group_members(&self, group: GroupHandle) -> Vec<WorldRank> {
        self.groups.get(group).to_vec()
    }

    /// `MPI_Group_free`.
    pub fn group_free(&mut self, group: GroupHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.groups.remove(group);
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::GroupFree, vec![Arg::Group(group.0)]), t0, t1);
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    fn pack_buf(&self, buf: Addr, count: u64, dt: DatatypeHandle) -> Vec<u8> {
        let d = self.types.get(dt);
        self.heap.pack(buf, &d.blocks, d.extent, count)
    }

    fn unpack_buf(&mut self, buf: Addr, count: u64, dt: DatatypeHandle, data: &[u8]) {
        let d = self.types.get(dt).clone();
        self.heap.unpack(buf, &d.blocks, d.extent, count, data);
    }

    /// World rank of a concrete (non-wildcard) source on `info`, used for
    /// dead-sender detection; `None` for `MPI_ANY_SOURCE`.
    fn src_world_of(info: &CommInfo, src: i32) -> Option<WorldRank> {
        if src == ANY_SOURCE {
            None
        } else {
            Some(info.peer_world(src))
        }
    }

    fn do_send(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) {
        if dest == PROC_NULL {
            return;
        }
        let data = self.pack_buf(buf, count, dt);
        let info = self.comms.get(comm);
        let msg = Message {
            ctx: info.ctx,
            src_comm_rank: info.my_rank as i32,
            tag,
            data,
            send_time: self.clock.now(),
        };
        let dest_world = info.peer_world(dest);
        self.fabric.send(dest_world, msg);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the MPI C signature
    fn send_like(
        &mut self,
        func: FuncId,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.do_send(buf, count, dt, dest, tag, comm);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                func,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(dest),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Send`. (Buffered/synchronous/ready variants share the eager
    /// delivery semantics of the simulator but are traced distinctly.)
    pub fn send(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) {
        self.send_like(FuncId::Send, buf, count, dt, dest, tag, comm);
    }

    /// `MPI_Bsend`.
    pub fn bsend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) {
        self.send_like(FuncId::Bsend, buf, count, dt, dest, tag, comm);
    }

    /// `MPI_Ssend`.
    pub fn ssend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) {
        self.send_like(FuncId::Ssend, buf, count, dt, dest, tag, comm);
    }

    /// `MPI_Rsend`.
    pub fn rsend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) {
        self.send_like(FuncId::Rsend, buf, count, dt, dest, tag, comm);
    }

    /// `MPI_Recv`.
    pub fn recv(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> Status {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let status = if src == PROC_NULL {
            Status::proc_null()
        } else {
            let msg = self.recv_msg(FuncId::Recv, src, tag, comm);
            self.clock.absorb_message(msg.send_time, msg.data.len() as u64);
            let status =
                Status { source: msg.src_comm_rank, tag: msg.tag, count: msg.data.len() as u64 };
            self.unpack_buf(buf, count, dt, &msg.data);
            status
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Recv,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(src),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Status { source: status.source, tag: status.tag },
                ],
            ),
            t0,
            t1,
        );
        status
    }

    /// `MPI_Sendrecv`.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        dest: i32,
        sendtag: i32,
        recvbuf: Addr,
        recvcount: u64,
        recvtype: DatatypeHandle,
        src: i32,
        recvtag: i32,
        comm: CommHandle,
    ) -> Status {
        let t0 = self.clock.now();
        self.clock.call_entry();
        // Post the receive first so an incoming eager message matches, then
        // send, then complete the receive — deadlock-free for exchanges.
        let directed = self.directed_match(FuncId::Sendrecv, src, recvtag, comm);
        let slot = if src == PROC_NULL {
            None
        } else {
            let (psrc, ptag) = directed.unwrap_or((src, recvtag));
            let info = self.comms.get(comm);
            let src_world = Self::src_world_of(info, psrc);
            Some(self.fabric.post_recv(self.rank, info.ctx, psrc, ptag, src_world))
        };
        self.do_send(sendbuf, sendcount, sendtype, dest, sendtag, comm);
        let status = match slot {
            None => Status::proc_null(),
            Some(slot) => {
                if directed.is_some() && !self.poll_directed(|_| slot.is_ready()) {
                    self.replay_halt(
                        FuncId::Sendrecv,
                        "recorded sendrecv match never arrived".into(),
                    );
                }
                let msg = slot.wait_take(&self.fabric, self.rank);
                self.clock.absorb_message(msg.send_time, msg.data.len() as u64);
                let status = Status {
                    source: msg.src_comm_rank,
                    tag: msg.tag,
                    count: msg.data.len() as u64,
                };
                self.unpack_buf(recvbuf, recvcount, recvtype, &msg.data);
                status
            }
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Sendrecv,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Rank(dest),
                    Arg::Tag(sendtag),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(recvtype.0),
                    Arg::Rank(src),
                    Arg::Tag(recvtag),
                    Arg::Comm(comm.0),
                    Arg::Status { source: status.source, tag: status.tag },
                ],
            ),
            t0,
            t1,
        );
        status
    }

    /// `MPI_Sendrecv_replace`: exchange using a single buffer.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI C signature
    pub fn sendrecv_replace(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        sendtag: i32,
        src: i32,
        recvtag: i32,
        comm: CommHandle,
    ) -> Status {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let directed = self.directed_match(FuncId::SendrecvReplace, src, recvtag, comm);
        let slot = if src == PROC_NULL {
            None
        } else {
            let (psrc, ptag) = directed.unwrap_or((src, recvtag));
            let info = self.comms.get(comm);
            let src_world = Self::src_world_of(info, psrc);
            Some(self.fabric.post_recv(self.rank, info.ctx, psrc, ptag, src_world))
        };
        // Send first (the outgoing data is snapshot before replacement).
        self.do_send(buf, count, dt, dest, sendtag, comm);
        let status = match slot {
            None => Status::proc_null(),
            Some(slot) => {
                if directed.is_some() && !self.poll_directed(|_| slot.is_ready()) {
                    self.replay_halt(
                        FuncId::SendrecvReplace,
                        "recorded sendrecv match never arrived".into(),
                    );
                }
                let msg = slot.wait_take(&self.fabric, self.rank);
                self.clock.absorb_message(msg.send_time, msg.data.len() as u64);
                let status = Status {
                    source: msg.src_comm_rank,
                    tag: msg.tag,
                    count: msg.data.len() as u64,
                };
                self.unpack_buf(buf, count, dt, &msg.data);
                status
            }
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::SendrecvReplace,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(dest),
                    Arg::Tag(sendtag),
                    Arg::Rank(src),
                    Arg::Tag(recvtag),
                    Arg::Comm(comm.0),
                    Arg::Status { source: status.source, tag: status.tag },
                ],
            ),
            t0,
            t1,
        );
        status
    }

    #[allow(clippy::too_many_arguments)] // mirrors the MPI C signature
    fn isend_like(
        &mut self,
        func: FuncId,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.do_send(buf, count, dt, dest, tag, comm);
        let req = self.reqs.insert(ReqKind::Send);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                func,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(dest),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Request(req.0),
                ],
            ),
            t0,
            t1,
        );
        req
    }

    /// `MPI_Isend`.
    pub fn isend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.isend_like(FuncId::Isend, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Ibsend`.
    pub fn ibsend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.isend_like(FuncId::Ibsend, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Issend`.
    pub fn issend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.isend_like(FuncId::Issend, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Irsend`.
    pub fn irsend(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.isend_like(FuncId::Irsend, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Irecv`.
    pub fn irecv(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let req = if src == PROC_NULL {
            self.reqs.insert(ReqKind::Send)
        } else {
            // A wildcard Irecv is directed at post time: the resolution was
            // recorded at this call's index when its completion reported
            // the matched (source, tag).
            let (psrc, ptag) =
                self.directed_match(FuncId::Irecv, src, tag, comm).unwrap_or((src, tag));
            let info = self.comms.get(comm);
            let src_world = Self::src_world_of(info, psrc);
            let slot = self.fabric.post_recv(self.rank, info.ctx, psrc, ptag, src_world);
            let d = self.types.get(dt);
            self.reqs.insert(ReqKind::Recv {
                slot,
                buf,
                blocks: d.blocks.clone(),
                extent: d.extent,
                count,
            })
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Irecv,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(src),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Request(req.0),
                ],
            ),
            t0,
            t1,
        );
        req
    }

    /// `MPI_Probe`.
    pub fn probe(&mut self, src: i32, tag: i32, comm: CommHandle) -> Status {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let directed = self.directed_match(FuncId::Probe, src, tag, comm);
        let (psrc, ptag) = directed.unwrap_or((src, tag));
        let (ctx, src_world) = {
            let info = self.comms.get(comm);
            (info.ctx, Self::src_world_of(info, psrc))
        };
        if directed.is_some()
            && !self.poll_directed(|me| me.fabric.iprobe(me.rank, ctx, psrc, ptag).is_some())
        {
            self.replay_halt(
                FuncId::Probe,
                format!("recorded probe hit (source {psrc}, tag {ptag}) never arrived"),
            );
        }
        let (s, t, count) = self.fabric.probe(self.rank, ctx, psrc, ptag, src_world);
        let status = Status { source: s, tag: t, count };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Probe,
                vec![
                    Arg::Rank(src),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Status { source: s, tag: t },
                ],
            ),
            t0,
            t1,
        );
        status
    }

    /// `MPI_Iprobe`.
    pub fn iprobe(&mut self, src: i32, tag: i32, comm: CommHandle) -> Option<Status> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let ctx = self.comms.get(comm).ctx;
        // An Iprobe's flag is nondeterministic even for concrete (src,
        // tag), so directed replay consults the directive on every call:
        // a recorded miss replays as a miss without touching the fabric, a
        // recorded hit waits for exactly the recorded message.
        let directive =
            if self.director.is_some() { self.next_directive(FuncId::Iprobe) } else { None };
        let found = match directive {
            Some(Directive::Flag(false)) => None,
            Some(Directive::MatchSource { source, tag: ptag }) => {
                let dsrc = self.comms.get(comm).my_rank as i32 + source;
                if !self.poll_directed(|me| me.fabric.iprobe(me.rank, ctx, dsrc, ptag).is_some()) {
                    self.replay_halt(
                        FuncId::Iprobe,
                        format!("recorded iprobe hit (source {dsrc}, tag {ptag}) never arrived"),
                    );
                }
                self.fabric.iprobe(self.rank, ctx, dsrc, ptag)
            }
            _ => self.fabric.iprobe(self.rank, ctx, src, tag),
        };
        let status = found.map(|(s, t, count)| Status { source: s, tag: t, count });
        let t1 = self.clock.now();
        let (flag, s, t) = match status {
            Some(st) => (1, st.source, st.tag),
            None => (0, PROC_NULL, ANY_TAG),
        };
        self.emit(
            CallRec::new(
                FuncId::Iprobe,
                vec![
                    Arg::Rank(src),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Int(flag),
                    Arg::Status { source: s, tag: t },
                ],
            ),
            t0,
            t1,
        );
        status
    }

    // ------------------------------------------------------------------
    // Request completion
    // ------------------------------------------------------------------

    /// Is the request *active* (null and inactive-persistent requests are
    /// ignored by the any/some/all selection rules)?
    fn req_active(&self, h: RequestHandle) -> bool {
        if h == REQUEST_NULL {
            return false;
        }
        match self.reqs.get(h) {
            ReqKind::PersistentSend { active, .. } => *active,
            ReqKind::PersistentRecv { pending, .. } => pending.is_some(),
            _ => true,
        }
    }

    /// Is the request ready to complete without blocking?
    fn req_ready(&self, h: RequestHandle) -> bool {
        match self.reqs.get(h) {
            ReqKind::Send => true,
            ReqKind::Recv { slot, .. } => slot.is_ready(),
            ReqKind::Coll { coll, round, .. } => coll.is_ready(*round),
            // Inactive persistent requests complete immediately; active
            // sends are eager, active receives wait on their slot.
            ReqKind::PersistentSend { .. } => true,
            ReqKind::PersistentRecv { pending, .. } => {
                pending.as_ref().is_none_or(|(slot, _, _)| slot.is_ready())
            }
        }
    }

    /// Completes a ready (or send-type) request, producing its status.
    /// Persistent requests become inactive instead of being freed.
    fn complete(&mut self, h: RequestHandle) -> Status {
        if self.reqs.is_persistent(h) {
            let taken = match self.reqs.get_mut(h) {
                ReqKind::PersistentSend { active, .. } => {
                    *active = false;
                    None
                }
                ReqKind::PersistentRecv { pending, .. } => pending.take(),
                _ => unreachable!(),
            };
            return match taken {
                None => Status::proc_null(),
                Some((slot, blocks, extent)) => {
                    let msg = slot.wait_take(&self.fabric, self.rank);
                    self.clock.absorb_message(msg.send_time, msg.data.len() as u64);
                    let status = Status {
                        source: msg.src_comm_rank,
                        tag: msg.tag,
                        count: msg.data.len() as u64,
                    };
                    let (buf, count) = match self.reqs.get(h) {
                        ReqKind::PersistentRecv { buf, count, .. } => (*buf, *count),
                        _ => unreachable!(),
                    };
                    self.heap.unpack(buf, &blocks, extent, count, &msg.data);
                    status
                }
            };
        }
        let kind = self.reqs.remove(h);
        match kind {
            ReqKind::PersistentSend { .. } | ReqKind::PersistentRecv { .. } => unreachable!(),
            ReqKind::Send => Status::proc_null(),
            ReqKind::Recv { slot, buf, blocks, extent, count } => {
                let msg = slot.wait_take(&self.fabric, self.rank);
                self.clock.absorb_message(msg.send_time, msg.data.len() as u64);
                let status = Status {
                    source: msg.src_comm_rank,
                    tag: msg.tag,
                    count: msg.data.len() as u64,
                };
                self.heap.unpack(buf, &blocks, extent, count, &msg.data);
                status
            }
            ReqKind::Coll { coll, round, lane_rank: _, op } => {
                let (contribs, sync) = coll.wait_collect(&self.fabric, round, self.rank);
                let bytes: u64 = contribs.iter().map(|c| c.len() as u64).sum();
                self.clock.absorb_collective(sync, bytes.min(1 << 16));
                match op {
                    NbOp::Barrier => {}
                    NbOp::Allreduce { recv, lanes, op } => {
                        let mut acc = bytes_to_u64s(&contribs[0]);
                        for c in contribs.iter().skip(1) {
                            let next = bytes_to_u64s(c);
                            op.combine(&mut acc, &next);
                        }
                        debug_assert_eq!(acc.len(), lanes);
                        self.heap.write_u64s(recv, &acc);
                    }
                    NbOp::Idup { parent, new_handle } => {
                        let ctx = u64::from_le_bytes(
                            contribs[0].as_slice().try_into().expect("ctx bytes"),
                        );
                        let p = self.comms.get(parent);
                        let info = CommInfo {
                            ctx,
                            group: p.group.clone(),
                            my_rank: p.my_rank,
                            remote_group: None,
                            union_offset: 0,
                            app_round: std::cell::Cell::new(0),
                            tool_round: std::cell::Cell::new(0),
                            name: None,
                            cart: None,
                        };
                        self.fabric.ensure_coll(ctx, Lane::App, &info.group);
                        self.fabric.ensure_coll(ctx, Lane::Tool, &info.group);
                        self.comms.fill(new_handle, info);
                    }
                }
                Status::proc_null()
            }
        }
    }

    /// Spin-waits until `pred` holds, yielding and checking for aborts.
    fn poll_until<F: FnMut(&Self) -> bool>(&self, mut pred: F) {
        let mut spins = 0u32;
        while !pred(self) {
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
                self.fabric.check_abort();
            }
            spins += 1;
        }
    }

    // ------------------------------------------------------------------
    // Directed replay
    // ------------------------------------------------------------------

    /// Installs a replay director: recorded nondeterministic resolutions
    /// (wildcard matches, completion orders, test/probe flags) override
    /// the fabric's free choices so a replay reproduces the recorded
    /// schedule bit-for-bit. Install from inside the rank body before the
    /// first MPI call. A directive that cannot be satisfied reports
    /// through [`ReplayDirector::unsatisfied`] and unwinds the rank as
    /// dead, so peers detect it through the usual dead-peer path.
    pub fn set_replay_director(&mut self, director: Box<dyn ReplayDirector>) {
        fault::silence_fault_panics();
        self.director = Some(director);
    }

    /// The directive recorded for the upcoming call, if any.
    fn next_directive(&mut self, func: FuncId) -> Option<Directive> {
        let idx = self.calls;
        self.director.as_mut().and_then(|d| d.directive(idx, func))
    }

    /// The directed `(source, tag)` for a wildcard receive/probe posting:
    /// `None` for concrete matches, `PROC_NULL` sources, undirected runs,
    /// or calls without a recorded resolution. The directive's source is
    /// a delta relative to the caller's rank in `comm` (the same relative
    /// form the trace encoder uses), absolutized here.
    fn directed_match(
        &mut self,
        func: FuncId,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> Option<(i32, i32)> {
        if self.director.is_none() || src == PROC_NULL || (src != ANY_SOURCE && tag != ANY_TAG) {
            return None;
        }
        match self.next_directive(func) {
            Some(Directive::MatchSource { source, tag }) => {
                let me = self.comms.get(comm).my_rank as i32;
                Some((me + source, tag))
            }
            _ => None,
        }
    }

    /// Bounded directed wait: spins until `pred` holds or a real-time
    /// budget expires. A directive that can never be satisfied must fail
    /// fast (the caller raises a replay halt), not hang the world.
    fn poll_directed<F: FnMut(&Self) -> bool>(&self, mut pred: F) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        let mut spins = 0u32;
        while !pred(self) {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
                self.fabric.check_abort();
            }
            spins += 1;
        }
        true
    }

    /// Divergence during directed replay: the recorded resolution cannot
    /// be reproduced. Reports the detail to the director, marks the rank
    /// dead (peers unwind through dead-peer detection), then unwinds.
    fn replay_halt(&mut self, func: FuncId, detail: String) -> ! {
        let idx = self.calls;
        if let Some(d) = self.director.as_mut() {
            d.unsatisfied(self.rank, idx, func, detail);
        }
        self.fabric.mark_dead(self.rank, self.calls);
        fault::raise_killed(self.rank, self.calls)
    }

    /// Completes exactly the recorded index set, in recorded order, for a
    /// directed Waitsome/Testsome.
    fn complete_directed_set(
        &mut self,
        func: FuncId,
        reqs: &mut [RequestHandle],
        indices: &[u32],
        out: &mut Vec<(usize, Status)>,
    ) {
        for &i in indices {
            let i = i as usize;
            if i >= reqs.len() || !self.req_active(reqs[i]) {
                self.replay_halt(
                    func,
                    format!("recorded completion index {i} is not an active request"),
                );
            }
        }
        if !self.poll_directed(|me| indices.iter().all(|&i| me.req_ready(reqs[i as usize]))) {
            self.replay_halt(
                func,
                format!("recorded completion set {indices:?} never became ready"),
            );
        }
        for &i in indices {
            let i = i as usize;
            let persistent = self.reqs.is_persistent(reqs[i]);
            let status = self.complete(reqs[i]);
            if !persistent {
                reqs[i] = REQUEST_NULL;
            }
            out.push((i, status));
        }
    }

    /// Completes one blocking receive of `(src, tag)` on `comm`, honoring
    /// a recorded wildcard resolution when a director is installed.
    fn recv_msg(&mut self, func: FuncId, src: i32, tag: i32, comm: CommHandle) -> Message {
        match self.directed_match(func, src, tag, comm) {
            Some((dsrc, dtag)) => {
                let info = self.comms.get(comm);
                let (ctx, src_world) = (info.ctx, Self::src_world_of(info, dsrc));
                let slot = self.fabric.post_recv(self.rank, ctx, dsrc, dtag, src_world);
                if !self.poll_directed(|_| slot.is_ready()) {
                    self.replay_halt(
                        func,
                        format!("recorded match (source {dsrc}, tag {dtag}) never arrived"),
                    );
                }
                slot.wait_take(&self.fabric, self.rank)
            }
            None => {
                let info = self.comms.get(comm);
                let (ctx, src_world) = (info.ctx, Self::src_world_of(info, src));
                let slot = self.fabric.post_recv(self.rank, ctx, src, tag, src_world);
                slot.wait_take(&self.fabric, self.rank)
            }
        }
    }

    /// Whether request `h` waits on something a failed rank will never
    /// provide.
    fn req_blocked_on_dead(&self, h: RequestHandle) -> Option<WorldRank> {
        match self.reqs.get(h) {
            ReqKind::Recv { slot, .. } => slot.blocked_on_dead(&self.fabric),
            ReqKind::PersistentRecv { pending, .. } => {
                pending.as_ref().and_then(|(slot, _, _)| slot.blocked_on_dead(&self.fabric))
            }
            ReqKind::Coll { coll, round, .. } => coll.blocked_on_dead(&self.fabric, *round),
            _ => None,
        }
    }

    /// Unwinds with a peer failure when *every* active request in `reqs`
    /// is provably stuck on a failed rank — waitany/waitsome could
    /// otherwise spin forever. As long as one request may still complete,
    /// keeps waiting.
    fn check_all_stuck(&self, reqs: &[RequestHandle]) {
        if !self.fabric.has_failures() {
            return;
        }
        let mut dead = None;
        for &r in reqs {
            if !self.req_active(r) {
                continue;
            }
            match self.req_blocked_on_dead(r) {
                Some(w) => dead = Some(w),
                None => return,
            }
        }
        if let Some(w) = dead {
            fault::raise_peer_failure(self.rank, w);
        }
    }

    fn raw_reqs(reqs: &[RequestHandle]) -> Vec<u64> {
        reqs.iter().map(|r| r.0).collect()
    }

    /// `MPI_Wait`. The request is consumed and set to `REQUEST_NULL`.
    pub fn wait(&mut self, req: &mut RequestHandle) -> Status {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raw = req.0;
        let status = if *req == REQUEST_NULL {
            Status::proc_null()
        } else {
            let persistent = self.reqs.is_persistent(*req);
            let s = self.complete(*req);
            if !persistent {
                *req = REQUEST_NULL;
            }
            s
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Wait,
                vec![Arg::Request(raw), Arg::Status { source: status.source, tag: status.tag }],
            ),
            t0,
            t1,
        );
        status
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, reqs: &mut [RequestHandle]) -> Vec<Status> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raws = Self::raw_reqs(reqs);
        let mut statuses = Vec::with_capacity(reqs.len());
        for r in reqs.iter_mut() {
            if *r == REQUEST_NULL {
                statuses.push(Status::proc_null());
            } else {
                let persistent = self.reqs.is_persistent(*r);
                statuses.push(self.complete(*r));
                if !persistent {
                    *r = REQUEST_NULL;
                }
            }
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Waitall,
                vec![
                    Arg::Int(raws.len() as i64),
                    Arg::RequestArr(raws),
                    Arg::StatusArr(statuses.iter().map(|s| (s.source, s.tag)).collect()),
                ],
            ),
            t0,
            t1,
        );
        statuses
    }

    /// `MPI_Waitany`: blocks until one live request completes; returns its
    /// index, or `None` if every entry is `REQUEST_NULL`.
    pub fn waitany(&mut self, reqs: &mut [RequestHandle]) -> Option<(usize, Status)> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raws = Self::raw_reqs(reqs);
        if !reqs.iter().any(|&r| self.req_active(r)) {
            let t1 = self.clock.now();
            self.emit(
                CallRec::new(
                    FuncId::Waitany,
                    vec![
                        Arg::Int(raws.len() as i64),
                        Arg::RequestArr(raws),
                        Arg::Int(-1),
                        Arg::Status { source: PROC_NULL, tag: ANY_TAG },
                    ],
                ),
                t0,
                t1,
            );
            return None;
        }
        let mut idx = usize::MAX;
        match self.next_directive(FuncId::Waitany) {
            Some(Directive::CompleteOne { index: Some(i) }) => {
                let i = i as usize;
                if i >= reqs.len() || !self.req_active(reqs[i]) {
                    self.replay_halt(
                        FuncId::Waitany,
                        format!("recorded completion index {i} is not an active request"),
                    );
                }
                if !self.poll_directed(|me| me.req_ready(reqs[i])) {
                    self.replay_halt(
                        FuncId::Waitany,
                        format!("recorded completion index {i} never became ready"),
                    );
                }
                idx = i;
            }
            Some(d) => self.replay_halt(
                FuncId::Waitany,
                format!("directive {d:?} cannot complete a waitany with active requests"),
            ),
            None => self.poll_until(|me| {
                for (i, r) in reqs.iter().enumerate() {
                    if me.req_active(*r) && me.req_ready(*r) {
                        idx = i;
                        return true;
                    }
                }
                me.check_all_stuck(reqs);
                false
            }),
        }
        let persistent = self.reqs.is_persistent(reqs[idx]);
        let status = self.complete(reqs[idx]);
        if !persistent {
            reqs[idx] = REQUEST_NULL;
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Waitany,
                vec![
                    Arg::Int(raws.len() as i64),
                    Arg::RequestArr(raws),
                    Arg::Int(idx as i64),
                    Arg::Status { source: status.source, tag: status.tag },
                ],
            ),
            t0,
            t1,
        );
        Some((idx, status))
    }

    /// `MPI_Waitsome`: blocks until at least one completes; completes all
    /// that are ready. Returns (index, status) pairs.
    #[allow(clippy::needless_range_loop)] // indices mutate `reqs` in place
    pub fn waitsome(&mut self, reqs: &mut [RequestHandle]) -> Vec<(usize, Status)> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raws = Self::raw_reqs(reqs);
        let mut out = Vec::new();
        if reqs.iter().any(|&r| self.req_active(r)) {
            match self.next_directive(FuncId::Waitsome) {
                Some(Directive::CompleteSet { indices }) if !indices.is_empty() => {
                    self.complete_directed_set(FuncId::Waitsome, reqs, &indices, &mut out);
                }
                Some(d) => self.replay_halt(
                    FuncId::Waitsome,
                    format!("directive {d:?} cannot complete a waitsome with active requests"),
                ),
                None => {
                    self.poll_until(|me| {
                        if reqs.iter().any(|&r| me.req_active(r) && me.req_ready(r)) {
                            return true;
                        }
                        me.check_all_stuck(reqs);
                        false
                    });
                    for i in 0..reqs.len() {
                        if self.req_active(reqs[i]) && self.req_ready(reqs[i]) {
                            let persistent = self.reqs.is_persistent(reqs[i]);
                            let status = self.complete(reqs[i]);
                            if !persistent {
                                reqs[i] = REQUEST_NULL;
                            }
                            out.push((i, status));
                        }
                    }
                }
            }
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Waitsome,
                vec![
                    Arg::Int(raws.len() as i64),
                    Arg::RequestArr(raws),
                    Arg::Int(out.len() as i64),
                    Arg::IntArr(out.iter().map(|&(i, _)| i as i64).collect()),
                    Arg::StatusArr(out.iter().map(|&(_, s)| (s.source, s.tag)).collect()),
                ],
            ),
            t0,
            t1,
        );
        out
    }

    /// `MPI_Test`.
    pub fn test(&mut self, req: &mut RequestHandle) -> Option<Status> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raw = req.0;
        let ready = if *req == REQUEST_NULL {
            false
        } else {
            match self.next_directive(FuncId::Test) {
                Some(Directive::Flag(true)) => {
                    let h = *req;
                    if !self.poll_directed(|me| me.req_ready(h)) {
                        self.replay_halt(
                            FuncId::Test,
                            "recorded successful test never became ready".into(),
                        );
                    }
                    true
                }
                Some(Directive::Flag(false)) => false,
                Some(d) => {
                    self.replay_halt(FuncId::Test, format!("directive {d:?} cannot resolve a test"))
                }
                None => self.req_ready(*req),
            }
        };
        let result = if *req == REQUEST_NULL {
            Some(Status::proc_null())
        } else if ready {
            let persistent = self.reqs.is_persistent(*req);
            let s = self.complete(*req);
            if !persistent {
                *req = REQUEST_NULL;
            }
            Some(s)
        } else {
            None
        };
        let t1 = self.clock.now();
        let (flag, s, t) = match result {
            Some(st) => (1, st.source, st.tag),
            None => (0, PROC_NULL, ANY_TAG),
        };
        self.emit(
            CallRec::new(
                FuncId::Test,
                vec![Arg::Request(raw), Arg::Int(flag), Arg::Status { source: s, tag: t }],
            ),
            t0,
            t1,
        );
        result
    }

    /// `MPI_Testall`: completes all iff all are ready.
    #[allow(clippy::needless_range_loop)] // indices mutate `reqs` in place
    pub fn testall(&mut self, reqs: &mut [RequestHandle]) -> Option<Vec<Status>> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raws = Self::raw_reqs(reqs);
        let all_ready = match self.next_directive(FuncId::Testall) {
            Some(Directive::Flag(true)) => {
                if !self
                    .poll_directed(|me| reqs.iter().all(|&r| !me.req_active(r) || me.req_ready(r)))
                {
                    self.replay_halt(
                        FuncId::Testall,
                        "recorded successful testall never became ready".into(),
                    );
                }
                true
            }
            Some(Directive::Flag(false)) => false,
            Some(d) => self
                .replay_halt(FuncId::Testall, format!("directive {d:?} cannot resolve a testall")),
            None => reqs.iter().all(|&r| !self.req_active(r) || self.req_ready(r)),
        };
        let result = if all_ready {
            let mut statuses = Vec::with_capacity(reqs.len());
            for r in reqs.iter_mut() {
                if *r == REQUEST_NULL || !self.req_active(*r) {
                    statuses.push(Status::proc_null());
                } else {
                    let persistent = self.reqs.is_persistent(*r);
                    statuses.push(self.complete(*r));
                    if !persistent {
                        *r = REQUEST_NULL;
                    }
                }
            }
            Some(statuses)
        } else {
            None
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Testall,
                vec![
                    Arg::Int(raws.len() as i64),
                    Arg::RequestArr(raws),
                    Arg::Int(result.is_some() as i64),
                    Arg::StatusArr(
                        result
                            .as_deref()
                            .unwrap_or(&[])
                            .iter()
                            .map(|s| (s.source, s.tag))
                            .collect(),
                    ),
                ],
            ),
            t0,
            t1,
        );
        result
    }

    /// `MPI_Testany`.
    #[allow(clippy::needless_range_loop)] // indices mutate `reqs` in place
    pub fn testany(&mut self, reqs: &mut [RequestHandle]) -> Option<(usize, Status)> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raws = Self::raw_reqs(reqs);
        let mut result = None;
        match self.next_directive(FuncId::Testany) {
            Some(Directive::CompleteOne { index: Some(i) }) => {
                let i = i as usize;
                if i >= reqs.len() || !self.req_active(reqs[i]) {
                    self.replay_halt(
                        FuncId::Testany,
                        format!("recorded completion index {i} is not an active request"),
                    );
                }
                if !self.poll_directed(|me| me.req_ready(reqs[i])) {
                    self.replay_halt(
                        FuncId::Testany,
                        format!("recorded completion index {i} never became ready"),
                    );
                }
                let persistent = self.reqs.is_persistent(reqs[i]);
                let status = self.complete(reqs[i]);
                if !persistent {
                    reqs[i] = REQUEST_NULL;
                }
                result = Some((i, status));
            }
            Some(Directive::CompleteOne { index: None }) => {}
            Some(d) => self
                .replay_halt(FuncId::Testany, format!("directive {d:?} cannot resolve a testany")),
            None => {
                for i in 0..reqs.len() {
                    if self.req_active(reqs[i]) && self.req_ready(reqs[i]) {
                        let persistent = self.reqs.is_persistent(reqs[i]);
                        let status = self.complete(reqs[i]);
                        if !persistent {
                            reqs[i] = REQUEST_NULL;
                        }
                        result = Some((i, status));
                        break;
                    }
                }
            }
        }
        let t1 = self.clock.now();
        let (flag, idx, s, t) = match result {
            Some((i, st)) => (1, i as i64, st.source, st.tag),
            None => (0, -1, PROC_NULL, ANY_TAG),
        };
        self.emit(
            CallRec::new(
                FuncId::Testany,
                vec![
                    Arg::Int(raws.len() as i64),
                    Arg::RequestArr(raws),
                    Arg::Int(idx),
                    Arg::Int(flag),
                    Arg::Status { source: s, tag: t },
                ],
            ),
            t0,
            t1,
        );
        result
    }

    /// `MPI_Testsome` — the paper's §1 example: completes whatever subset
    /// is ready right now, in nondeterministic order across iterations.
    #[allow(clippy::needless_range_loop)] // indices mutate `reqs` in place
    pub fn testsome(&mut self, reqs: &mut [RequestHandle]) -> Vec<(usize, Status)> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raws = Self::raw_reqs(reqs);
        let mut out = Vec::new();
        match self.next_directive(FuncId::Testsome) {
            Some(Directive::CompleteSet { indices }) => {
                self.complete_directed_set(FuncId::Testsome, reqs, &indices, &mut out);
            }
            Some(d) => self.replay_halt(
                FuncId::Testsome,
                format!("directive {d:?} cannot resolve a testsome"),
            ),
            None => {
                for i in 0..reqs.len() {
                    if self.req_active(reqs[i]) && self.req_ready(reqs[i]) {
                        let persistent = self.reqs.is_persistent(reqs[i]);
                        let status = self.complete(reqs[i]);
                        if !persistent {
                            reqs[i] = REQUEST_NULL;
                        }
                        out.push((i, status));
                    }
                }
            }
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Testsome,
                vec![
                    Arg::Int(raws.len() as i64),
                    Arg::RequestArr(raws),
                    Arg::Int(out.len() as i64),
                    Arg::IntArr(out.iter().map(|&(i, _)| i as i64).collect()),
                    Arg::StatusArr(out.iter().map(|&(_, s)| (s.source, s.tag)).collect()),
                ],
            ),
            t0,
            t1,
        );
        out
    }

    /// `MPI_Request_free`: releases a request without completing it. (For
    /// pending receives the transfer still happens; the simulator simply
    /// stops tracking it, as MPI permits.)
    pub fn request_free(&mut self, req: &mut RequestHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let raw = req.0;
        if *req != REQUEST_NULL {
            let _ = self.reqs.remove(*req);
            *req = REQUEST_NULL;
        }
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::RequestFree, vec![Arg::Request(raw)]), t0, t1);
    }
}

impl Env {
    #[allow(clippy::too_many_arguments)] // mirrors the MPI C signature
    fn persistent_send_like(
        &mut self,
        func: FuncId,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let req = self.reqs.insert(ReqKind::PersistentSend {
            buf,
            count,
            dtype: dt.0,
            dest,
            tag,
            comm,
            active: false,
        });
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                func,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(dest),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Request(req.0),
                ],
            ),
            t0,
            t1,
        );
        req
    }

    /// `MPI_Send_init`: creates an inactive persistent send request.
    pub fn send_init(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.persistent_send_like(FuncId::SendInit, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Bsend_init`.
    pub fn bsend_init(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.persistent_send_like(FuncId::BsendInit, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Ssend_init`.
    pub fn ssend_init(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.persistent_send_like(FuncId::SsendInit, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Rsend_init`.
    pub fn rsend_init(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        dest: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        self.persistent_send_like(FuncId::RsendInit, buf, count, dt, dest, tag, comm)
    }

    /// `MPI_Recv_init`: creates an inactive persistent receive request.
    pub fn recv_init(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        src: i32,
        tag: i32,
        comm: CommHandle,
    ) -> RequestHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let req = self.reqs.insert(ReqKind::PersistentRecv {
            buf,
            count,
            dtype: dt.0,
            src,
            tag,
            comm,
            pending: None,
        });
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::RecvInit,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(src),
                    Arg::Tag(tag),
                    Arg::Comm(comm.0),
                    Arg::Request(req.0),
                ],
            ),
            t0,
            t1,
        );
        req
    }

    /// Activates one persistent request (untraced inner operation).
    fn do_start(&mut self, h: RequestHandle) {
        match self.reqs.get(h) {
            ReqKind::PersistentSend { buf, count, dtype, dest, tag, comm, active } => {
                assert!(!active, "MPI_Start on an active request");
                let (buf, count, dt, dest, tag, comm) =
                    (*buf, *count, DatatypeHandle(*dtype), *dest, *tag, *comm);
                self.do_send(buf, count, dt, dest, tag, comm);
                match self.reqs.get_mut(h) {
                    ReqKind::PersistentSend { active, .. } => *active = true,
                    _ => unreachable!(),
                }
            }
            ReqKind::PersistentRecv { dtype, src, tag, comm, pending, .. } => {
                assert!(pending.is_none(), "MPI_Start on an active request");
                let (dt, src, tag, comm) = (DatatypeHandle(*dtype), *src, *tag, *comm);
                if src == PROC_NULL {
                    return;
                }
                let info = self.comms.get(comm);
                let src_world = Self::src_world_of(info, src);
                let slot = self.fabric.post_recv(self.rank, info.ctx, src, tag, src_world);
                let d = self.types.get(dt);
                let entry = (slot, d.blocks.clone(), d.extent);
                match self.reqs.get_mut(h) {
                    ReqKind::PersistentRecv { pending, .. } => *pending = Some(entry),
                    _ => unreachable!(),
                }
            }
            _ => panic!("MPI_Start on a non-persistent request"),
        }
    }

    /// `MPI_Start`.
    pub fn start(&mut self, req: RequestHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.do_start(req);
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::Start, vec![Arg::Request(req.0)]), t0, t1);
    }

    /// `MPI_Startall`.
    pub fn startall(&mut self, reqs: &[RequestHandle]) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        for &r in reqs {
            self.do_start(r);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Startall,
                vec![
                    Arg::Int(reqs.len() as i64),
                    Arg::RequestArr(reqs.iter().map(|r| r.0).collect()),
                ],
            ),
            t0,
            t1,
        );
    }
}

/// Interprets a byte buffer as little-endian u64 lanes.
pub(crate) fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Serializes u64 lanes to bytes.
pub(crate) fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

mod collectives;
pub mod comm_mgmt;
mod type_mgmt;
