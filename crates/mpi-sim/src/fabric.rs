//! The shared interconnect: point-to-point matching with MPI semantics,
//! generation-counted collective exchange lanes, context-id allocation, and
//! the untraced tool side-channel.
//!
//! Failure awareness: a rank killed by a [`crate::FaultPlan`] is recorded in
//! the fabric's dead set *before* its thread unwinds. Every blocking wait
//! (`wait_take`, `wait_collect`, `probe`) re-checks both the abort flag and
//! — when the awaited source is known — whether that source died without
//! having sent, in which case the waiter unwinds with a
//! [`crate::PeerFailure`] instead of spinning forever. Because a dying rank
//! completes all sends and deposits of its final call before it is marked
//! dead, "dead and not delivered" is proof the message will never arrive.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::fault::{self, FaultPlan};
use crate::types::{ANY_SOURCE, ANY_TAG};

/// Rank within the world (thread index).
pub type WorldRank = usize;
/// Communicator context id: the matching domain of a communicator.
pub type ContextId = u64;

/// Context id of `MPI_COMM_WORLD`.
pub const WORLD_CONTEXT: ContextId = 0;

/// Sentinel for "awaited source unknown" in a receive slot.
const SRC_UNKNOWN: usize = usize::MAX;

/// Exchange lanes: application collectives and tracer-internal traffic are
/// kept in separate matching domains so tracing never perturbs matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    App,
    Tool,
}

/// An in-flight point-to-point message.
#[derive(Debug, Clone)]
pub struct Message {
    pub ctx: ContextId,
    /// Sender's rank within the communicator (what `MPI_SOURCE` reports).
    pub src_comm_rank: i32,
    pub tag: i32,
    pub data: Vec<u8>,
    /// Simulated time at which the sender issued the message.
    pub send_time: u64,
}

/// Completion slot for a posted receive, filled by the matching sender.
#[derive(Debug)]
pub struct RecvSlot {
    filled: Mutex<Option<Message>>,
    cond: Condvar,
    /// World rank this slot waits on ([`SRC_UNKNOWN`] for wildcard
    /// receives, which can never be proven dead-blocked).
    src_world: AtomicUsize,
    /// Application-lane slot: also treats *bailed* sources (survivors that
    /// abandoned their body early) as unreachable. Tool-lane slots only
    /// treat killed sources as unreachable, because bailed ranks still
    /// participate in the merge.
    app_lane: bool,
}

impl Default for RecvSlot {
    fn default() -> Self {
        RecvSlot {
            filled: Mutex::new(None),
            cond: Condvar::new(),
            src_world: AtomicUsize::new(SRC_UNKNOWN),
            app_lane: true,
        }
    }
}

impl RecvSlot {
    fn for_tool(src_world: WorldRank) -> Self {
        RecvSlot {
            filled: Mutex::new(None),
            cond: Condvar::new(),
            src_world: AtomicUsize::new(src_world),
            app_lane: false,
        }
    }

    /// Non-blocking poll; takes the message if present.
    pub fn try_take(&self) -> Option<Message> {
        self.filled.lock().take()
    }

    /// Whether a message has arrived (without consuming it).
    pub fn is_ready(&self) -> bool {
        self.filled.lock().is_some()
    }

    /// Whether this slot's concrete source can still send to it.
    fn src_unreachable(&self, fabric: &Fabric) -> Option<WorldRank> {
        let src = self.src_world.load(Ordering::Acquire);
        if src == SRC_UNKNOWN {
            return None;
        }
        let gone = if self.app_lane { fabric.is_app_unreachable(src) } else { fabric.is_dead(src) };
        if gone {
            Some(src)
        } else {
            None
        }
    }

    /// If this slot waits on a concrete source that failed without filling
    /// it, returns that source. Checks failure *before* readiness: a fill
    /// by the failing rank happens-before it is marked failed, so "failed,
    /// then still empty" proves the message was never sent.
    pub fn blocked_on_dead(&self, fabric: &Fabric) -> Option<WorldRank> {
        let src = self.src_unreachable(fabric)?;
        if self.is_ready() {
            return None;
        }
        Some(src)
    }

    /// Blocks until the message arrives, unwinding if the world aborts or
    /// the awaited source has failed and can no longer send.
    pub fn wait_take(&self, fabric: &Fabric, me: WorldRank) -> Message {
        let mut guard = self.filled.lock();
        loop {
            if let Some(m) = guard.take() {
                return m;
            }
            // Safe under the slot lock: a pending fill is excluded, so an
            // empty slot plus a failed source means the send never happened.
            if let Some(src) = self.src_unreachable(fabric) {
                drop(guard);
                fault::raise_peer_failure(me, src);
            }
            self.cond.wait_for(&mut guard, Duration::from_millis(50));
            fabric.check_abort();
        }
    }

    /// Waits up to `d` for a fill; returns readiness.
    fn wait_timeout(&self, d: Duration) -> bool {
        let mut guard = self.filled.lock();
        if guard.is_some() {
            return true;
        }
        self.cond.wait_for(&mut guard, d);
        guard.is_some()
    }

    fn fill(&self, m: Message) {
        let mut guard = self.filled.lock();
        debug_assert!(guard.is_none(), "recv slot filled twice");
        *guard = Some(m);
        self.cond.notify_all();
    }
}

#[derive(Debug)]
struct PostedRecv {
    ctx: ContextId,
    src: i32,
    tag: i32,
    slot: Arc<RecvSlot>,
}

fn matches(ctx: ContextId, src: i32, tag: i32, m: &Message) -> bool {
    m.ctx == ctx
        && (src == ANY_SOURCE || src == m.src_comm_rank)
        && (tag == ANY_TAG || tag == m.tag)
}

#[derive(Debug, Default)]
struct MailboxInner {
    unexpected: VecDeque<Message>,
    posted: VecDeque<PostedRecv>,
}

#[derive(Debug, Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
    /// Signaled when a message lands in the unexpected queue (for probes).
    arrived: Condvar,
}

/// One round of a collective exchange: contributions by comm rank, the
/// published result, and a reader count for cleanup.
#[derive(Debug, Default)]
struct CollRound {
    contribs: Vec<Option<Vec<u8>>>,
    max_time: u64,
    deposited: usize,
    result: Option<Arc<Vec<Vec<u8>>>>,
    readers: usize,
}

/// Per-(context, lane) collective state. Rounds are numbered by each rank's
/// own collective-call count on the communicator, which MPI ordering rules
/// keep consistent across ranks. The member list (lane rank -> world rank)
/// is recorded so waiters can tell when a missing contribution belongs to
/// a dead rank.
#[derive(Debug)]
pub struct CollCtx {
    size: usize,
    group: Vec<WorldRank>,
    lane: Lane,
    m: Mutex<HashMap<u64, CollRound>>,
    cv: Condvar,
}

impl CollCtx {
    fn new(lane: Lane, group: Vec<WorldRank>) -> Self {
        CollCtx {
            size: group.len(),
            group,
            lane,
            m: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Deposits `contrib` for `round`; does not wait.
    pub fn deposit(&self, round: u64, comm_rank: usize, contrib: Vec<u8>, time: u64) {
        let mut rounds = self.m.lock();
        let r = rounds.entry(round).or_default();
        if r.contribs.is_empty() {
            r.contribs.resize(self.size, None);
        }
        debug_assert!(
            r.contribs[comm_rank].is_none(),
            "double deposit by rank {comm_rank} in round {round}"
        );
        r.contribs[comm_rank] = Some(contrib);
        r.max_time = r.max_time.max(time);
        r.deposited += 1;
        if r.deposited == self.size {
            let contribs = std::mem::take(&mut r.contribs);
            r.result =
                Some(Arc::new(contribs.into_iter().map(|c| c.expect("missing contrib")).collect()));
            self.cv.notify_all();
        }
    }

    /// Polls for the result of `round`; consumes this rank's read.
    pub fn try_collect(&self, round: u64) -> Option<(Arc<Vec<Vec<u8>>>, u64)> {
        let mut rounds = self.m.lock();
        let r = rounds.get_mut(&round)?;
        let result = r.result.clone()?;
        let time = r.max_time;
        r.readers += 1;
        if r.readers == self.size {
            rounds.remove(&round);
        }
        Some((result, time))
    }

    /// Whether `round` has completed (without consuming the read).
    pub fn is_ready(&self, round: u64) -> bool {
        let rounds = self.m.lock();
        rounds.get(&round).is_some_and(|r| r.result.is_some())
    }

    /// A failed member that has not deposited into the (incomplete) round,
    /// if any — proof the round can never complete. App lanes treat bailed
    /// survivors as failed too; tool lanes only killed ranks, since bailed
    /// ranks keep participating in the merge.
    fn missing_dead(&self, r: &CollRound, fabric: &Fabric) -> Option<WorldRank> {
        if r.contribs.is_empty() || r.result.is_some() {
            return None;
        }
        let gone = |w: WorldRank| match self.lane {
            Lane::App => fabric.is_app_unreachable(w),
            Lane::Tool => fabric.is_dead(w),
        };
        self.group
            .iter()
            .enumerate()
            .filter(|&(i, _)| r.contribs[i].is_none())
            .find_map(|(_, &w)| if gone(w) { Some(w) } else { None })
    }

    /// Lock-taking variant of [`Self::missing_dead`] for request polling.
    pub fn blocked_on_dead(&self, fabric: &Fabric, round: u64) -> Option<WorldRank> {
        if !fabric.has_failures() {
            return None;
        }
        let rounds = self.m.lock();
        rounds.get(&round).and_then(|r| self.missing_dead(r, fabric))
    }

    /// Blocks until `round` completes, then collects. Unwinds with
    /// [`crate::PeerFailure`] if a member died before depositing.
    pub fn wait_collect(
        &self,
        fabric: &Fabric,
        round: u64,
        me: WorldRank,
    ) -> (Arc<Vec<Vec<u8>>>, u64) {
        let mut rounds = self.m.lock();
        loop {
            if let Some(r) = rounds.get_mut(&round) {
                if let Some(result) = r.result.clone() {
                    let time = r.max_time;
                    r.readers += 1;
                    if r.readers == self.size {
                        rounds.remove(&round);
                    }
                    return (result, time);
                }
                if fabric.has_failures() {
                    if let Some(dead) = self.missing_dead(r, fabric) {
                        drop(rounds);
                        fault::raise_peer_failure(me, dead);
                    }
                }
            }
            self.cv.wait_for(&mut rounds, Duration::from_millis(50));
            fabric.check_abort();
        }
    }
}

/// The world-wide interconnect shared by all rank threads.
pub struct Fabric {
    n_ranks: usize,
    mailboxes: Vec<Mailbox>,
    tool_mailboxes: Vec<Mailbox>,
    colls: Mutex<HashMap<(ContextId, Lane), Arc<CollCtx>>>,
    next_context: AtomicU64,
    aborted: AtomicBool,
    /// The injected-fault schedule, if any.
    plan: Option<FaultPlan>,
    /// Killed ranks -> MPI calls completed before death.
    dead: Mutex<HashMap<WorldRank, u64>>,
    /// Survivors that abandoned their application body after hitting a
    /// dead peer: they send no further app messages but still merge.
    bailed: Mutex<Vec<WorldRank>>,
    /// Fast path for the common no-failure case.
    any_dead: AtomicBool,
    /// Crash-consistent tracer snapshots: rank -> (calls covered, bytes).
    checkpoints: Mutex<HashMap<WorldRank, (u64, Vec<u8>)>>,
    /// Per-(src, dest) tool-message ordinals for deterministic drops.
    tool_seq: Mutex<HashMap<(WorldRank, WorldRank), u64>>,
    /// Per-dest app-message ordinals for deterministic delays.
    app_seq: Mutex<HashMap<WorldRank, u64>>,
    /// Ranks whose one-shot mailbox stall has already been applied.
    stalls_taken: Mutex<Vec<WorldRank>>,
    dropped_tool_msgs: AtomicU64,
}

impl Fabric {
    pub fn new(n_ranks: usize) -> Arc<Fabric> {
        Self::with_faults(n_ranks, None)
    }

    /// Creates a fabric with an optional fault-injection plan.
    pub fn with_faults(n_ranks: usize, plan: Option<FaultPlan>) -> Arc<Fabric> {
        let f = Fabric {
            n_ranks,
            mailboxes: (0..n_ranks).map(|_| Mailbox::default()).collect(),
            tool_mailboxes: (0..n_ranks).map(|_| Mailbox::default()).collect(),
            colls: Mutex::new(HashMap::new()),
            next_context: AtomicU64::new(WORLD_CONTEXT + 1),
            aborted: AtomicBool::new(false),
            plan,
            dead: Mutex::new(HashMap::new()),
            bailed: Mutex::new(Vec::new()),
            any_dead: AtomicBool::new(false),
            checkpoints: Mutex::new(HashMap::new()),
            tool_seq: Mutex::new(HashMap::new()),
            app_seq: Mutex::new(HashMap::new()),
            stalls_taken: Mutex::new(Vec::new()),
            dropped_tool_msgs: AtomicU64::new(0),
        };
        // Register the world communicator's collective lanes.
        let world: Vec<WorldRank> = (0..n_ranks).collect();
        f.ensure_coll(WORLD_CONTEXT, Lane::App, &world);
        f.ensure_coll(WORLD_CONTEXT, Lane::Tool, &world);
        Arc::new(f)
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The fault plan this world runs under, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Marks the world as failed (called when a rank panics) so blocked
    /// peers unblock with a panic instead of hanging forever.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
    }

    /// Panics if the world has been aborted.
    pub fn check_abort(&self) {
        if self.aborted.load(Ordering::SeqCst) {
            panic!("mpi-sim world aborted: another rank panicked");
        }
    }

    // ------------------------------------------------------------------
    // Failure bookkeeping
    // ------------------------------------------------------------------

    /// Records `rank` as dead after completing `calls` MPI calls. Called by
    /// the dying rank itself, after its final call's sends and deposits.
    pub fn mark_dead(&self, rank: WorldRank, calls: u64) {
        self.dead.lock().insert(rank, calls);
        self.any_dead.store(true, Ordering::Release);
    }

    /// Records `rank` as having abandoned its application body (after a
    /// peer failure): peers must not block on its future app messages, but
    /// its tracer still participates in the merge.
    pub fn mark_bailed(&self, rank: WorldRank) {
        self.bailed.lock().push(rank);
        self.any_dead.store(true, Ordering::Release);
    }

    /// Whether `rank` has been killed.
    pub fn is_dead(&self, rank: WorldRank) -> bool {
        self.any_dead.load(Ordering::Acquire) && self.dead.lock().contains_key(&rank)
    }

    /// Whether `rank` will never send application traffic again (killed or
    /// bailed).
    pub fn is_app_unreachable(&self, rank: WorldRank) -> bool {
        self.any_dead.load(Ordering::Acquire)
            && (self.dead.lock().contains_key(&rank) || self.bailed.lock().contains(&rank))
    }

    /// Whether any rank has died or bailed (cheap fast path).
    pub fn has_failures(&self) -> bool {
        self.any_dead.load(Ordering::Acquire)
    }

    /// All dead ranks with their final call counts, sorted by rank.
    pub fn dead_ranks(&self) -> Vec<(WorldRank, u64)> {
        let mut v: Vec<_> = self.dead.lock().iter().map(|(&r, &c)| (r, c)).collect();
        v.sort_unstable();
        v
    }

    /// Stores a crash-consistent tracer snapshot for `rank`.
    pub fn store_checkpoint(&self, rank: WorldRank, calls: u64, bytes: Vec<u8>) {
        self.checkpoints.lock().insert(rank, (calls, bytes));
    }

    /// Latest checkpoint for `rank`, if one was stored.
    pub fn load_checkpoint(&self, rank: WorldRank) -> Option<(u64, Vec<u8>)> {
        self.checkpoints.lock().get(&rank).cloned()
    }

    /// Tool-channel messages silently dropped by the fault plan so far.
    pub fn dropped_tool_messages(&self) -> u64 {
        self.dropped_tool_msgs.load(Ordering::Relaxed)
    }

    /// Allocates a fresh communicator context id.
    pub fn alloc_context(&self) -> ContextId {
        self.next_context.fetch_add(1, Ordering::SeqCst)
    }

    /// Idempotently registers the collective lane for a communicator,
    /// recording its member list (lane rank -> world rank).
    pub fn ensure_coll(&self, ctx: ContextId, lane: Lane, group: &[WorldRank]) -> Arc<CollCtx> {
        let mut colls = self.colls.lock();
        let c = colls
            .entry((ctx, lane))
            .or_insert_with(|| Arc::new(CollCtx::new(lane, group.to_vec())));
        assert_eq!(c.group, group, "collective lane re-registered with a different group");
        c.clone()
    }

    /// Looks up a registered collective lane.
    pub fn coll(&self, ctx: ContextId, lane: Lane) -> Arc<CollCtx> {
        self.colls
            .lock()
            .get(&(ctx, lane))
            .cloned()
            .unwrap_or_else(|| panic!("no collective lane for context {ctx} {lane:?}"))
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Delivers a message to `dest`'s mailbox, matching a posted receive if
    /// one exists (in post order: MPI's non-overtaking rule). The fault
    /// plan may add simulated latency to the message.
    pub fn send(&self, dest_world: WorldRank, mut msg: Message) {
        if let Some(plan) = &self.plan {
            if plan.delay_prob > 0.0 {
                let seq = {
                    let mut m = self.app_seq.lock();
                    let e = m.entry(dest_world).or_insert(0);
                    let s = *e;
                    *e += 1;
                    s
                };
                msg.send_time =
                    msg.send_time.saturating_add(plan.delay_for(dest_world, msg.tag, seq));
            }
        }
        let mb = &self.mailboxes[dest_world];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner.posted.iter().position(|p| matches(p.ctx, p.src, p.tag, &msg)) {
            let posted = inner.posted.remove(i).expect("index in range");
            drop(inner);
            posted.slot.fill(msg);
        } else {
            inner.unexpected.push_back(msg);
            mb.arrived.notify_all();
        }
    }

    /// Posts a receive at `me`; returns a slot completed by the matching
    /// sender. An already-arrived unexpected message matches immediately
    /// (earliest first, preserving arrival order per source). `src_world`
    /// is the awaited sender's world rank when the source is concrete; it
    /// lets the waiter detect a dead sender instead of blocking forever.
    pub fn post_recv(
        &self,
        me: WorldRank,
        ctx: ContextId,
        src: i32,
        tag: i32,
        src_world: Option<WorldRank>,
    ) -> Arc<RecvSlot> {
        let slot = Arc::new(RecvSlot::default());
        if let Some(w) = src_world {
            slot.src_world.store(w, Ordering::Release);
        }
        let mb = &self.mailboxes[me];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner.unexpected.iter().position(|m| matches(ctx, src, tag, m)) {
            let msg = inner.unexpected.remove(i).expect("index in range");
            drop(inner);
            slot.fill(msg);
        } else {
            inner.posted.push_back(PostedRecv { ctx, src, tag, slot: slot.clone() });
        }
        slot
    }

    /// Non-blocking probe: peeks the unexpected queue.
    pub fn iprobe(
        &self,
        me: WorldRank,
        ctx: ContextId,
        src: i32,
        tag: i32,
    ) -> Option<(i32, i32, u64)> {
        let inner = self.mailboxes[me].inner.lock();
        inner
            .unexpected
            .iter()
            .find(|m| matches(ctx, src, tag, m))
            .map(|m| (m.src_comm_rank, m.tag, m.data.len() as u64))
    }

    /// Blocking probe: waits until a matching message is enqueued,
    /// unwinding if a concretely awaited source is dead.
    pub fn probe(
        &self,
        me: WorldRank,
        ctx: ContextId,
        src: i32,
        tag: i32,
        src_world: Option<WorldRank>,
    ) -> (i32, i32, u64) {
        let mb = &self.mailboxes[me];
        let mut inner = mb.inner.lock();
        loop {
            if let Some(m) = inner.unexpected.iter().find(|m| matches(ctx, src, tag, m)) {
                return (m.src_comm_rank, m.tag, m.data.len() as u64);
            }
            if let Some(w) = src_world {
                if self.is_dead(w) {
                    drop(inner);
                    fault::raise_peer_failure(me, w);
                }
            }
            mb.arrived.wait_for(&mut inner, Duration::from_millis(50));
            self.check_abort();
        }
    }

    // ------------------------------------------------------------------
    // Tool side-channel (untraced)
    // ------------------------------------------------------------------

    /// Sends raw bytes on the tool channel (used by tracers for merges).
    /// The fault plan may silently drop the message.
    pub fn tool_send(&self, dest_world: WorldRank, src_world: WorldRank, tag: i32, data: Vec<u8>) {
        if let Some(plan) = &self.plan {
            if plan.drop_prob > 0.0 {
                let seq = {
                    let mut m = self.tool_seq.lock();
                    let e = m.entry((src_world, dest_world)).or_insert(0);
                    let s = *e;
                    *e += 1;
                    s
                };
                if plan.drops_message(src_world, dest_world, tag, seq) {
                    self.dropped_tool_msgs.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let msg =
            Message { ctx: u64::MAX, src_comm_rank: src_world as i32, tag, data, send_time: 0 };
        let mb = &self.tool_mailboxes[dest_world];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner.posted.iter().position(|p| matches(p.ctx, p.src, p.tag, &msg)) {
            let posted = inner.posted.remove(i).expect("index in range");
            drop(inner);
            posted.slot.fill(msg);
        } else {
            inner.unexpected.push_back(msg);
            mb.arrived.notify_all();
        }
    }

    /// Posts a tool-channel receive for (src, tag) at `me`.
    fn post_tool_recv(&self, me: WorldRank, src_world: WorldRank, tag: i32) -> Arc<RecvSlot> {
        let slot = Arc::new(RecvSlot::for_tool(src_world));
        let mb = &self.tool_mailboxes[me];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner
            .unexpected
            .iter()
            .position(|m| m.src_comm_rank == src_world as i32 && m.tag == tag)
        {
            let msg = inner.unexpected.remove(i).expect("index in range");
            drop(inner);
            slot.fill(msg);
        } else {
            inner.posted.push_back(PostedRecv {
                ctx: u64::MAX,
                src: src_world as i32,
                tag,
                slot: slot.clone(),
            });
        }
        slot
    }

    /// Removes a posted (unfilled) tool receive so a late message cannot
    /// fill a slot nobody waits on anymore; it will queue as unexpected.
    fn cancel_tool_recv(&self, me: WorldRank, slot: &Arc<RecvSlot>) {
        let mut inner = self.tool_mailboxes[me].inner.lock();
        inner.posted.retain(|p| !Arc::ptr_eq(&p.slot, slot));
    }

    /// One-shot real-time stall of `me`'s tool mailbox, per the fault plan.
    fn apply_stall(&self, me: WorldRank) {
        let Some(ns) = self.plan.as_ref().and_then(|p| p.stall_for(me)) else {
            return;
        };
        {
            let mut taken = self.stalls_taken.lock();
            if taken.contains(&me) {
                return;
            }
            taken.push(me);
        }
        std::thread::sleep(Duration::from_nanos(ns.min(2_000_000_000)));
    }

    /// Blocking receive on the tool channel.
    pub fn tool_recv(&self, me: WorldRank, src_world: WorldRank, tag: i32) -> Vec<u8> {
        self.apply_stall(me);
        self.post_tool_recv(me, src_world, tag).wait_take(self, me).data
    }

    /// Bounded receive on the tool channel with exponential backoff.
    /// Returns `(message, backoff_rounds)`; `None` when the wait timed out
    /// or the sender died without sending. The posted receive is cancelled
    /// on timeout so a late message queues as unexpected instead of
    /// filling a slot nobody owns.
    pub fn tool_recv_timeout(
        &self,
        me: WorldRank,
        src_world: WorldRank,
        tag: i32,
        timeout: Duration,
    ) -> (Option<Vec<u8>>, u64) {
        self.apply_stall(me);
        let slot = self.post_tool_recv(me, src_world, tag);
        let deadline = Instant::now() + timeout;
        let mut slice = Duration::from_millis(1);
        let mut retries = 0u64;
        loop {
            if let Some(m) = slot.try_take() {
                return (Some(m.data), retries);
            }
            // Death check before the (re-)readiness check below makes the
            // fast-fail race-free: fills happen-before mark_dead.
            if self.is_dead(src_world) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            slot.wait_timeout(slice.min(deadline - now));
            self.check_abort();
            retries += 1;
            slice = (slice * 2).min(Duration::from_millis(50));
        }
        self.cancel_tool_recv(me, &slot);
        // A fill may have raced the cancellation; honor it.
        (slot.try_take().map(|m| m.data), retries)
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric").field("n_ranks", &self.n_ranks).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PeerFailure;
    use std::thread;

    #[test]
    fn send_then_recv_matches() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 7, data: vec![1, 2], send_time: 5 });
        let slot = f.post_recv(1, 0, 0, 7, Some(0));
        let m = slot.try_take().expect("unexpected message should match");
        assert_eq!(m.data, vec![1, 2]);
        assert_eq!(m.send_time, 5);
    }

    #[test]
    fn recv_then_send_matches() {
        let f = Fabric::new(2);
        let slot = f.post_recv(1, 0, ANY_SOURCE, ANY_TAG, None);
        assert!(!slot.is_ready());
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 3, data: vec![9], send_time: 0 });
        assert!(slot.is_ready());
        assert_eq!(slot.try_take().unwrap().tag, 3);
    }

    #[test]
    fn wildcard_does_not_match_wrong_context() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 42, src_comm_rank: 0, tag: 1, data: vec![], send_time: 0 });
        let slot = f.post_recv(1, 0, ANY_SOURCE, ANY_TAG, None);
        assert!(!slot.is_ready(), "message in ctx 42 must not match ctx 0 recv");
    }

    #[test]
    fn tag_matching_is_exact_without_wildcard() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 5, data: vec![], send_time: 0 });
        let slot = f.post_recv(1, 0, 0, 6, Some(0));
        assert!(!slot.is_ready());
        let slot2 = f.post_recv(1, 0, 0, 5, Some(0));
        assert!(slot2.is_ready());
    }

    #[test]
    fn non_overtaking_same_source() {
        let f = Fabric::new(2);
        for i in 0..3u8 {
            f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 1, data: vec![i], send_time: 0 });
        }
        for i in 0..3u8 {
            let m = f.post_recv(1, 0, 0, 1, Some(0)).try_take().unwrap();
            assert_eq!(m.data, vec![i], "messages must arrive in send order");
        }
    }

    #[test]
    fn posted_recvs_match_in_post_order() {
        let f = Fabric::new(2);
        let a = f.post_recv(1, 0, ANY_SOURCE, 1, None);
        let b = f.post_recv(1, 0, ANY_SOURCE, 1, None);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 1, data: vec![1], send_time: 0 });
        assert!(a.is_ready());
        assert!(!b.is_ready());
    }

    #[test]
    fn probe_sees_without_consuming() {
        let f = Fabric::new(1);
        assert!(f.iprobe(0, 0, ANY_SOURCE, ANY_TAG).is_none());
        f.send(0, Message { ctx: 0, src_comm_rank: 0, tag: 9, data: vec![0; 16], send_time: 0 });
        let (src, tag, count) = f.iprobe(0, 0, ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!((src, tag, count), (0, 9, 16));
        // Still receivable afterwards.
        assert!(f.post_recv(0, 0, 0, 9, Some(0)).is_ready());
    }

    #[test]
    fn coll_round_exchange() {
        let f = Fabric::new(3);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        c.deposit(0, 0, vec![0], 10);
        c.deposit(0, 2, vec![2], 30);
        assert!(!c.is_ready(0));
        c.deposit(0, 1, vec![1], 20);
        assert!(c.is_ready(0));
        let (res, time) = c.try_collect(0).unwrap();
        assert_eq!(*res, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(time, 30);
        // Two more readers drain the round.
        assert!(c.try_collect(0).is_some());
        assert!(c.try_collect(0).is_some());
        assert!(c.try_collect(0).is_none(), "round must be cleaned up");
    }

    #[test]
    fn coll_rounds_are_independent() {
        let f = Fabric::new(2);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        // Rank 0 races ahead into round 1 before rank 1 finishes round 0.
        c.deposit(0, 0, vec![], 0);
        c.deposit(1, 0, vec![], 0);
        assert!(!c.is_ready(0));
        assert!(!c.is_ready(1));
        c.deposit(0, 1, vec![], 0);
        assert!(c.is_ready(0));
        c.deposit(1, 1, vec![], 0);
        assert!(c.is_ready(1));
    }

    #[test]
    fn tool_channel_roundtrip_threads() {
        let f = Fabric::new(2);
        let f2 = f.clone();
        let t = thread::spawn(move || f2.tool_recv(1, 0, 77));
        f.tool_send(1, 0, 77, vec![5, 6, 7]);
        assert_eq!(t.join().unwrap(), vec![5, 6, 7]);
    }

    #[test]
    fn context_ids_are_unique() {
        let f = Fabric::new(1);
        let a = f.alloc_context();
        let b = f.alloc_context();
        assert_ne!(a, b);
        assert_ne!(a, WORLD_CONTEXT);
    }

    #[test]
    fn blocking_collect_across_threads() {
        let f = Fabric::new(2);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        let (f2, c2) = (f.clone(), c.clone());
        let t = thread::spawn(move || {
            c2.deposit(0, 1, vec![1], 4);
            c2.wait_collect(&f2, 0, 1)
        });
        c.deposit(0, 0, vec![0], 9);
        let (mine, time) = c.wait_collect(&f, 0, 0);
        let (theirs, _) = t.join().unwrap();
        assert_eq!(*mine, *theirs);
        assert_eq!(time, 9);
    }

    // ---------------- failure-aware paths ----------------

    fn peer_failure_of(r: std::thread::Result<()>) -> PeerFailure {
        let e = r.expect_err("should unwind");
        *e.downcast_ref::<PeerFailure>().expect("PeerFailure payload")
    }

    #[test]
    fn recv_from_dead_peer_unwinds() {
        fault::silence_fault_panics();
        let f = Fabric::new(2);
        f.mark_dead(0, 12);
        let slot = f.post_recv(1, 0, 0, 7, Some(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.wait_take(&f, 1);
        }));
        let pf = peer_failure_of(r.map(|_| ()));
        assert_eq!((pf.rank, pf.dead_rank), (1, 0));
    }

    #[test]
    fn message_sent_before_death_is_still_received() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 7, data: vec![3], send_time: 0 });
        f.mark_dead(0, 5);
        let slot = f.post_recv(1, 0, 0, 7, Some(0));
        assert_eq!(slot.wait_take(&f, 1).data, vec![3]);
    }

    #[test]
    fn collective_with_dead_member_unwinds() {
        fault::silence_fault_panics();
        let f = Fabric::new(3);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        c.deposit(0, 0, vec![0], 0);
        c.deposit(0, 1, vec![1], 0);
        f.mark_dead(2, 9);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.wait_collect(&f, 0, 0);
        }));
        let pf = peer_failure_of(r.map(|_| ()));
        assert_eq!((pf.rank, pf.dead_rank), (0, 2));
        assert_eq!(c.blocked_on_dead(&f, 0), Some(2));
    }

    #[test]
    fn tool_recv_timeout_expires_without_sender() {
        let f = Fabric::new(2);
        let (msg, retries) = f.tool_recv_timeout(1, 0, 9, Duration::from_millis(20));
        assert!(msg.is_none());
        assert!(retries > 0, "backoff should have retried at least once");
        // The posted recv was cancelled: a late message stays receivable.
        f.tool_send(1, 0, 9, vec![8]);
        let (late, _) = f.tool_recv_timeout(1, 0, 9, Duration::from_millis(20));
        assert_eq!(late, Some(vec![8]));
    }

    #[test]
    fn tool_recv_timeout_fast_fails_on_dead_sender() {
        let f = Fabric::new(2);
        f.mark_dead(0, 3);
        let start = Instant::now();
        let (msg, _) = f.tool_recv_timeout(1, 0, 9, Duration::from_secs(5));
        assert!(msg.is_none());
        assert!(start.elapsed() < Duration::from_secs(1), "dead sender must fail fast");
    }

    #[test]
    fn tool_drops_are_applied_and_counted() {
        let plan = FaultPlan::new(11).drop_messages(1.0);
        let f = Fabric::with_faults(2, Some(plan));
        f.tool_send(1, 0, 5, vec![1]);
        assert_eq!(f.dropped_tool_messages(), 1);
        let (msg, _) = f.tool_recv_timeout(1, 0, 5, Duration::from_millis(10));
        assert!(msg.is_none(), "dropped message must never arrive");
    }

    #[test]
    fn bailed_rank_unblocks_app_but_not_tool() {
        fault::silence_fault_panics();
        let f = Fabric::new(2);
        f.mark_bailed(0);
        assert!(f.is_app_unreachable(0) && !f.is_dead(0));
        let slot = f.post_recv(1, 0, 0, 7, Some(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.wait_take(&f, 1);
        }));
        let pf = peer_failure_of(r.map(|_| ()));
        assert_eq!((pf.rank, pf.dead_rank), (1, 0));
        // The tool channel still flows: bailed ranks merge their traces.
        f.tool_send(1, 0, 3, vec![1]);
        assert_eq!(f.tool_recv(1, 0, 3), vec![1]);
    }

    #[test]
    fn checkpoints_roundtrip() {
        let f = Fabric::new(2);
        assert!(f.load_checkpoint(1).is_none());
        f.store_checkpoint(1, 40, vec![1, 2, 3]);
        f.store_checkpoint(1, 60, vec![4]);
        assert_eq!(f.load_checkpoint(1), Some((60, vec![4])));
        assert_eq!(f.dead_ranks(), vec![]);
        f.mark_dead(1, 61);
        assert!(f.is_dead(1) && f.has_failures());
        assert_eq!(f.dead_ranks(), vec![(1, 61)]);
    }
}
