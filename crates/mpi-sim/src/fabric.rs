//! The shared interconnect: point-to-point matching with MPI semantics,
//! generation-counted collective exchange lanes, context-id allocation, and
//! the untraced tool side-channel.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::types::{ANY_SOURCE, ANY_TAG};

/// Rank within the world (thread index).
pub type WorldRank = usize;
/// Communicator context id: the matching domain of a communicator.
pub type ContextId = u64;

/// Context id of `MPI_COMM_WORLD`.
pub const WORLD_CONTEXT: ContextId = 0;

/// Exchange lanes: application collectives and tracer-internal traffic are
/// kept in separate matching domains so tracing never perturbs matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    App,
    Tool,
}

/// An in-flight point-to-point message.
#[derive(Debug, Clone)]
pub struct Message {
    pub ctx: ContextId,
    /// Sender's rank within the communicator (what `MPI_SOURCE` reports).
    pub src_comm_rank: i32,
    pub tag: i32,
    pub data: Vec<u8>,
    /// Simulated time at which the sender issued the message.
    pub send_time: u64,
}

/// Completion slot for a posted receive, filled by the matching sender.
#[derive(Debug, Default)]
pub struct RecvSlot {
    filled: Mutex<Option<Message>>,
    cond: Condvar,
}

impl RecvSlot {
    /// Non-blocking poll; takes the message if present.
    pub fn try_take(&self) -> Option<Message> {
        self.filled.lock().take()
    }

    /// Whether a message has arrived (without consuming it).
    pub fn is_ready(&self) -> bool {
        self.filled.lock().is_some()
    }

    /// Blocks until the message arrives (with abort checking).
    pub fn wait_take(&self, fabric: &Fabric) -> Message {
        let mut guard = self.filled.lock();
        loop {
            if let Some(m) = guard.take() {
                return m;
            }
            self.cond.wait_for(&mut guard, Duration::from_millis(50));
            fabric.check_abort();
        }
    }

    fn fill(&self, m: Message) {
        let mut guard = self.filled.lock();
        debug_assert!(guard.is_none(), "recv slot filled twice");
        *guard = Some(m);
        self.cond.notify_all();
    }
}

#[derive(Debug)]
struct PostedRecv {
    ctx: ContextId,
    src: i32,
    tag: i32,
    slot: Arc<RecvSlot>,
}

fn matches(ctx: ContextId, src: i32, tag: i32, m: &Message) -> bool {
    m.ctx == ctx
        && (src == ANY_SOURCE || src == m.src_comm_rank)
        && (tag == ANY_TAG || tag == m.tag)
}

#[derive(Debug, Default)]
struct MailboxInner {
    unexpected: VecDeque<Message>,
    posted: VecDeque<PostedRecv>,
}

#[derive(Debug, Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
    /// Signaled when a message lands in the unexpected queue (for probes).
    arrived: Condvar,
}

/// One round of a collective exchange: contributions by comm rank, the
/// published result, and a reader count for cleanup.
#[derive(Debug, Default)]
struct CollRound {
    contribs: Vec<Option<Vec<u8>>>,
    max_time: u64,
    deposited: usize,
    result: Option<Arc<Vec<Vec<u8>>>>,
    readers: usize,
}

/// Per-(context, lane) collective state. Rounds are numbered by each rank's
/// own collective-call count on the communicator, which MPI ordering rules
/// keep consistent across ranks.
#[derive(Debug)]
pub struct CollCtx {
    size: usize,
    m: Mutex<HashMap<u64, CollRound>>,
    cv: Condvar,
}

impl CollCtx {
    fn new(size: usize) -> Self {
        CollCtx { size, m: Mutex::new(HashMap::new()), cv: Condvar::new() }
    }

    /// Deposits `contrib` for `round`; does not wait.
    pub fn deposit(&self, round: u64, comm_rank: usize, contrib: Vec<u8>, time: u64) {
        let mut rounds = self.m.lock();
        let r = rounds.entry(round).or_default();
        if r.contribs.is_empty() {
            r.contribs.resize(self.size, None);
        }
        debug_assert!(
            r.contribs[comm_rank].is_none(),
            "double deposit by rank {comm_rank} in round {round}"
        );
        r.contribs[comm_rank] = Some(contrib);
        r.max_time = r.max_time.max(time);
        r.deposited += 1;
        if r.deposited == self.size {
            let contribs = std::mem::take(&mut r.contribs);
            r.result =
                Some(Arc::new(contribs.into_iter().map(|c| c.expect("missing contrib")).collect()));
            self.cv.notify_all();
        }
    }

    /// Polls for the result of `round`; consumes this rank's read.
    pub fn try_collect(&self, round: u64) -> Option<(Arc<Vec<Vec<u8>>>, u64)> {
        let mut rounds = self.m.lock();
        let r = rounds.get_mut(&round)?;
        let result = r.result.clone()?;
        let time = r.max_time;
        r.readers += 1;
        if r.readers == self.size {
            rounds.remove(&round);
        }
        Some((result, time))
    }

    /// Whether `round` has completed (without consuming the read).
    pub fn is_ready(&self, round: u64) -> bool {
        let rounds = self.m.lock();
        rounds.get(&round).is_some_and(|r| r.result.is_some())
    }

    /// Blocks until `round` completes, then collects.
    pub fn wait_collect(&self, fabric: &Fabric, round: u64) -> (Arc<Vec<Vec<u8>>>, u64) {
        let mut rounds = self.m.lock();
        loop {
            if let Some(r) = rounds.get_mut(&round) {
                if let Some(result) = r.result.clone() {
                    let time = r.max_time;
                    r.readers += 1;
                    if r.readers == self.size {
                        rounds.remove(&round);
                    }
                    return (result, time);
                }
            }
            self.cv.wait_for(&mut rounds, Duration::from_millis(50));
            fabric.check_abort();
        }
    }
}

/// The world-wide interconnect shared by all rank threads.
pub struct Fabric {
    n_ranks: usize,
    mailboxes: Vec<Mailbox>,
    tool_mailboxes: Vec<Mailbox>,
    colls: Mutex<HashMap<(ContextId, Lane), Arc<CollCtx>>>,
    next_context: AtomicU64,
    aborted: AtomicBool,
}

impl Fabric {
    pub fn new(n_ranks: usize) -> Arc<Fabric> {
        let f = Fabric {
            n_ranks,
            mailboxes: (0..n_ranks).map(|_| Mailbox::default()).collect(),
            tool_mailboxes: (0..n_ranks).map(|_| Mailbox::default()).collect(),
            colls: Mutex::new(HashMap::new()),
            next_context: AtomicU64::new(WORLD_CONTEXT + 1),
            aborted: AtomicBool::new(false),
        };
        // Register the world communicator's collective lanes.
        f.ensure_coll(WORLD_CONTEXT, Lane::App, n_ranks);
        f.ensure_coll(WORLD_CONTEXT, Lane::Tool, n_ranks);
        Arc::new(f)
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Marks the world as failed (called when a rank panics) so blocked
    /// peers unblock with a panic instead of hanging forever.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
    }

    /// Panics if the world has been aborted.
    pub fn check_abort(&self) {
        if self.aborted.load(Ordering::SeqCst) {
            panic!("mpi-sim world aborted: another rank panicked");
        }
    }

    /// Allocates a fresh communicator context id.
    pub fn alloc_context(&self) -> ContextId {
        self.next_context.fetch_add(1, Ordering::SeqCst)
    }

    /// Idempotently registers the collective lane for a communicator.
    pub fn ensure_coll(&self, ctx: ContextId, lane: Lane, size: usize) -> Arc<CollCtx> {
        let mut colls = self.colls.lock();
        let c = colls.entry((ctx, lane)).or_insert_with(|| Arc::new(CollCtx::new(size)));
        assert_eq!(c.size, size, "collective lane re-registered with new size");
        c.clone()
    }

    /// Looks up a registered collective lane.
    pub fn coll(&self, ctx: ContextId, lane: Lane) -> Arc<CollCtx> {
        self.colls
            .lock()
            .get(&(ctx, lane))
            .cloned()
            .unwrap_or_else(|| panic!("no collective lane for context {ctx} {lane:?}"))
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Delivers a message to `dest`'s mailbox, matching a posted receive if
    /// one exists (in post order: MPI's non-overtaking rule).
    pub fn send(&self, dest_world: WorldRank, msg: Message) {
        let mb = &self.mailboxes[dest_world];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner.posted.iter().position(|p| matches(p.ctx, p.src, p.tag, &msg)) {
            let posted = inner.posted.remove(i).expect("index in range");
            drop(inner);
            posted.slot.fill(msg);
        } else {
            inner.unexpected.push_back(msg);
            mb.arrived.notify_all();
        }
    }

    /// Posts a receive at `me`; returns a slot completed by the matching
    /// sender. An already-arrived unexpected message matches immediately
    /// (earliest first, preserving arrival order per source).
    pub fn post_recv(&self, me: WorldRank, ctx: ContextId, src: i32, tag: i32) -> Arc<RecvSlot> {
        let slot = Arc::new(RecvSlot::default());
        let mb = &self.mailboxes[me];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner.unexpected.iter().position(|m| matches(ctx, src, tag, m)) {
            let msg = inner.unexpected.remove(i).expect("index in range");
            drop(inner);
            slot.fill(msg);
        } else {
            inner.posted.push_back(PostedRecv { ctx, src, tag, slot: slot.clone() });
        }
        slot
    }

    /// Non-blocking probe: peeks the unexpected queue.
    pub fn iprobe(
        &self,
        me: WorldRank,
        ctx: ContextId,
        src: i32,
        tag: i32,
    ) -> Option<(i32, i32, u64)> {
        let inner = self.mailboxes[me].inner.lock();
        inner
            .unexpected
            .iter()
            .find(|m| matches(ctx, src, tag, m))
            .map(|m| (m.src_comm_rank, m.tag, m.data.len() as u64))
    }

    /// Blocking probe: waits until a matching message is enqueued.
    pub fn probe(&self, me: WorldRank, ctx: ContextId, src: i32, tag: i32) -> (i32, i32, u64) {
        let mb = &self.mailboxes[me];
        let mut inner = mb.inner.lock();
        loop {
            if let Some(m) = inner.unexpected.iter().find(|m| matches(ctx, src, tag, m)) {
                return (m.src_comm_rank, m.tag, m.data.len() as u64);
            }
            mb.arrived.wait_for(&mut inner, Duration::from_millis(50));
            self.check_abort();
        }
    }

    // ------------------------------------------------------------------
    // Tool side-channel (untraced)
    // ------------------------------------------------------------------

    /// Sends raw bytes on the tool channel (used by tracers for merges).
    pub fn tool_send(&self, dest_world: WorldRank, src_world: WorldRank, tag: i32, data: Vec<u8>) {
        let msg =
            Message { ctx: u64::MAX, src_comm_rank: src_world as i32, tag, data, send_time: 0 };
        let mb = &self.tool_mailboxes[dest_world];
        let mut inner = mb.inner.lock();
        if let Some(i) = inner.posted.iter().position(|p| matches(p.ctx, p.src, p.tag, &msg)) {
            let posted = inner.posted.remove(i).expect("index in range");
            drop(inner);
            posted.slot.fill(msg);
        } else {
            inner.unexpected.push_back(msg);
            mb.arrived.notify_all();
        }
    }

    /// Blocking receive on the tool channel.
    pub fn tool_recv(&self, me: WorldRank, src_world: WorldRank, tag: i32) -> Vec<u8> {
        let slot = {
            let mb = &self.tool_mailboxes[me];
            let mut inner = mb.inner.lock();
            let slot = Arc::new(RecvSlot::default());
            if let Some(i) = inner
                .unexpected
                .iter()
                .position(|m| m.src_comm_rank == src_world as i32 && m.tag == tag)
            {
                let msg = inner.unexpected.remove(i).expect("index in range");
                drop(inner);
                slot.fill(msg);
            } else {
                inner.posted.push_back(PostedRecv {
                    ctx: u64::MAX,
                    src: src_world as i32,
                    tag,
                    slot: slot.clone(),
                });
            }
            slot
        };
        slot.wait_take(self).data
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric").field("n_ranks", &self.n_ranks).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv_matches() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 7, data: vec![1, 2], send_time: 5 });
        let slot = f.post_recv(1, 0, 0, 7);
        let m = slot.try_take().expect("unexpected message should match");
        assert_eq!(m.data, vec![1, 2]);
        assert_eq!(m.send_time, 5);
    }

    #[test]
    fn recv_then_send_matches() {
        let f = Fabric::new(2);
        let slot = f.post_recv(1, 0, ANY_SOURCE, ANY_TAG);
        assert!(!slot.is_ready());
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 3, data: vec![9], send_time: 0 });
        assert!(slot.is_ready());
        assert_eq!(slot.try_take().unwrap().tag, 3);
    }

    #[test]
    fn wildcard_does_not_match_wrong_context() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 42, src_comm_rank: 0, tag: 1, data: vec![], send_time: 0 });
        let slot = f.post_recv(1, 0, ANY_SOURCE, ANY_TAG);
        assert!(!slot.is_ready(), "message in ctx 42 must not match ctx 0 recv");
    }

    #[test]
    fn tag_matching_is_exact_without_wildcard() {
        let f = Fabric::new(2);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 5, data: vec![], send_time: 0 });
        let slot = f.post_recv(1, 0, 0, 6);
        assert!(!slot.is_ready());
        let slot2 = f.post_recv(1, 0, 0, 5);
        assert!(slot2.is_ready());
    }

    #[test]
    fn non_overtaking_same_source() {
        let f = Fabric::new(2);
        for i in 0..3u8 {
            f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 1, data: vec![i], send_time: 0 });
        }
        for i in 0..3u8 {
            let m = f.post_recv(1, 0, 0, 1).try_take().unwrap();
            assert_eq!(m.data, vec![i], "messages must arrive in send order");
        }
    }

    #[test]
    fn posted_recvs_match_in_post_order() {
        let f = Fabric::new(2);
        let a = f.post_recv(1, 0, ANY_SOURCE, 1);
        let b = f.post_recv(1, 0, ANY_SOURCE, 1);
        f.send(1, Message { ctx: 0, src_comm_rank: 0, tag: 1, data: vec![1], send_time: 0 });
        assert!(a.is_ready());
        assert!(!b.is_ready());
    }

    #[test]
    fn probe_sees_without_consuming() {
        let f = Fabric::new(1);
        assert!(f.iprobe(0, 0, ANY_SOURCE, ANY_TAG).is_none());
        f.send(0, Message { ctx: 0, src_comm_rank: 0, tag: 9, data: vec![0; 16], send_time: 0 });
        let (src, tag, count) = f.iprobe(0, 0, ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!((src, tag, count), (0, 9, 16));
        // Still receivable afterwards.
        assert!(f.post_recv(0, 0, 0, 9).is_ready());
    }

    #[test]
    fn coll_round_exchange() {
        let f = Fabric::new(3);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        c.deposit(0, 0, vec![0], 10);
        c.deposit(0, 2, vec![2], 30);
        assert!(!c.is_ready(0));
        c.deposit(0, 1, vec![1], 20);
        assert!(c.is_ready(0));
        let (res, time) = c.try_collect(0).unwrap();
        assert_eq!(*res, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(time, 30);
        // Two more readers drain the round.
        assert!(c.try_collect(0).is_some());
        assert!(c.try_collect(0).is_some());
        assert!(c.try_collect(0).is_none(), "round must be cleaned up");
    }

    #[test]
    fn coll_rounds_are_independent() {
        let f = Fabric::new(2);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        // Rank 0 races ahead into round 1 before rank 1 finishes round 0.
        c.deposit(0, 0, vec![], 0);
        c.deposit(1, 0, vec![], 0);
        assert!(!c.is_ready(0));
        assert!(!c.is_ready(1));
        c.deposit(0, 1, vec![], 0);
        assert!(c.is_ready(0));
        c.deposit(1, 1, vec![], 0);
        assert!(c.is_ready(1));
    }

    #[test]
    fn tool_channel_roundtrip_threads() {
        let f = Fabric::new(2);
        let f2 = f.clone();
        let t = thread::spawn(move || f2.tool_recv(1, 0, 77));
        f.tool_send(1, 0, 77, vec![5, 6, 7]);
        assert_eq!(t.join().unwrap(), vec![5, 6, 7]);
    }

    #[test]
    fn context_ids_are_unique() {
        let f = Fabric::new(1);
        let a = f.alloc_context();
        let b = f.alloc_context();
        assert_ne!(a, b);
        assert_ne!(a, WORLD_CONTEXT);
    }

    #[test]
    fn blocking_collect_across_threads() {
        let f = Fabric::new(2);
        let c = f.coll(WORLD_CONTEXT, Lane::App);
        let (f2, c2) = (f.clone(), c.clone());
        let t = thread::spawn(move || {
            c2.deposit(0, 1, vec![1], 4);
            c2.wait_collect(&f2, 0)
        });
        c.deposit(0, 0, vec![0], 9);
        let (mine, time) = c.wait_collect(&f, 0);
        let (theirs, _) = t.join().unwrap();
        assert_eq!(*mine, *theirs);
        assert_eq!(time, 9);
    }
}
