//! Fundamental MPI-like constants and value types.

/// Wildcard source rank: match a message from any source.
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag: match a message with any tag.
pub const ANY_TAG: i32 = -1;
/// Null process: communication with it completes immediately and moves no
/// data, exactly as in MPI.
pub const PROC_NULL: i32 = -2;

/// Completion status of a receive-like operation — the subset of
/// `MPI_Status` fields the simulator produces. (Pilgrim keeps `MPI_SOURCE`
/// and `MPI_TAG` and reconstructs `count`/`cancelled` in post-processing;
/// `MPI_ERROR` is almost always zero — paper §3.3.2.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank (within the matching communicator) the message came from.
    pub source: i32,
    /// Tag the message was sent with.
    pub tag: i32,
    /// Number of bytes received.
    pub count: u64,
}

impl Status {
    /// Status returned by operations on [`PROC_NULL`].
    pub fn proc_null() -> Status {
        Status { source: PROC_NULL, tag: ANY_TAG, count: 0 }
    }
}

/// Predefined reduction operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
    Prod,
    Land,
    Lor,
    Band,
    Bor,
    MaxLoc,
    MinLoc,
}

impl ReduceOp {
    /// Stable numeric id used in call records (the "handle" a PMPI layer
    /// would observe for a predefined op).
    pub fn id(self) -> u32 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Max => 1,
            ReduceOp::Min => 2,
            ReduceOp::Prod => 3,
            ReduceOp::Land => 4,
            ReduceOp::Lor => 5,
            ReduceOp::Band => 6,
            ReduceOp::Bor => 7,
            ReduceOp::MaxLoc => 8,
            ReduceOp::MinLoc => 9,
        }
    }

    /// Inverse of [`ReduceOp::id`].
    pub fn from_id(id: u32) -> Option<ReduceOp> {
        Some(match id {
            0 => ReduceOp::Sum,
            1 => ReduceOp::Max,
            2 => ReduceOp::Min,
            3 => ReduceOp::Prod,
            4 => ReduceOp::Land,
            5 => ReduceOp::Lor,
            6 => ReduceOp::Band,
            7 => ReduceOp::Bor,
            8 => ReduceOp::MaxLoc,
            9 => ReduceOp::MinLoc,
            _ => return None,
        })
    }

    /// Applies the op elementwise over `u64` lanes (the simulator reduces
    /// payloads in 8-byte lanes; MAXLOC/MINLOC use (value, index) pairs).
    pub fn combine(self, acc: &mut [u64], next: &[u64]) {
        assert_eq!(acc.len(), next.len(), "reduce length mismatch");
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a = a.wrapping_add(*b);
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a = (*a).max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a = (*a).min(*b);
                }
            }
            ReduceOp::Prod => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a = a.wrapping_mul(*b);
                }
            }
            ReduceOp::Land => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a = u64::from(*a != 0 && *b != 0);
                }
            }
            ReduceOp::Lor => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a = u64::from(*a != 0 || *b != 0);
                }
            }
            ReduceOp::Band => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a &= *b;
                }
            }
            ReduceOp::Bor => {
                for (a, b) in acc.iter_mut().zip(next) {
                    *a |= *b;
                }
            }
            ReduceOp::MaxLoc | ReduceOp::MinLoc => {
                // Pairs of (value, location); ties keep the lower location.
                let take_max = matches!(self, ReduceOp::MaxLoc);
                for (a, b) in acc.chunks_exact_mut(2).zip(next.chunks_exact(2)) {
                    let better = if take_max {
                        b[0] > a[0] || (b[0] == a[0] && b[1] < a[1])
                    } else {
                        b[0] < a[0] || (b[0] == a[0] && b[1] < a[1])
                    };
                    if better {
                        a[0] = b[0];
                        a[1] = b[1];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_and_max() {
        let mut acc = vec![1u64, 10];
        ReduceOp::Sum.combine(&mut acc, &[2, 3]);
        assert_eq!(acc, vec![3, 13]);
        ReduceOp::Max.combine(&mut acc, &[100, 1]);
        assert_eq!(acc, vec![100, 13]);
    }

    #[test]
    fn reduce_minloc_prefers_lower_index_on_tie() {
        let mut acc = vec![5u64, 3]; // value 5 at rank 3
        ReduceOp::MinLoc.combine(&mut acc, &[5, 1]);
        assert_eq!(acc, vec![5, 1]);
        ReduceOp::MinLoc.combine(&mut acc, &[4, 7]);
        assert_eq!(acc, vec![4, 7]);
    }

    #[test]
    fn reduce_logical_ops() {
        let mut acc = vec![1u64, 0];
        ReduceOp::Land.combine(&mut acc, &[1, 1]);
        assert_eq!(acc, vec![1, 0]);
        let mut acc = vec![0u64, 0];
        ReduceOp::Lor.combine(&mut acc, &[0, 1]);
        assert_eq!(acc, vec![0, 1]);
    }

    #[test]
    fn proc_null_status() {
        let s = Status::proc_null();
        assert_eq!(s.source, PROC_NULL);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn op_ids_are_distinct() {
        let ops = [
            ReduceOp::Sum,
            ReduceOp::Max,
            ReduceOp::Min,
            ReduceOp::Prod,
            ReduceOp::Land,
            ReduceOp::Lor,
            ReduceOp::Band,
            ReduceOp::Bor,
            ReduceOp::MaxLoc,
            ReduceOp::MinLoc,
        ];
        let mut ids: Vec<u32> = ops.iter().map(|o| o.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ops.len());
    }
}
