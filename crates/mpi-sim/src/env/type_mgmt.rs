//! Derived datatype construction calls.

use crate::datatype::DatatypeHandle;
use crate::hooks::{Arg, CallRec};
use crate::FuncId;

use super::Env;

impl Env {
    /// `MPI_Type_contiguous`.
    pub fn type_contiguous(&mut self, count: u64, base: DatatypeHandle) -> DatatypeHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let new = self.types.contiguous(count, base);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::TypeContiguous,
                vec![Arg::Int(count as i64), Arg::Datatype(base.0), Arg::Datatype(new.0)],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Type_vector`.
    pub fn type_vector(
        &mut self,
        count: u64,
        blocklen: u64,
        stride: i64,
        base: DatatypeHandle,
    ) -> DatatypeHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let new = self.types.vector(count, blocklen, stride, base);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::TypeVector,
                vec![
                    Arg::Int(count as i64),
                    Arg::Int(blocklen as i64),
                    Arg::Int(stride),
                    Arg::Datatype(base.0),
                    Arg::Datatype(new.0),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Type_indexed`.
    pub fn type_indexed(
        &mut self,
        blocklens: &[u64],
        displs: &[i64],
        base: DatatypeHandle,
    ) -> DatatypeHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let new = self.types.indexed(blocklens, displs, base);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::TypeIndexed,
                vec![
                    Arg::Int(blocklens.len() as i64),
                    Arg::IntArr(blocklens.iter().map(|&b| b as i64).collect()),
                    Arg::IntArr(displs.to_vec()),
                    Arg::Datatype(base.0),
                    Arg::Datatype(new.0),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Type_create_struct`.
    pub fn type_create_struct(
        &mut self,
        blocklens: &[u64],
        displs: &[i64],
        types: &[DatatypeHandle],
    ) -> DatatypeHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let new = self.types.structured(blocklens, displs, types);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::TypeCreateStruct,
                vec![
                    Arg::Int(blocklens.len() as i64),
                    Arg::IntArr(blocklens.iter().map(|&b| b as i64).collect()),
                    Arg::IntArr(displs.to_vec()),
                    Arg::IntArr(types.iter().map(|t| t.0 as i64).collect()),
                    Arg::Datatype(new.0),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Type_commit`.
    pub fn type_commit(&mut self, dt: DatatypeHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.types.commit(dt);
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::TypeCommit, vec![Arg::Datatype(dt.0)]), t0, t1);
    }

    /// `MPI_Type_free`.
    pub fn type_free(&mut self, dt: DatatypeHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.types.free(dt);
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::TypeFree, vec![Arg::Datatype(dt.0)]), t0, t1);
    }

    /// Size in bytes of one element of a datatype (helper, untraced).
    pub fn type_size(&self, dt: DatatypeHandle) -> u64 {
        self.types.get(dt).size
    }
}
