//! Collective operations, implemented over the fabric's generation-counted
//! exchange lanes: every member deposits its contribution for the round and
//! reads back the full set, then computes its own result locally.

use std::sync::Arc;

use crate::comm::CommHandle;
use crate::datatype::DatatypeHandle;
use crate::fabric::Lane;
use crate::heap::Addr;
use crate::hooks::{Arg, CallRec};
use crate::request::{NbOp, ReqKind, RequestHandle};
use crate::types::ReduceOp;
use crate::FuncId;

use super::{bytes_to_u64s, u64s_to_bytes, Env};

impl Env {
    /// One blocking exchange round on the communicator's app lane: deposits
    /// `contrib`, returns all contributions (indexed by lane rank) plus the
    /// synchronization time.
    pub(crate) fn exchange_raw(
        &mut self,
        comm: CommHandle,
        contrib: Vec<u8>,
    ) -> (Arc<Vec<Vec<u8>>>, u64) {
        let info = self.comms.get(comm);
        // Lookup only: the lane was registered (with its member list) when
        // the communicator was installed.
        let coll = self.fabric.coll(info.ctx, Lane::App);
        let round = info.app_round.get();
        info.app_round.set(round + 1);
        let lane_rank = info.lane_rank();
        let bytes = contrib.len() as u64;
        coll.deposit(round, lane_rank, contrib, self.clock.now());
        let (res, sync) = coll.wait_collect(&self.fabric, round, self.world_rank());
        // Charge the synchronization wait plus a size-dependent cost.
        self.clock.absorb_collective(sync, bytes);
        (res, sync)
    }

    /// Starts a non-blocking exchange; completion via the request machinery.
    pub(crate) fn exchange_nb_raw(
        &mut self,
        comm: CommHandle,
        contrib: Vec<u8>,
        op: NbOp,
    ) -> RequestHandle {
        let info = self.comms.get(comm);
        let coll = self.fabric.coll(info.ctx, Lane::App);
        let round = info.app_round.get();
        info.app_round.set(round + 1);
        let lane_rank = info.lane_rank();
        coll.deposit(round, lane_rank, contrib, self.clock.now());
        self.reqs.insert(ReqKind::Coll { coll, round, lane_rank, op })
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: CommHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.exchange_raw(comm, Vec::new());
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::Barrier, vec![Arg::Comm(comm.0)]), t0, t1);
    }

    /// `MPI_Ibarrier`.
    pub fn ibarrier(&mut self, comm: CommHandle) -> RequestHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let req = self.exchange_nb_raw(comm, Vec::new(), NbOp::Barrier);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(FuncId::Ibarrier, vec![Arg::Comm(comm.0), Arg::Request(req.0)]),
            t0,
            t1,
        );
        req
    }

    /// `MPI_Bcast`.
    pub fn bcast(
        &mut self,
        buf: Addr,
        count: u64,
        dt: DatatypeHandle,
        root: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_rank = self.comms.get(comm).my_rank;
        let contrib =
            if my_rank == root as usize { self.pack_buf(buf, count, dt) } else { Vec::new() };
        let (res, _) = self.exchange_raw(comm, contrib);
        if my_rank != root as usize {
            let data = res[root as usize].clone();
            self.unpack_buf(buf, count, dt, &data);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Bcast,
                vec![
                    Arg::Ptr(buf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Rank(root),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    fn reduce_contribs(contribs: &[Vec<u8>], op: ReduceOp) -> Vec<u64> {
        let mut acc = bytes_to_u64s(&contribs[0]);
        for c in &contribs[1..] {
            let next = bytes_to_u64s(c);
            op.combine(&mut acc, &next);
        }
        acc
    }

    /// `MPI_Reduce` (u64 lanes; `count` is the number of 8-byte elements).
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &mut self,
        sendbuf: Addr,
        recvbuf: Addr,
        count: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        root: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, count, dt);
        let (res, _) = self.exchange_raw(comm, contrib);
        let my_rank = self.comms.get(comm).my_rank;
        if my_rank == root as usize {
            let acc = Self::reduce_contribs(&res, op);
            self.heap.write_u64s(recvbuf, &acc);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Reduce,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Ptr(recvbuf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Op(op.id()),
                    Arg::Rank(root),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &mut self,
        sendbuf: Addr,
        recvbuf: Addr,
        count: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, count, dt);
        let (res, _) = self.exchange_raw(comm, contrib);
        let acc = Self::reduce_contribs(&res, op);
        self.heap.write_u64s(recvbuf, &acc);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Allreduce,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Ptr(recvbuf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Op(op.id()),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Iallreduce`.
    pub fn iallreduce(
        &mut self,
        sendbuf: Addr,
        recvbuf: Addr,
        count: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        comm: CommHandle,
    ) -> RequestHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, count, dt);
        let lanes = contrib.len() / 8;
        let req = self.exchange_nb_raw(comm, contrib, NbOp::Allreduce { recv: recvbuf, lanes, op });
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Iallreduce,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Ptr(recvbuf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Op(op.id()),
                    Arg::Comm(comm.0),
                    Arg::Request(req.0),
                ],
            ),
            t0,
            t1,
        );
        req
    }

    /// `MPI_Gather`.
    #[allow(clippy::too_many_arguments)]
    pub fn gather(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcount: u64,
        recvtype: DatatypeHandle,
        root: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, sendcount, sendtype);
        let (res, _) = self.exchange_raw(comm, contrib);
        let my_rank = self.comms.get(comm).my_rank;
        if my_rank == root as usize {
            let extent = self.types.get(recvtype).extent;
            for (i, data) in res.iter().enumerate() {
                let dst = recvbuf + (i as u64) * recvcount * extent;
                self.unpack_buf(dst, recvcount, recvtype, data);
            }
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Gather,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(recvtype.0),
                    Arg::Rank(root),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Gatherv` (displacements in elements of the receive type).
    #[allow(clippy::too_many_arguments)]
    pub fn gatherv(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcounts: &[u64],
        displs: &[i64],
        recvtype: DatatypeHandle,
        root: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, sendcount, sendtype);
        let (res, _) = self.exchange_raw(comm, contrib);
        let my_rank = self.comms.get(comm).my_rank;
        if my_rank == root as usize {
            let extent = self.types.get(recvtype).extent;
            for (i, data) in res.iter().enumerate() {
                let dst = (recvbuf as i64 + displs[i] * extent as i64) as Addr;
                self.unpack_buf(dst, recvcounts[i], recvtype, data);
            }
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Gatherv,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::IntArr(recvcounts.iter().map(|&c| c as i64).collect()),
                    Arg::IntArr(displs.to_vec()),
                    Arg::Datatype(recvtype.0),
                    Arg::Rank(root),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Scatter`.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcount: u64,
        recvtype: DatatypeHandle,
        root: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_rank = self.comms.get(comm).my_rank;
        let comm_size = self.comms.get(comm).size();
        let contrib = if my_rank == root as usize {
            self.pack_buf(sendbuf, sendcount * comm_size as u64, sendtype)
        } else {
            Vec::new()
        };
        let (res, _) = self.exchange_raw(comm, contrib);
        let full = &res[root as usize];
        let elem = self.types.get(sendtype).size;
        let chunk = (sendcount * elem) as usize;
        let mine = &full[my_rank * chunk..(my_rank + 1) * chunk];
        let mine = mine.to_vec();
        self.unpack_buf(recvbuf, recvcount, recvtype, &mine);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Scatter,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(recvtype.0),
                    Arg::Rank(root),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Scatterv` (send displacements in elements of the send type).
    #[allow(clippy::too_many_arguments)]
    pub fn scatterv(
        &mut self,
        sendbuf: Addr,
        sendcounts: &[u64],
        displs: &[i64],
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcount: u64,
        recvtype: DatatypeHandle,
        root: i32,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_rank = self.comms.get(comm).my_rank;
        let contrib = if my_rank == root as usize {
            // Pack each rank's chunk separately, concatenated with a length
            // prefix so chunks can be recovered.
            let mut out = Vec::new();
            for (i, &cnt) in sendcounts.iter().enumerate() {
                let extent = self.types.get(sendtype).extent;
                let src = (sendbuf as i64 + displs[i] * extent as i64) as Addr;
                let chunk = self.pack_buf(src, cnt, sendtype);
                out.extend_from_slice(&(chunk.len() as u64).to_le_bytes());
                out.extend_from_slice(&chunk);
            }
            out
        } else {
            Vec::new()
        };
        let (res, _) = self.exchange_raw(comm, contrib);
        // Recover my chunk from the root's contribution.
        let full = &res[root as usize];
        let mut pos = 0usize;
        let mut mine = Vec::new();
        for i in 0..self.comms.get(comm).size() {
            let len = u64::from_le_bytes(full[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            if i == my_rank {
                mine = full[pos..pos + len].to_vec();
            }
            pos += len;
        }
        self.unpack_buf(recvbuf, recvcount, recvtype, &mine);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Scatterv,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::IntArr(sendcounts.iter().map(|&c| c as i64).collect()),
                    Arg::IntArr(displs.to_vec()),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(recvtype.0),
                    Arg::Rank(root),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Allgather`.
    #[allow(clippy::too_many_arguments)]
    pub fn allgather(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcount: u64,
        recvtype: DatatypeHandle,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, sendcount, sendtype);
        let (res, _) = self.exchange_raw(comm, contrib);
        let extent = self.types.get(recvtype).extent;
        for (i, data) in res.iter().enumerate() {
            let dst = recvbuf + (i as u64) * recvcount * extent;
            let data = data.clone();
            self.unpack_buf(dst, recvcount, recvtype, &data);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Allgather,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(recvtype.0),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Allgatherv`.
    #[allow(clippy::too_many_arguments)]
    pub fn allgatherv(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcounts: &[u64],
        displs: &[i64],
        recvtype: DatatypeHandle,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, sendcount, sendtype);
        let (res, _) = self.exchange_raw(comm, contrib);
        let extent = self.types.get(recvtype).extent;
        for (i, data) in res.iter().enumerate() {
            let dst = (recvbuf as i64 + displs[i] * extent as i64) as Addr;
            let data = data.clone();
            self.unpack_buf(dst, recvcounts[i], recvtype, &data);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Allgatherv,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::IntArr(recvcounts.iter().map(|&c| c as i64).collect()),
                    Arg::IntArr(displs.to_vec()),
                    Arg::Datatype(recvtype.0),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Alltoall`.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoall(
        &mut self,
        sendbuf: Addr,
        sendcount: u64,
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcount: u64,
        recvtype: DatatypeHandle,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let comm_size = self.comms.get(comm).size();
        let my_rank = self.comms.get(comm).my_rank;
        let contrib = self.pack_buf(sendbuf, sendcount * comm_size as u64, sendtype);
        let (res, _) = self.exchange_raw(comm, contrib);
        let elem = self.types.get(sendtype).size;
        let chunk = (sendcount * elem) as usize;
        let extent = self.types.get(recvtype).extent;
        for (i, data) in res.iter().enumerate() {
            let piece = data[my_rank * chunk..(my_rank + 1) * chunk].to_vec();
            let dst = recvbuf + (i as u64) * recvcount * extent;
            self.unpack_buf(dst, recvcount, recvtype, &piece);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Alltoall,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Int(sendcount as i64),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(recvtype.0),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Alltoallv`.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv(
        &mut self,
        sendbuf: Addr,
        sendcounts: &[u64],
        sdispls: &[i64],
        sendtype: DatatypeHandle,
        recvbuf: Addr,
        recvcounts: &[u64],
        rdispls: &[i64],
        recvtype: DatatypeHandle,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_rank = self.comms.get(comm).my_rank;
        // Length-prefixed per-destination chunks.
        let mut contrib = Vec::new();
        for (i, &cnt) in sendcounts.iter().enumerate() {
            let extent = self.types.get(sendtype).extent;
            let src = (sendbuf as i64 + sdispls[i] * extent as i64) as Addr;
            let chunk = self.pack_buf(src, cnt, sendtype);
            contrib.extend_from_slice(&(chunk.len() as u64).to_le_bytes());
            contrib.extend_from_slice(&chunk);
        }
        let (res, _) = self.exchange_raw(comm, contrib);
        let extent = self.types.get(recvtype).extent;
        for (i, data) in res.iter().enumerate() {
            // Extract chunk destined to my_rank from sender i.
            let mut pos = 0usize;
            let mut mine: Option<Vec<u8>> = None;
            for j in 0..res.len() {
                let len = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap()) as usize;
                pos += 8;
                if j == my_rank {
                    mine = Some(data[pos..pos + len].to_vec());
                    break;
                }
                pos += len;
            }
            let mine = mine.expect("alltoallv chunk present");
            let dst = (recvbuf as i64 + rdispls[i] * extent as i64) as Addr;
            self.unpack_buf(dst, recvcounts[i], recvtype, &mine);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::Alltoallv,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::IntArr(sendcounts.iter().map(|&c| c as i64).collect()),
                    Arg::IntArr(sdispls.to_vec()),
                    Arg::Datatype(sendtype.0),
                    Arg::Ptr(recvbuf),
                    Arg::IntArr(recvcounts.iter().map(|&c| c as i64).collect()),
                    Arg::IntArr(rdispls.to_vec()),
                    Arg::Datatype(recvtype.0),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Reduce_scatter_block`.
    pub fn reduce_scatter_block(
        &mut self,
        sendbuf: Addr,
        recvbuf: Addr,
        recvcount: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        comm: CommHandle,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let comm_size = self.comms.get(comm).size();
        let my_rank = self.comms.get(comm).my_rank;
        let contrib = self.pack_buf(sendbuf, recvcount * comm_size as u64, dt);
        let (res, _) = self.exchange_raw(comm, contrib);
        let acc = Self::reduce_contribs(&res, op);
        let lanes_per_rank = acc.len() / comm_size;
        let mine = &acc[my_rank * lanes_per_rank..(my_rank + 1) * lanes_per_rank];
        self.heap.write_u64s(recvbuf, mine);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::ReduceScatterBlock,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Ptr(recvbuf),
                    Arg::Int(recvcount as i64),
                    Arg::Datatype(dt.0),
                    Arg::Op(op.id()),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    #[allow(clippy::too_many_arguments)] // mirrors the MPI C signature
    fn scan_like(
        &mut self,
        func: FuncId,
        sendbuf: Addr,
        recvbuf: Addr,
        count: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        comm: CommHandle,
        exclusive: bool,
    ) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let contrib = self.pack_buf(sendbuf, count, dt);
        let (res, _) = self.exchange_raw(comm, contrib);
        let my_rank = self.comms.get(comm).my_rank;
        let upto = if exclusive { my_rank } else { my_rank + 1 };
        if upto > 0 {
            let acc = Self::reduce_contribs(&res[..upto], op);
            self.heap.write_u64s(recvbuf, &acc);
        }
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                func,
                vec![
                    Arg::Ptr(sendbuf),
                    Arg::Ptr(recvbuf),
                    Arg::Int(count as i64),
                    Arg::Datatype(dt.0),
                    Arg::Op(op.id()),
                    Arg::Comm(comm.0),
                ],
            ),
            t0,
            t1,
        );
    }

    /// `MPI_Scan`.
    pub fn scan(
        &mut self,
        sendbuf: Addr,
        recvbuf: Addr,
        count: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        comm: CommHandle,
    ) {
        self.scan_like(FuncId::Scan, sendbuf, recvbuf, count, dt, op, comm, false);
    }

    /// `MPI_Exscan`.
    pub fn exscan(
        &mut self,
        sendbuf: Addr,
        recvbuf: Addr,
        count: u64,
        dt: DatatypeHandle,
        op: ReduceOp,
        comm: CommHandle,
    ) {
        self.scan_like(FuncId::Exscan, sendbuf, recvbuf, count, dt, op, comm, true);
    }

    /// Serializes reduce lanes (test helper for collectives).
    #[doc(hidden)]
    pub fn lanes(vals: &[u64]) -> Vec<u8> {
        u64s_to_bytes(vals)
    }
}
