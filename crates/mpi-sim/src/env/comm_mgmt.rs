//! Communicator creation and destruction: dup / split / create / idup,
//! inter-communicators and their merge — including the corner cases the
//! paper calls out (§3.3.1): non-blocking duplication and
//! inter-communicator handling.

use std::cell::Cell;

use crate::comm::{CartTopology, CommHandle, CommInfo, GroupHandle};
use crate::fabric::{ContextId, Lane};
use crate::hooks::{Arg, CallRec};
use crate::request::{NbOp, RequestHandle};
use crate::FuncId;

use super::Env;

/// Color value for `MPI_UNDEFINED` in `comm_split`.
pub const COLOR_UNDEFINED: i32 = -3;

fn ser_u64s(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + vals.len() * 8);
    out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn deser_u64s(data: &[u8]) -> (Vec<u64>, usize) {
    let n = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 8;
    for _ in 0..n {
        out.push(u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap()));
        pos += 8;
    }
    (out, pos)
}

impl Env {
    fn install_intra(&mut self, ctx: ContextId, group: Vec<usize>, my_world: usize) -> CommHandle {
        let my_rank = group
            .iter()
            .position(|&w| w == my_world)
            .expect("installing a communicator we are not a member of");
        self.fabric.ensure_coll(ctx, Lane::App, &group);
        self.fabric.ensure_coll(ctx, Lane::Tool, &group);
        self.comms.insert(CommInfo {
            ctx,
            group,
            my_rank,
            remote_group: None,
            union_offset: 0,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        })
    }

    /// `MPI_Comm_dup`.
    pub fn comm_dup(&mut self, comm: CommHandle) -> CommHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_rank = self.comms.get(comm).my_rank;
        // Rank 0 allocates the new context and distributes it.
        let contrib = if my_rank == 0 {
            self.fabric.alloc_context().to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let (res, _) = self.exchange_raw(comm, contrib);
        let ctx = u64::from_le_bytes(res[0].as_slice().try_into().expect("ctx bytes"));
        let group = self.comms.get(comm).group.clone();
        let new = self.install_intra(ctx, group, self.world_rank());
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::CommDup, vec![Arg::Comm(comm.0), Arg::Comm(new.0)]), t0, t1);
        new
    }

    /// `MPI_Comm_idup`: returns the (not-yet-usable) handle and a request;
    /// the communicator becomes valid when the request completes.
    pub fn comm_idup(&mut self, comm: CommHandle) -> (CommHandle, RequestHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_rank = self.comms.get(comm).my_rank;
        let contrib = if my_rank == 0 {
            self.fabric.alloc_context().to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let new_handle = self.comms.reserve();
        let req = self.exchange_nb_raw(comm, contrib, NbOp::Idup { parent: comm, new_handle });
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::CommIdup,
                vec![Arg::Comm(comm.0), Arg::Comm(new_handle.0), Arg::Request(req.0)],
            ),
            t0,
            t1,
        );
        (new_handle, req)
    }

    /// `MPI_Comm_split`. `color < 0` (UNDEFINED) yields no communicator.
    pub fn comm_split(&mut self, comm: CommHandle, color: i32, key: i32) -> Option<CommHandle> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        // Phase 1: everyone shares (color, key).
        let contrib = ser_u64s(&[color as u32 as u64, key as u32 as u64]);
        let (res, _) = self.exchange_raw(comm, contrib);
        let entries: Vec<(i32, i32)> = res
            .iter()
            .map(|d| {
                let (vals, _) = deser_u64s(d);
                (vals[0] as u32 as i32, vals[1] as u32 as i32)
            })
            .collect();
        // Members of my color, ordered by (key, parent rank).
        let info = self.comms.get(comm);
        let my_rank = info.my_rank;
        let parent_group = info.group.clone();
        let mut members: Vec<(i32, usize)> = entries
            .iter()
            .enumerate()
            .filter(|&(_, &(c, _))| color >= 0 && c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort_unstable();
        // Phase 2: each color leader (lowest parent rank in its color
        // group) allocates the context; everyone reads its leader's slot.
        let leader = entries
            .iter()
            .enumerate()
            .filter(|&(_, &(c, _))| color >= 0 && c == color)
            .map(|(r, _)| r)
            .min();
        let contrib2 = if leader == Some(my_rank) {
            self.fabric.alloc_context().to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let (res2, _) = self.exchange_raw(comm, contrib2);
        let new = leader.map(|l| {
            let ctx = u64::from_le_bytes(res2[l].as_slice().try_into().expect("ctx bytes"));
            let group: Vec<usize> = members.iter().map(|&(_, r)| parent_group[r]).collect();
            self.install_intra(ctx, group, self.world_rank())
        });
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::CommSplit,
                vec![
                    Arg::Comm(comm.0),
                    Arg::Color(color),
                    Arg::Key(key),
                    Arg::Comm(new.map_or(u32::MAX, |h| h.0)),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Comm_create`: collective over `comm`; members of `group` get
    /// the new communicator.
    pub fn comm_create(&mut self, comm: CommHandle, group: GroupHandle) -> Option<CommHandle> {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let members = self.group_members(group);
        let info = self.comms.get(comm);
        let my_world = self.world_rank();
        let in_group = members.contains(&my_world);
        // Leader: parent-comm rank of the group's first member.
        let leader_parent_rank = info
            .group
            .iter()
            .position(|w| *w == members[0])
            .expect("group member not in parent communicator");
        let contrib = if in_group && info.my_rank == leader_parent_rank {
            self.fabric.alloc_context().to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let (res, _) = self.exchange_raw(comm, contrib);
        let new = if in_group {
            let ctx = u64::from_le_bytes(
                res[leader_parent_rank].as_slice().try_into().expect("ctx bytes"),
            );
            Some(self.install_intra(ctx, members, my_world))
        } else {
            None
        };
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::CommCreate,
                vec![
                    Arg::Comm(comm.0),
                    Arg::Group(group.0),
                    Arg::Comm(new.map_or(u32::MAX, |h| h.0)),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Comm_free`.
    pub fn comm_free(&mut self, comm: CommHandle) {
        let t0 = self.clock.now();
        self.clock.call_entry();
        self.comms.remove(comm);
        let t1 = self.clock.now();
        self.emit(CallRec::new(FuncId::CommFree, vec![Arg::Comm(comm.0)]), t0, t1);
    }

    /// `MPI_Intercomm_create`: builds an inter-communicator connecting the
    /// local communicator's group with a remote group, coordinated by the
    /// two leaders over the peer communicator.
    pub fn intercomm_create(
        &mut self,
        local_comm: CommHandle,
        local_leader: usize,
        peer_comm: CommHandle,
        remote_leader: i32,
        tag: i32,
    ) -> CommHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_world = self.world_rank();
        let local = self.comms.get(local_comm);
        let my_rank = local.my_rank;
        let local_group = local.group.clone();
        // Leaders exchange (context proposal, group) through the fabric's
        // internal channel — the handshake a real MPI performs over the
        // peer communicator.
        let blob: Vec<u8> = if my_rank == local_leader {
            let peer = self.comms.get(peer_comm);
            let remote_leader_world = peer.peer_world(remote_leader);
            let proposal = self.fabric.alloc_context();
            let mut payload = ser_u64s(&[proposal, my_world as u64]);
            payload.extend(ser_u64s(&local_group.iter().map(|&w| w as u64).collect::<Vec<_>>()));
            self.fabric.tool_send(remote_leader_world, my_world, tag ^ (1 << 20), payload);
            let reply = self.fabric.tool_recv(my_world, remote_leader_world, tag ^ (1 << 20));
            // Decide the winning context: the proposal of the leader with
            // the smaller world rank (consistent on both sides).
            let (head, used) = deser_u64s(&reply);
            let (their_ctx, their_world) = (head[0], head[1] as usize);
            let (their_group, _) = deser_u64s(&reply[used..]);
            let ctx = if my_world < their_world { proposal } else { their_ctx };
            let low_is_local = my_world < their_world;
            let mut out = ser_u64s(&[ctx, low_is_local as u64]);
            out.extend(ser_u64s(&their_group));
            out
        } else {
            Vec::new()
        };
        // Local broadcast of the handshake result.
        let (res, _) = self.exchange_raw(local_comm, blob);
        let data = &res[local_leader];
        let (head, used) = deser_u64s(data);
        let (ctx, low_is_local) = (head[0], head[1] != 0);
        let (remote_group_u, _) = deser_u64s(&data[used..]);
        let remote_group: Vec<usize> = remote_group_u.iter().map(|&w| w as usize).collect();
        let union_offset = if low_is_local { 0 } else { remote_group.len() };
        // Union ordering (low group first) — identical on both sides.
        let lane_group: Vec<usize> = if low_is_local {
            local_group.iter().chain(remote_group.iter()).copied().collect()
        } else {
            remote_group.iter().chain(local_group.iter()).copied().collect()
        };
        self.fabric.ensure_coll(ctx, Lane::App, &lane_group);
        self.fabric.ensure_coll(ctx, Lane::Tool, &lane_group);
        let new = self.comms.insert(CommInfo {
            ctx,
            group: local_group,
            my_rank,
            remote_group: Some(remote_group),
            union_offset,
            app_round: Cell::new(0),
            tool_round: Cell::new(0),
            name: None,
            cart: None,
        });
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::IntercommCreate,
                vec![
                    Arg::Comm(local_comm.0),
                    Arg::Rank(local_leader as i32),
                    Arg::Comm(peer_comm.0),
                    Arg::Rank(remote_leader),
                    Arg::Tag(tag),
                    Arg::Comm(new.0),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Intercomm_merge`: merges an inter-communicator into an
    /// intra-communicator over the union of both groups. Groups passing
    /// `high = false` order first.
    pub fn intercomm_merge(&mut self, inter: CommHandle, high: bool) -> CommHandle {
        let t0 = self.clock.now();
        self.clock.call_entry();
        let my_world = self.world_rank();
        // Phase 1: everyone shares (high flag, world rank).
        let contrib = ser_u64s(&[high as u64, my_world as u64]);
        let (res, _) = self.exchange_raw(inter, contrib);
        let mut entries: Vec<(u64, usize, usize)> = res
            .iter()
            .enumerate()
            .map(|(lane, d)| {
                let (vals, _) = deser_u64s(d);
                (vals[0], lane, vals[1] as usize)
            })
            .collect();
        // Merged order: low flag first, ties broken by union lane rank.
        entries.sort_by_key(|&(flag, lane, _)| (flag, lane));
        let merged_group: Vec<usize> = entries.iter().map(|&(_, _, w)| w).collect();
        // Phase 2: the member that lands at merged rank 0 allocates.
        let leader_lane = entries[0].1;
        let info = self.comms.get(inter);
        let contrib2 = if info.lane_rank() == leader_lane {
            self.fabric.alloc_context().to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let (res2, _) = self.exchange_raw(inter, contrib2);
        let ctx = u64::from_le_bytes(res2[leader_lane].as_slice().try_into().expect("ctx bytes"));
        let new = self.install_intra(ctx, merged_group, my_world);
        let t1 = self.clock.now();
        self.emit(
            CallRec::new(
                FuncId::IntercommMerge,
                vec![Arg::Comm(inter.0), Arg::Int(high as i64), Arg::Comm(new.0)],
            ),
            t0,
            t1,
        );
        new
    }
}

impl Env {
    /// `MPI_Dims_create`: balanced factorization of `nnodes` over `ndims`
    /// dimensions (a local call, but traced like every other MPI call).
    pub fn dims_create(&mut self, nnodes: usize, ndims: usize) -> Vec<usize> {
        let t0 = self.clock_now_entry();
        let mut dims = vec![1usize; ndims.max(1)];
        let mut rem = nnodes.max(1);
        let mut factors = Vec::new();
        let mut f = 2;
        while f * f <= rem {
            while rem.is_multiple_of(f) {
                factors.push(f);
                rem /= f;
            }
            f += 1;
        }
        if rem > 1 {
            factors.push(rem);
        }
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let i = (0..dims.len()).min_by_key(|&i| dims[i]).expect("ndims >= 1");
            dims[i] *= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        let t1 = self.clock_now();
        self.emit_rec(
            CallRec::new(
                FuncId::DimsCreate,
                vec![
                    Arg::Int(nnodes as i64),
                    Arg::Int(ndims as i64),
                    Arg::IntArr(dims.iter().map(|&d| d as i64).collect()),
                ],
            ),
            t0,
            t1,
        );
        dims
    }

    /// `MPI_Cart_create`: builds a communicator with an attached Cartesian
    /// topology. Ranks beyond `product(dims)` receive `None`
    /// (`MPI_COMM_NULL`), as in MPI.
    pub fn cart_create(
        &mut self,
        comm: CommHandle,
        dims: &[usize],
        periods: &[bool],
        _reorder: bool,
    ) -> Option<CommHandle> {
        assert_eq!(dims.len(), periods.len(), "dims/periods arity mismatch");
        let t0 = self.clock_now_entry();
        let total: usize = dims.iter().product();
        let info = self.comms.get(comm);
        assert!(total <= info.size(), "cartesian grid larger than communicator");
        let my_rank = info.my_rank;
        let in_grid = my_rank < total;
        let members: Vec<usize> = info.group[..total].to_vec();
        // Leader (parent rank 0 is always a member) allocates the context.
        let contrib = if my_rank == 0 {
            self.fabric.alloc_context().to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let (res, _) = self.exchange_raw(comm, contrib);
        let new = if in_grid {
            let ctx = u64::from_le_bytes(res[0].as_slice().try_into().expect("ctx bytes"));
            let h = self.install_intra(ctx, members, self.world_rank());
            self.comms.get_mut(h).cart =
                Some(CartTopology { dims: dims.to_vec(), periods: periods.to_vec() });
            Some(h)
        } else {
            None
        };
        let t1 = self.clock_now();
        self.emit_rec(
            CallRec::new(
                FuncId::CartCreate,
                vec![
                    Arg::Comm(comm.0),
                    Arg::Int(dims.len() as i64),
                    Arg::IntArr(dims.iter().map(|&d| d as i64).collect()),
                    Arg::IntArr(periods.iter().map(|&p| p as i64).collect()),
                    Arg::Int(0), // reorder (the simulator never reorders)
                    Arg::Comm(new.map_or(u32::MAX, |h| h.0)),
                ],
            ),
            t0,
            t1,
        );
        new
    }

    /// `MPI_Cart_rank`.
    pub fn cart_rank(&mut self, comm: CommHandle, coords: &[usize]) -> usize {
        let t0 = self.clock_now_entry();
        let cart = self.comms.get(comm).cart.as_ref().expect("cartesian communicator");
        let rank = cart.rank_of(coords);
        let t1 = self.clock_now();
        self.emit_rec(
            CallRec::new(
                FuncId::CartRank,
                vec![
                    Arg::Comm(comm.0),
                    Arg::IntArr(coords.iter().map(|&c| c as i64).collect()),
                    Arg::Int(rank as i64),
                ],
            ),
            t0,
            t1,
        );
        rank
    }

    /// `MPI_Cart_coords`.
    pub fn cart_coords(&mut self, comm: CommHandle, rank: usize) -> Vec<usize> {
        let t0 = self.clock_now_entry();
        let cart = self.comms.get(comm).cart.as_ref().expect("cartesian communicator");
        let coords = cart.coords(rank);
        let t1 = self.clock_now();
        self.emit_rec(
            CallRec::new(
                FuncId::CartCoords,
                vec![
                    Arg::Comm(comm.0),
                    Arg::Int(rank as i64),
                    Arg::IntArr(coords.iter().map(|&c| c as i64).collect()),
                ],
            ),
            t0,
            t1,
        );
        coords
    }

    /// `MPI_Cart_shift`: returns `(source, dest)` ranks for a shift of
    /// `disp` along `dim`; boundaries map to `PROC_NULL`.
    pub fn cart_shift(&mut self, comm: CommHandle, dim: usize, disp: i64) -> (i32, i32) {
        let t0 = self.clock_now_entry();
        let info = self.comms.get(comm);
        let cart = info.cart.as_ref().expect("cartesian communicator");
        let me = info.my_rank;
        let src = cart.shift(me, dim, -disp).map_or(crate::types::PROC_NULL, |r| r as i32);
        let dst = cart.shift(me, dim, disp).map_or(crate::types::PROC_NULL, |r| r as i32);
        let t1 = self.clock_now();
        self.emit_rec(
            CallRec::new(
                FuncId::CartShift,
                vec![
                    Arg::Comm(comm.0),
                    Arg::Int(dim as i64),
                    Arg::Int(disp),
                    Arg::Rank(src),
                    Arg::Rank(dst),
                ],
            ),
            t0,
            t1,
        );
        (src, dst)
    }
}
