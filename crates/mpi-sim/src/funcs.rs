//! MPI function identities.
//!
//! Two layers:
//!
//! * [`FuncId`] — the calls the simulator actually executes and reports to
//!   tracers (the communication-relevant core of MPI).
//! * [`FunctionRegistry`] — the full MPI-4.0 C function inventory
//!   (Table 1 of the paper: 446 functions excluding `MPI_Wtime`/`MPI_Wtick`),
//!   with per-tool coverage classification used to regenerate the table.
//!   Pilgrim's wrappers are generated from the standard and cover all of
//!   them; ScalaTrace covers ~125 and Cypress ~56.

/// Functions the simulator implements and traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum FuncId {
    Init,
    Finalize,
    CommRank,
    CommSize,
    CommDup,
    CommSplit,
    CommCreate,
    CommIdup,
    CommFree,
    CommGroup,
    CommSetName,
    IntercommCreate,
    IntercommMerge,
    GroupIncl,
    GroupFree,
    Send,
    Bsend,
    Ssend,
    Rsend,
    Recv,
    Isend,
    Ibsend,
    Issend,
    Irsend,
    Irecv,
    Sendrecv,
    Probe,
    Iprobe,
    Wait,
    Waitall,
    Waitany,
    Waitsome,
    Test,
    Testall,
    Testany,
    Testsome,
    RequestFree,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Gatherv,
    Scatter,
    Scatterv,
    Allgather,
    Allgatherv,
    Alltoall,
    Alltoallv,
    ReduceScatterBlock,
    Scan,
    Exscan,
    Ibarrier,
    Iallreduce,
    TypeContiguous,
    TypeVector,
    TypeIndexed,
    TypeCreateStruct,
    TypeCommit,
    TypeFree,
    SendInit,
    BsendInit,
    SsendInit,
    RsendInit,
    RecvInit,
    Start,
    Startall,
    CartCreate,
    CartRank,
    CartCoords,
    CartShift,
    DimsCreate,
    SendrecvReplace,
}

impl FuncId {
    /// All implemented functions, in id order.
    pub const ALL: &'static [FuncId] = &[
        FuncId::Init,
        FuncId::Finalize,
        FuncId::CommRank,
        FuncId::CommSize,
        FuncId::CommDup,
        FuncId::CommSplit,
        FuncId::CommCreate,
        FuncId::CommIdup,
        FuncId::CommFree,
        FuncId::CommGroup,
        FuncId::CommSetName,
        FuncId::IntercommCreate,
        FuncId::IntercommMerge,
        FuncId::GroupIncl,
        FuncId::GroupFree,
        FuncId::Send,
        FuncId::Bsend,
        FuncId::Ssend,
        FuncId::Rsend,
        FuncId::Recv,
        FuncId::Isend,
        FuncId::Ibsend,
        FuncId::Issend,
        FuncId::Irsend,
        FuncId::Irecv,
        FuncId::Sendrecv,
        FuncId::Probe,
        FuncId::Iprobe,
        FuncId::Wait,
        FuncId::Waitall,
        FuncId::Waitany,
        FuncId::Waitsome,
        FuncId::Test,
        FuncId::Testall,
        FuncId::Testany,
        FuncId::Testsome,
        FuncId::RequestFree,
        FuncId::Barrier,
        FuncId::Bcast,
        FuncId::Reduce,
        FuncId::Allreduce,
        FuncId::Gather,
        FuncId::Gatherv,
        FuncId::Scatter,
        FuncId::Scatterv,
        FuncId::Allgather,
        FuncId::Allgatherv,
        FuncId::Alltoall,
        FuncId::Alltoallv,
        FuncId::ReduceScatterBlock,
        FuncId::Scan,
        FuncId::Exscan,
        FuncId::Ibarrier,
        FuncId::Iallreduce,
        FuncId::TypeContiguous,
        FuncId::TypeVector,
        FuncId::TypeIndexed,
        FuncId::TypeCreateStruct,
        FuncId::TypeCommit,
        FuncId::TypeFree,
        FuncId::SendInit,
        FuncId::BsendInit,
        FuncId::SsendInit,
        FuncId::RsendInit,
        FuncId::RecvInit,
        FuncId::Start,
        FuncId::Startall,
        FuncId::CartCreate,
        FuncId::CartRank,
        FuncId::CartCoords,
        FuncId::CartShift,
        FuncId::DimsCreate,
        FuncId::SendrecvReplace,
    ];

    /// The MPI C name of the function.
    pub fn name(self) -> &'static str {
        match self {
            FuncId::Init => "MPI_Init",
            FuncId::Finalize => "MPI_Finalize",
            FuncId::CommRank => "MPI_Comm_rank",
            FuncId::CommSize => "MPI_Comm_size",
            FuncId::CommDup => "MPI_Comm_dup",
            FuncId::CommSplit => "MPI_Comm_split",
            FuncId::CommCreate => "MPI_Comm_create",
            FuncId::CommIdup => "MPI_Comm_idup",
            FuncId::CommFree => "MPI_Comm_free",
            FuncId::CommGroup => "MPI_Comm_group",
            FuncId::CommSetName => "MPI_Comm_set_name",
            FuncId::IntercommCreate => "MPI_Intercomm_create",
            FuncId::IntercommMerge => "MPI_Intercomm_merge",
            FuncId::GroupIncl => "MPI_Group_incl",
            FuncId::GroupFree => "MPI_Group_free",
            FuncId::Send => "MPI_Send",
            FuncId::Bsend => "MPI_Bsend",
            FuncId::Ssend => "MPI_Ssend",
            FuncId::Rsend => "MPI_Rsend",
            FuncId::Recv => "MPI_Recv",
            FuncId::Isend => "MPI_Isend",
            FuncId::Ibsend => "MPI_Ibsend",
            FuncId::Issend => "MPI_Issend",
            FuncId::Irsend => "MPI_Irsend",
            FuncId::Irecv => "MPI_Irecv",
            FuncId::Sendrecv => "MPI_Sendrecv",
            FuncId::Probe => "MPI_Probe",
            FuncId::Iprobe => "MPI_Iprobe",
            FuncId::Wait => "MPI_Wait",
            FuncId::Waitall => "MPI_Waitall",
            FuncId::Waitany => "MPI_Waitany",
            FuncId::Waitsome => "MPI_Waitsome",
            FuncId::Test => "MPI_Test",
            FuncId::Testall => "MPI_Testall",
            FuncId::Testany => "MPI_Testany",
            FuncId::Testsome => "MPI_Testsome",
            FuncId::RequestFree => "MPI_Request_free",
            FuncId::Barrier => "MPI_Barrier",
            FuncId::Bcast => "MPI_Bcast",
            FuncId::Reduce => "MPI_Reduce",
            FuncId::Allreduce => "MPI_Allreduce",
            FuncId::Gather => "MPI_Gather",
            FuncId::Gatherv => "MPI_Gatherv",
            FuncId::Scatter => "MPI_Scatter",
            FuncId::Scatterv => "MPI_Scatterv",
            FuncId::Allgather => "MPI_Allgather",
            FuncId::Allgatherv => "MPI_Allgatherv",
            FuncId::Alltoall => "MPI_Alltoall",
            FuncId::Alltoallv => "MPI_Alltoallv",
            FuncId::ReduceScatterBlock => "MPI_Reduce_scatter_block",
            FuncId::Scan => "MPI_Scan",
            FuncId::Exscan => "MPI_Exscan",
            FuncId::Ibarrier => "MPI_Ibarrier",
            FuncId::Iallreduce => "MPI_Iallreduce",
            FuncId::TypeContiguous => "MPI_Type_contiguous",
            FuncId::TypeVector => "MPI_Type_vector",
            FuncId::TypeIndexed => "MPI_Type_indexed",
            FuncId::TypeCreateStruct => "MPI_Type_create_struct",
            FuncId::TypeCommit => "MPI_Type_commit",
            FuncId::TypeFree => "MPI_Type_free",
            FuncId::SendInit => "MPI_Send_init",
            FuncId::BsendInit => "MPI_Bsend_init",
            FuncId::SsendInit => "MPI_Ssend_init",
            FuncId::RsendInit => "MPI_Rsend_init",
            FuncId::RecvInit => "MPI_Recv_init",
            FuncId::Start => "MPI_Start",
            FuncId::Startall => "MPI_Startall",
            FuncId::CartCreate => "MPI_Cart_create",
            FuncId::CartRank => "MPI_Cart_rank",
            FuncId::CartCoords => "MPI_Cart_coords",
            FuncId::CartShift => "MPI_Cart_shift",
            FuncId::DimsCreate => "MPI_Dims_create",
            FuncId::SendrecvReplace => "MPI_Sendrecv_replace",
        }
    }

    /// Numeric id (stable, dense) used in call signatures.
    #[inline]
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Inverse of [`FuncId::id`].
    pub fn from_id(id: u16) -> Option<FuncId> {
        FuncId::ALL.get(id as usize).copied().filter(|f| f.id() == id)
    }

    /// Is this one of the `MPI_Test*` calls that ScalaTrace and Cypress do
    /// not record (the paper's motivating example)?
    pub fn is_test_family(self) -> bool {
        matches!(self, FuncId::Test | FuncId::Testall | FuncId::Testany | FuncId::Testsome)
    }
}

/// Tools whose coverage Table 1 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolSupport {
    Pilgrim,
    ScalaTrace,
    Cypress,
}

/// Coarse function families used for coverage classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Env,
    P2p,
    P2pNb,
    Persistent,
    Partitioned,
    WaitTest,
    Probe,
    Coll,
    CollNb,
    CollPersistent,
    CommGroup,
    Topo,
    Datatype,
    Rma,
    Io,
    InfoErr,
    Attr,
    ToolIface,
    Session,
}

/// The MPI-4.0 function inventory with family classification.
pub struct FunctionRegistry {
    entries: Vec<(&'static str, Family)>,
}

impl FunctionRegistry {
    /// Builds the inventory. The list is generated from the MPI-4.0
    /// function index by family, mirroring how Pilgrim generates its
    /// wrappers from the standard documents (§3.1).
    pub fn mpi40() -> Self {
        let mut entries: Vec<(&'static str, Family)> = Vec::with_capacity(460);
        let mut add = |names: &[&'static str], fam: Family| {
            // Used via closure captured below.
            for n in names {
                entries.push((n, fam));
            }
        };
        add(ENV_FUNCS, Family::Env);
        add(P2P_FUNCS, Family::P2p);
        add(P2P_NB_FUNCS, Family::P2pNb);
        add(PERSISTENT_FUNCS, Family::Persistent);
        add(PARTITIONED_FUNCS, Family::Partitioned);
        add(WAIT_TEST_FUNCS, Family::WaitTest);
        add(PROBE_FUNCS, Family::Probe);
        add(COLL_FUNCS, Family::Coll);
        add(COLL_NB_FUNCS, Family::CollNb);
        add(COLL_PERSISTENT_FUNCS, Family::CollPersistent);
        add(COMM_GROUP_FUNCS, Family::CommGroup);
        add(TOPO_FUNCS, Family::Topo);
        add(DATATYPE_FUNCS, Family::Datatype);
        add(RMA_FUNCS, Family::Rma);
        add(IO_FUNCS, Family::Io);
        add(INFO_ERR_FUNCS, Family::InfoErr);
        add(ATTR_FUNCS, Family::Attr);
        add(TOOL_FUNCS, Family::ToolIface);
        add(SESSION_FUNCS, Family::Session);
        FunctionRegistry { entries }
    }

    /// Total function count (paper reports 446 for MPI 4.0 RC).
    pub fn total(&self) -> usize {
        self.entries.len()
    }

    /// Whether `tool` records calls to `name`.
    pub fn supports(&self, tool: ToolSupport, name: &str) -> bool {
        let fam = match self.entries.iter().find(|(n, _)| *n == name) {
            Some(&(_, f)) => f,
            None => return false,
        };
        Self::family_supported(tool, fam, name)
    }

    fn family_supported(tool: ToolSupport, fam: Family, name: &str) -> bool {
        match tool {
            // Pilgrim's wrappers are generated from the standard: complete.
            ToolSupport::Pilgrim => true,
            // ScalaTrace records communication + core management, but no
            // Test calls, no partitioned/RMA/IO/tool interfaces.
            ToolSupport::ScalaTrace => match fam {
                Family::Env => SCALATRACE_ENV.contains(&name),
                Family::P2p => SCALATRACE_P2P.contains(&name),
                Family::P2pNb => SCALATRACE_P2P_NB.contains(&name),
                Family::Persistent => true,
                Family::WaitTest => name.starts_with("MPI_Wait"),
                Family::Probe => name == "MPI_Probe" || name == "MPI_Iprobe",
                Family::Coll | Family::CollNb => true,
                Family::CommGroup => !SCALATRACE_COMM_EXCLUDE.contains(&name),
                Family::Topo => name.starts_with("MPI_Cart") || name == "MPI_Dims_create",
                Family::Datatype => DATATYPE_CORE.contains(&name),
                _ => false,
            },
            // Cypress records the basic p2p/collective core only.
            ToolSupport::Cypress => CYPRESS_FUNCS.contains(&name),
        }
    }

    /// Number of functions `tool` records.
    pub fn supported_count(&self, tool: ToolSupport) -> usize {
        self.entries.iter().filter(|(n, f)| Self::family_supported(tool, *f, n)).count()
    }

    /// Iterates `(name, family)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, Family)> + '_ {
        self.entries.iter().copied()
    }
}

const ENV_FUNCS: &[&str] = &[
    "MPI_Init",
    "MPI_Init_thread",
    "MPI_Initialized",
    "MPI_Finalize",
    "MPI_Finalized",
    "MPI_Abort",
    "MPI_Get_processor_name",
    "MPI_Get_version",
    "MPI_Get_library_version",
    "MPI_Query_thread",
    "MPI_Is_thread_main",
    "MPI_Pcontrol",
    "MPI_Aint_add",
    "MPI_Aint_diff",
    "MPI_Get_hw_resource_info",
];

const P2P_FUNCS: &[&str] = &[
    "MPI_Send",
    "MPI_Bsend",
    "MPI_Ssend",
    "MPI_Rsend",
    "MPI_Recv",
    "MPI_Sendrecv",
    "MPI_Sendrecv_replace",
    "MPI_Buffer_attach",
    "MPI_Buffer_detach",
    "MPI_Buffer_flush",
    "MPI_Buffer_iflush",
    "MPI_Comm_attach_buffer",
    "MPI_Comm_detach_buffer",
    "MPI_Session_attach_buffer",
    "MPI_Session_detach_buffer",
    "MPI_Get_count",
    "MPI_Get_elements",
    "MPI_Get_elements_x",
    "MPI_Status_set_elements",
    "MPI_Status_set_elements_x",
    "MPI_Status_set_cancelled",
    "MPI_Status_set_error",
    "MPI_Status_set_source",
    "MPI_Status_set_tag",
];

const P2P_NB_FUNCS: &[&str] = &[
    "MPI_Isend",
    "MPI_Ibsend",
    "MPI_Issend",
    "MPI_Irsend",
    "MPI_Irecv",
    "MPI_Isendrecv",
    "MPI_Isendrecv_replace",
    "MPI_Cancel",
    "MPI_Request_free",
    "MPI_Request_get_status",
    "MPI_Request_get_status_all",
    "MPI_Request_get_status_any",
    "MPI_Request_get_status_some",
    "MPI_Grequest_start",
    "MPI_Grequest_complete",
];

const PERSISTENT_FUNCS: &[&str] = &[
    "MPI_Send_init",
    "MPI_Bsend_init",
    "MPI_Ssend_init",
    "MPI_Rsend_init",
    "MPI_Recv_init",
    "MPI_Start",
    "MPI_Startall",
];

const PARTITIONED_FUNCS: &[&str] = &[
    "MPI_Psend_init",
    "MPI_Precv_init",
    "MPI_Pready",
    "MPI_Pready_range",
    "MPI_Pready_list",
    "MPI_Parrived",
];

const WAIT_TEST_FUNCS: &[&str] = &[
    "MPI_Wait",
    "MPI_Waitall",
    "MPI_Waitany",
    "MPI_Waitsome",
    "MPI_Test",
    "MPI_Testall",
    "MPI_Testany",
    "MPI_Testsome",
    "MPI_Test_cancelled",
];

const PROBE_FUNCS: &[&str] =
    &["MPI_Probe", "MPI_Iprobe", "MPI_Mprobe", "MPI_Improbe", "MPI_Mrecv", "MPI_Imrecv"];

const COLL_FUNCS: &[&str] = &[
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Gather",
    "MPI_Gatherv",
    "MPI_Scatter",
    "MPI_Scatterv",
    "MPI_Allgather",
    "MPI_Allgatherv",
    "MPI_Alltoall",
    "MPI_Alltoallv",
    "MPI_Alltoallw",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Reduce_scatter",
    "MPI_Reduce_scatter_block",
    "MPI_Scan",
    "MPI_Exscan",
    "MPI_Reduce_local",
    "MPI_Op_create",
    "MPI_Op_free",
    "MPI_Op_commutative",
];

const COLL_NB_FUNCS: &[&str] = &[
    "MPI_Ibarrier",
    "MPI_Ibcast",
    "MPI_Igather",
    "MPI_Igatherv",
    "MPI_Iscatter",
    "MPI_Iscatterv",
    "MPI_Iallgather",
    "MPI_Iallgatherv",
    "MPI_Ialltoall",
    "MPI_Ialltoallv",
    "MPI_Ialltoallw",
    "MPI_Ireduce",
    "MPI_Iallreduce",
    "MPI_Ireduce_scatter",
    "MPI_Ireduce_scatter_block",
    "MPI_Iscan",
    "MPI_Iexscan",
];

const COLL_PERSISTENT_FUNCS: &[&str] = &[
    "MPI_Barrier_init",
    "MPI_Bcast_init",
    "MPI_Gather_init",
    "MPI_Gatherv_init",
    "MPI_Scatter_init",
    "MPI_Scatterv_init",
    "MPI_Allgather_init",
    "MPI_Allgatherv_init",
    "MPI_Alltoall_init",
    "MPI_Alltoallv_init",
    "MPI_Alltoallw_init",
    "MPI_Reduce_init",
    "MPI_Allreduce_init",
    "MPI_Reduce_scatter_init",
    "MPI_Reduce_scatter_block_init",
    "MPI_Scan_init",
    "MPI_Exscan_init",
];

const COMM_GROUP_FUNCS: &[&str] = &[
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Comm_dup",
    "MPI_Comm_dup_with_info",
    "MPI_Comm_idup",
    "MPI_Comm_idup_with_info",
    "MPI_Comm_split",
    "MPI_Comm_split_type",
    "MPI_Comm_create",
    "MPI_Comm_create_group",
    "MPI_Comm_create_from_group",
    "MPI_Comm_free",
    "MPI_Comm_group",
    "MPI_Comm_compare",
    "MPI_Comm_test_inter",
    "MPI_Comm_remote_size",
    "MPI_Comm_remote_group",
    "MPI_Comm_set_name",
    "MPI_Comm_get_name",
    "MPI_Comm_set_info",
    "MPI_Comm_get_info",
    "MPI_Intercomm_create",
    "MPI_Intercomm_create_from_groups",
    "MPI_Intercomm_merge",
    "MPI_Group_size",
    "MPI_Group_rank",
    "MPI_Group_translate_ranks",
    "MPI_Group_compare",
    "MPI_Group_union",
    "MPI_Group_intersection",
    "MPI_Group_difference",
    "MPI_Group_incl",
    "MPI_Group_excl",
    "MPI_Group_range_incl",
    "MPI_Group_range_excl",
    "MPI_Group_free",
    "MPI_Group_from_session_pset",
    "MPI_Comm_spawn",
    "MPI_Comm_spawn_multiple",
    "MPI_Comm_get_parent",
    "MPI_Comm_accept",
    "MPI_Comm_connect",
    "MPI_Comm_disconnect",
    "MPI_Comm_join",
    "MPI_Open_port",
    "MPI_Close_port",
    "MPI_Publish_name",
    "MPI_Unpublish_name",
    "MPI_Lookup_name",
];

const TOPO_FUNCS: &[&str] = &[
    "MPI_Cart_create",
    "MPI_Cart_get",
    "MPI_Cart_rank",
    "MPI_Cart_coords",
    "MPI_Cart_shift",
    "MPI_Cart_sub",
    "MPI_Cart_map",
    "MPI_Cartdim_get",
    "MPI_Dims_create",
    "MPI_Graph_create",
    "MPI_Graph_get",
    "MPI_Graph_map",
    "MPI_Graph_neighbors",
    "MPI_Graph_neighbors_count",
    "MPI_Graphdims_get",
    "MPI_Topo_test",
    "MPI_Dist_graph_create",
    "MPI_Dist_graph_create_adjacent",
    "MPI_Dist_graph_neighbors",
    "MPI_Dist_graph_neighbors_count",
    "MPI_Neighbor_allgather",
    "MPI_Neighbor_allgatherv",
    "MPI_Neighbor_alltoall",
    "MPI_Neighbor_alltoallv",
    "MPI_Neighbor_alltoallw",
    "MPI_Ineighbor_allgather",
    "MPI_Ineighbor_allgatherv",
    "MPI_Ineighbor_alltoall",
    "MPI_Ineighbor_alltoallv",
    "MPI_Ineighbor_alltoallw",
    "MPI_Neighbor_allgather_init",
    "MPI_Neighbor_allgatherv_init",
    "MPI_Neighbor_alltoall_init",
    "MPI_Neighbor_alltoallv_init",
    "MPI_Neighbor_alltoallw_init",
];

const DATATYPE_FUNCS: &[&str] = &[
    "MPI_Type_contiguous",
    "MPI_Type_vector",
    "MPI_Type_create_hvector",
    "MPI_Type_indexed",
    "MPI_Type_create_hindexed",
    "MPI_Type_create_indexed_block",
    "MPI_Type_create_hindexed_block",
    "MPI_Type_create_struct",
    "MPI_Type_create_subarray",
    "MPI_Type_create_darray",
    "MPI_Type_create_resized",
    "MPI_Type_commit",
    "MPI_Type_free",
    "MPI_Type_dup",
    "MPI_Type_size",
    "MPI_Type_size_x",
    "MPI_Type_get_extent",
    "MPI_Type_get_extent_x",
    "MPI_Type_get_true_extent",
    "MPI_Type_get_true_extent_x",
    "MPI_Type_get_envelope",
    "MPI_Type_get_contents",
    "MPI_Type_get_name",
    "MPI_Type_set_name",
    "MPI_Type_match_size",
    "MPI_Type_create_f90_integer",
    "MPI_Type_create_f90_real",
    "MPI_Type_create_f90_complex",
    "MPI_Pack",
    "MPI_Unpack",
    "MPI_Pack_size",
    "MPI_Pack_external",
    "MPI_Unpack_external",
    "MPI_Pack_external_size",
    "MPI_Register_datarep",
];

const DATATYPE_CORE: &[&str] = &[
    "MPI_Type_contiguous",
    "MPI_Type_vector",
    "MPI_Type_indexed",
    "MPI_Type_create_struct",
    "MPI_Type_commit",
    "MPI_Type_free",
    "MPI_Type_size",
    "MPI_Pack",
    "MPI_Unpack",
];

const RMA_FUNCS: &[&str] = &[
    "MPI_Win_create",
    "MPI_Win_allocate",
    "MPI_Win_allocate_shared",
    "MPI_Win_create_dynamic",
    "MPI_Win_attach",
    "MPI_Win_detach",
    "MPI_Win_free",
    "MPI_Win_get_group",
    "MPI_Win_set_info",
    "MPI_Win_get_info",
    "MPI_Win_set_name",
    "MPI_Win_get_name",
    "MPI_Win_fence",
    "MPI_Win_start",
    "MPI_Win_complete",
    "MPI_Win_post",
    "MPI_Win_wait",
    "MPI_Win_test",
    "MPI_Win_lock",
    "MPI_Win_lock_all",
    "MPI_Win_unlock",
    "MPI_Win_unlock_all",
    "MPI_Win_flush",
    "MPI_Win_flush_all",
    "MPI_Win_flush_local",
    "MPI_Win_flush_local_all",
    "MPI_Win_sync",
    "MPI_Win_shared_query",
    "MPI_Put",
    "MPI_Get",
    "MPI_Accumulate",
    "MPI_Get_accumulate",
    "MPI_Fetch_and_op",
    "MPI_Compare_and_swap",
    "MPI_Rput",
    "MPI_Rget",
    "MPI_Raccumulate",
    "MPI_Rget_accumulate",
    "MPI_Win_create_errhandler",
    "MPI_Win_set_errhandler",
    "MPI_Win_get_errhandler",
    "MPI_Win_call_errhandler",
];

const IO_FUNCS: &[&str] = &[
    "MPI_File_open",
    "MPI_File_close",
    "MPI_File_delete",
    "MPI_File_set_size",
    "MPI_File_preallocate",
    "MPI_File_get_size",
    "MPI_File_get_group",
    "MPI_File_get_amode",
    "MPI_File_set_info",
    "MPI_File_get_info",
    "MPI_File_set_view",
    "MPI_File_get_view",
    "MPI_File_read_at",
    "MPI_File_read_at_all",
    "MPI_File_write_at",
    "MPI_File_write_at_all",
    "MPI_File_iread_at",
    "MPI_File_iwrite_at",
    "MPI_File_iread_at_all",
    "MPI_File_iwrite_at_all",
    "MPI_File_read",
    "MPI_File_read_all",
    "MPI_File_write",
    "MPI_File_write_all",
    "MPI_File_iread",
    "MPI_File_iwrite",
    "MPI_File_iread_all",
    "MPI_File_iwrite_all",
    "MPI_File_seek",
    "MPI_File_get_position",
    "MPI_File_get_byte_offset",
    "MPI_File_read_shared",
    "MPI_File_write_shared",
    "MPI_File_iread_shared",
    "MPI_File_iwrite_shared",
    "MPI_File_read_ordered",
    "MPI_File_write_ordered",
    "MPI_File_seek_shared",
    "MPI_File_get_position_shared",
    "MPI_File_read_at_all_begin",
    "MPI_File_read_at_all_end",
    "MPI_File_write_at_all_begin",
    "MPI_File_write_at_all_end",
    "MPI_File_read_all_begin",
    "MPI_File_read_all_end",
    "MPI_File_write_all_begin",
    "MPI_File_write_all_end",
    "MPI_File_read_ordered_begin",
    "MPI_File_read_ordered_end",
    "MPI_File_write_ordered_begin",
    "MPI_File_write_ordered_end",
    "MPI_File_get_type_extent",
    "MPI_File_set_atomicity",
    "MPI_File_get_atomicity",
    "MPI_File_sync",
    "MPI_File_create_errhandler",
    "MPI_File_set_errhandler",
    "MPI_File_get_errhandler",
    "MPI_File_call_errhandler",
];

const INFO_ERR_FUNCS: &[&str] = &[
    "MPI_Info_create",
    "MPI_Info_create_env",
    "MPI_Info_delete",
    "MPI_Info_dup",
    "MPI_Info_free",
    "MPI_Info_get_nkeys",
    "MPI_Info_get_nthkey",
    "MPI_Info_get_string",
    "MPI_Info_set",
    "MPI_Info_get",
    "MPI_Info_get_valuelen",
    "MPI_Errhandler_create",
    "MPI_Errhandler_free",
    "MPI_Errhandler_get",
    "MPI_Errhandler_set",
    "MPI_Error_class",
    "MPI_Error_string",
    "MPI_Add_error_class",
    "MPI_Add_error_code",
    "MPI_Add_error_string",
    "MPI_Remove_error_class",
    "MPI_Remove_error_code",
    "MPI_Remove_error_string",
    "MPI_Comm_create_errhandler",
    "MPI_Comm_set_errhandler",
    "MPI_Comm_get_errhandler",
    "MPI_Comm_call_errhandler",
];

const ATTR_FUNCS: &[&str] = &[
    "MPI_Comm_create_keyval",
    "MPI_Comm_free_keyval",
    "MPI_Comm_set_attr",
    "MPI_Comm_get_attr",
    "MPI_Comm_delete_attr",
    "MPI_Type_create_keyval",
    "MPI_Type_free_keyval",
    "MPI_Type_set_attr",
    "MPI_Type_get_attr",
    "MPI_Type_delete_attr",
    "MPI_Win_create_keyval",
    "MPI_Win_free_keyval",
    "MPI_Win_set_attr",
    "MPI_Win_get_attr",
    "MPI_Win_delete_attr",
    "MPI_Keyval_create",
    "MPI_Keyval_free",
    "MPI_Attr_put",
    "MPI_Attr_get",
    "MPI_Attr_delete",
];

const TOOL_FUNCS: &[&str] = &[
    "MPI_T_init_thread",
    "MPI_T_finalize",
    "MPI_T_cvar_get_num",
    "MPI_T_cvar_get_info",
    "MPI_T_cvar_get_index",
    "MPI_T_cvar_handle_alloc",
    "MPI_T_cvar_handle_free",
    "MPI_T_cvar_read",
    "MPI_T_cvar_write",
    "MPI_T_pvar_get_num",
    "MPI_T_pvar_get_info",
    "MPI_T_pvar_get_index",
    "MPI_T_pvar_session_create",
    "MPI_T_pvar_session_free",
    "MPI_T_pvar_handle_alloc",
    "MPI_T_pvar_handle_free",
    "MPI_T_pvar_start",
    "MPI_T_pvar_stop",
    "MPI_T_pvar_read",
    "MPI_T_pvar_write",
    "MPI_T_pvar_reset",
    "MPI_T_pvar_readreset",
    "MPI_T_category_get_num",
    "MPI_T_category_get_info",
    "MPI_T_category_get_index",
    "MPI_T_category_get_cvars",
    "MPI_T_category_get_pvars",
    "MPI_T_category_get_categories",
    "MPI_T_category_changed",
    "MPI_T_category_get_num_events",
    "MPI_T_category_get_events",
    "MPI_T_enum_get_info",
    "MPI_T_enum_get_item",
    "MPI_T_source_get_num",
    "MPI_T_source_get_info",
    "MPI_T_source_get_timestamp",
    "MPI_T_event_get_num",
    "MPI_T_event_get_info",
    "MPI_T_event_get_index",
    "MPI_T_event_handle_alloc",
    "MPI_T_event_handle_set_info",
    "MPI_T_event_handle_get_info",
    "MPI_T_event_handle_free",
    "MPI_T_event_register_callback",
    "MPI_T_event_callback_set_info",
    "MPI_T_event_callback_get_info",
    "MPI_T_event_set_dropped_handler",
    "MPI_T_event_read",
    "MPI_T_event_copy",
    "MPI_T_event_get_timestamp",
    "MPI_T_event_get_source",
];

const SESSION_FUNCS: &[&str] = &[
    "MPI_Session_init",
    "MPI_Session_finalize",
    "MPI_Session_get_num_psets",
    "MPI_Session_get_nth_pset",
    "MPI_Session_get_info",
    "MPI_Session_get_pset_info",
    "MPI_Session_create_errhandler",
    "MPI_Session_set_errhandler",
    "MPI_Session_get_errhandler",
    "MPI_Session_call_errhandler",
];

/// Environment functions ScalaTrace wraps.
const SCALATRACE_ENV: &[&str] = &[
    "MPI_Init",
    "MPI_Init_thread",
    "MPI_Initialized",
    "MPI_Finalize",
    "MPI_Finalized",
    "MPI_Abort",
];

/// Blocking p2p functions ScalaTrace wraps.
const SCALATRACE_P2P: &[&str] = &[
    "MPI_Send",
    "MPI_Bsend",
    "MPI_Ssend",
    "MPI_Rsend",
    "MPI_Recv",
    "MPI_Sendrecv",
    "MPI_Sendrecv_replace",
    "MPI_Buffer_attach",
    "MPI_Buffer_detach",
    "MPI_Get_count",
    "MPI_Get_elements",
];

/// Non-blocking p2p functions ScalaTrace wraps.
const SCALATRACE_P2P_NB: &[&str] = &[
    "MPI_Isend",
    "MPI_Ibsend",
    "MPI_Issend",
    "MPI_Irsend",
    "MPI_Irecv",
    "MPI_Cancel",
    "MPI_Request_free",
    "MPI_Request_get_status",
];

/// Dynamic-process / name-service functions ScalaTrace does not wrap.
const SCALATRACE_COMM_EXCLUDE: &[&str] = &[
    "MPI_Comm_spawn",
    "MPI_Comm_spawn_multiple",
    "MPI_Comm_get_parent",
    "MPI_Comm_accept",
    "MPI_Comm_connect",
    "MPI_Comm_disconnect",
    "MPI_Comm_join",
    "MPI_Open_port",
    "MPI_Close_port",
    "MPI_Publish_name",
    "MPI_Unpublish_name",
    "MPI_Lookup_name",
    "MPI_Comm_create_from_group",
    "MPI_Group_from_session_pset",
    "MPI_Intercomm_create_from_groups",
    "MPI_Comm_idup_with_info",
];

/// Functions Cypress records (≈56, per Table 1 and the Cypress paper's
/// focus on blocking/non-blocking p2p + common collectives).
const CYPRESS_FUNCS: &[&str] = &[
    "MPI_Init",
    "MPI_Init_thread",
    "MPI_Finalize",
    "MPI_Abort",
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Comm_dup",
    "MPI_Comm_split",
    "MPI_Comm_create",
    "MPI_Comm_free",
    "MPI_Comm_group",
    "MPI_Group_incl",
    "MPI_Group_excl",
    "MPI_Group_free",
    "MPI_Send",
    "MPI_Bsend",
    "MPI_Ssend",
    "MPI_Rsend",
    "MPI_Recv",
    "MPI_Sendrecv",
    "MPI_Isend",
    "MPI_Ibsend",
    "MPI_Issend",
    "MPI_Irsend",
    "MPI_Irecv",
    "MPI_Waitall",
    "MPI_Waitany",
    "MPI_Waitsome",
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Gather",
    "MPI_Gatherv",
    "MPI_Scatter",
    "MPI_Scatterv",
    "MPI_Allgather",
    "MPI_Allgatherv",
    "MPI_Alltoall",
    "MPI_Alltoallv",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Reduce_scatter",
    "MPI_Scan",
    "MPI_Type_contiguous",
    "MPI_Type_vector",
    "MPI_Type_indexed",
    "MPI_Type_commit",
    "MPI_Type_free",
    "MPI_Type_size",
    "MPI_Pack",
    "MPI_Unpack",
    "MPI_Cart_create",
    "MPI_Cart_rank",
    "MPI_Cart_coords",
    "MPI_Cart_shift",
    "MPI_Dims_create",
    "MPI_Probe",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_no_duplicates() {
        let reg = FunctionRegistry::mpi40();
        let mut seen = HashSet::new();
        for (name, _) in reg.entries() {
            assert!(seen.insert(name), "duplicate registry entry {name}");
        }
    }

    #[test]
    fn registry_size_matches_paper_scale() {
        let reg = FunctionRegistry::mpi40();
        // The paper counts 446 C functions in MPI 4.0 RC (excluding
        // MPI_Wtime/MPI_Wtick). Our generated inventory must be in that
        // ballpark and definitely complete for Pilgrim.
        assert!((400..=470).contains(&reg.total()), "registry has {} functions", reg.total());
        assert_eq!(reg.supported_count(ToolSupport::Pilgrim), reg.total());
    }

    #[test]
    fn tool_coverage_matches_paper_ordering() {
        let reg = FunctionRegistry::mpi40();
        let p = reg.supported_count(ToolSupport::Pilgrim);
        let s = reg.supported_count(ToolSupport::ScalaTrace);
        let c = reg.supported_count(ToolSupport::Cypress);
        assert!(c < s && s < p, "coverage order must be Cypress < ScalaTrace < Pilgrim");
        assert!((100..=170).contains(&s), "ScalaTrace coverage ≈125, got {s}");
        assert!((40..=70).contains(&c), "Cypress coverage ≈56, got {c}");
    }

    #[test]
    fn scalatrace_skips_test_family() {
        let reg = FunctionRegistry::mpi40();
        assert!(!reg.supports(ToolSupport::ScalaTrace, "MPI_Testsome"));
        assert!(reg.supports(ToolSupport::ScalaTrace, "MPI_Waitall"));
        assert!(!reg.supports(ToolSupport::Cypress, "MPI_Testsome"));
        assert!(reg.supports(ToolSupport::Pilgrim, "MPI_Testsome"));
    }

    #[test]
    fn every_implemented_func_is_in_registry() {
        let reg = FunctionRegistry::mpi40();
        let names: HashSet<&str> = reg.entries().map(|(n, _)| n).collect();
        for &f in FuncId::ALL {
            assert!(names.contains(f.name()), "{} missing from registry", f.name());
        }
    }

    #[test]
    fn func_ids_are_dense_and_unique() {
        let mut seen = HashSet::new();
        for &f in FuncId::ALL {
            assert!(seen.insert(f.id()));
        }
        assert_eq!(seen.len(), FuncId::ALL.len());
    }

    #[test]
    fn test_family_flag() {
        assert!(FuncId::Testsome.is_test_family());
        assert!(!FuncId::Waitsome.is_test_family());
    }
}
