//! Simulated per-rank heap.
//!
//! Workloads allocate communication buffers from this heap and pass the
//! resulting addresses to MPI calls, giving tracers the same observable
//! they get on a real system by interposing `malloc`/`free`: a stream of
//! (address, size) allocation events plus raw pointer arguments that must
//! be resolved to the segment containing them (paper §3.3.3).
//!
//! Addresses are virtual offsets into one growable byte arena. A free-list
//! allocator reuses freed segments (first fit), so address reuse patterns —
//! the reason Pilgrim needs live segment tracking rather than a static map
//! — occur just as they do under a real allocator.

/// A simulated heap address.
pub type Addr = u64;

/// Base address of the simulated heap; nonzero so that address arithmetic
/// bugs surface as obvious mismatches rather than zero-offsets.
pub const HEAP_BASE: Addr = 0x1000_0000;

#[derive(Debug, Clone, Copy)]
struct FreeBlock {
    addr: Addr,
    size: u64,
}

/// Per-rank simulated heap with real backing storage.
#[derive(Debug, Default)]
pub struct SimHeap {
    data: Vec<u8>,
    free: Vec<FreeBlock>,
    live: Vec<(Addr, u64)>,
}

impl SimHeap {
    pub fn new() -> Self {
        SimHeap::default()
    }

    /// Allocates `size` bytes (1 minimum), returning the segment address.
    pub fn malloc(&mut self, size: u64) -> Addr {
        let size = size.max(1);
        // First-fit over the free list.
        if let Some(i) = self.free.iter().position(|b| b.size >= size) {
            let block = self.free[i];
            if block.size == size {
                self.free.swap_remove(i);
            } else {
                self.free[i] = FreeBlock { addr: block.addr + size, size: block.size - size };
            }
            self.live.push((block.addr, size));
            return block.addr;
        }
        let addr = HEAP_BASE + self.data.len() as u64;
        self.data.resize(self.data.len() + size as usize, 0);
        self.live.push((addr, size));
        addr
    }

    /// `calloc`-style zeroing allocation.
    pub fn calloc(&mut self, count: u64, elem: u64) -> Addr {
        let size = count * elem;
        let addr = self.malloc(size);
        let off = self.offset(addr);
        self.data[off..off + size.max(1) as usize].fill(0);
        addr
    }

    /// Frees a segment by its exact start address. Returns the freed size.
    pub fn free(&mut self, addr: Addr) -> u64 {
        let i = self
            .live
            .iter()
            .position(|&(a, _)| a == addr)
            .unwrap_or_else(|| panic!("free of unallocated address {addr:#x}"));
        let (_, size) = self.live.swap_remove(i);
        self.free.push(FreeBlock { addr, size });
        size
    }

    /// Number of live segments.
    pub fn live_segments(&self) -> usize {
        self.live.len()
    }

    fn offset(&self, addr: Addr) -> usize {
        assert!(addr >= HEAP_BASE, "address {addr:#x} below heap base");
        let off = (addr - HEAP_BASE) as usize;
        assert!(off <= self.data.len(), "address {addr:#x} beyond heap end");
        off
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&self, addr: Addr, len: u64) -> &[u8] {
        let off = self.offset(addr);
        &self.data[off..off + len as usize]
    }

    /// Writes bytes starting at `addr`.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        let off = self.offset(addr);
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Gathers a non-contiguous element layout (`blocks` are (offset, len)
    /// pairs relative to `addr`) repeated `count` times every `extent`
    /// bytes, into a packed buffer — the pack half of datatype handling.
    pub fn pack(&self, addr: Addr, blocks: &[(i64, u64)], extent: u64, count: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..count {
            let base = addr as i64 + (i * extent) as i64;
            for &(off, len) in blocks {
                out.extend_from_slice(self.read((base + off) as Addr, len));
            }
        }
        out
    }

    /// Scatters a packed buffer back into the element layout (unpack half).
    pub fn unpack(
        &mut self,
        addr: Addr,
        blocks: &[(i64, u64)],
        extent: u64,
        count: u64,
        data: &[u8],
    ) {
        let mut pos = 0usize;
        for i in 0..count {
            let base = addr as i64 + (i * extent) as i64;
            for &(off, len) in blocks {
                let take = (len as usize).min(data.len() - pos);
                let chunk = &data[pos..pos + take];
                self.write((base + off) as Addr, chunk);
                pos += take;
                if pos >= data.len() {
                    return;
                }
            }
        }
    }

    /// Convenience: write a `u64` array at `addr`.
    pub fn write_u64s(&mut self, addr: Addr, vals: &[u64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(addr, &bytes);
    }

    /// Convenience: read a `u64` array from `addr`.
    pub fn read_u64s(&self, addr: Addr, count: usize) -> Vec<u64> {
        let bytes = self.read(addr, (count * 8) as u64);
        bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_returns_distinct_addresses() {
        let mut h = SimHeap::new();
        let a = h.malloc(100);
        let b = h.malloc(100);
        assert_ne!(a, b);
        assert!(a >= HEAP_BASE);
    }

    #[test]
    fn free_list_reuses_addresses() {
        let mut h = SimHeap::new();
        let a = h.malloc(64);
        h.free(a);
        let b = h.malloc(64);
        assert_eq!(a, b, "first-fit should reuse the freed block");
    }

    #[test]
    fn free_splits_blocks() {
        let mut h = SimHeap::new();
        let a = h.malloc(128);
        h.free(a);
        let b = h.malloc(32);
        let c = h.malloc(32);
        assert_eq!(b, a);
        assert_eq!(c, a + 32);
    }

    #[test]
    #[should_panic(expected = "free of unallocated")]
    fn double_free_panics() {
        let mut h = SimHeap::new();
        let a = h.malloc(8);
        h.free(a);
        h.free(a);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut h = SimHeap::new();
        let a = h.malloc(16);
        h.write(a, &[1, 2, 3, 4]);
        assert_eq!(h.read(a, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn u64_helpers_roundtrip() {
        let mut h = SimHeap::new();
        let a = h.malloc(32);
        h.write_u64s(a, &[7, 8, 9, u64::MAX]);
        assert_eq!(h.read_u64s(a, 4), vec![7, 8, 9, u64::MAX]);
    }

    #[test]
    fn calloc_zeroes_reused_memory() {
        let mut h = SimHeap::new();
        let a = h.malloc(8);
        h.write(a, &[0xff; 8]);
        h.free(a);
        let b = h.calloc(2, 4);
        assert_eq!(b, a);
        assert_eq!(h.read(b, 8), &[0u8; 8]);
    }

    #[test]
    fn pack_unpack_strided_layout() {
        let mut h = SimHeap::new();
        let a = h.malloc(64);
        for i in 0..64u8 {
            h.write(a + i as u64, &[i]);
        }
        // Two blocks [0,2) and [4,6) per element, extent 8, 2 elements.
        let blocks = [(0i64, 2u64), (4, 2)];
        let packed = h.pack(a, &blocks, 8, 2);
        assert_eq!(packed, vec![0, 1, 4, 5, 8, 9, 12, 13]);
        let b = h.malloc(64);
        h.unpack(b, &blocks, 8, 2, &packed);
        assert_eq!(h.read(b, 2), &[0, 1]);
        assert_eq!(h.read(b + 4, 2), &[4, 5]);
        assert_eq!(h.read(b + 8, 2), &[8, 9]);
        assert_eq!(h.read(b + 12, 2), &[12, 13]);
    }

    #[test]
    fn live_segment_count_tracks() {
        let mut h = SimHeap::new();
        let a = h.malloc(4);
        let _b = h.malloc(4);
        assert_eq!(h.live_segments(), 2);
        h.free(a);
        assert_eq!(h.live_segments(), 1);
    }
}
