//! Request objects and their rank-local table.
//!
//! Raw request ids are slab indices and are therefore *reused* after
//! completion — the same behavior as pointer-valued `MPI_Request` handles
//! in real MPI libraries. This reuse, combined with nondeterministic
//! completion order, is exactly what defeats naive symbolic-id assignment
//! and motivates Pilgrim's per-signature request-id pools (paper §3.4.3).

use std::sync::Arc;

use crate::comm::CommHandle;
use crate::fabric::{CollCtx, RecvSlot};
use crate::heap::Addr;

/// Raw request id as observed by tracers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle(pub u64);

/// The null request: ignored by wait/test families.
pub const REQUEST_NULL: RequestHandle = RequestHandle(u64::MAX);

/// Non-blocking collective operations.
#[derive(Debug)]
pub enum NbOp {
    Barrier,
    /// Non-blocking allreduce: apply `op` over all packed contributions
    /// and store to `recv` (count u64 lanes).
    Allreduce {
        recv: Addr,
        lanes: usize,
        op: crate::types::ReduceOp,
    },
    /// `MPI_Comm_idup`: completion installs the duplicated communicator
    /// into the reserved handle.
    Idup {
        parent: CommHandle,
        new_handle: CommHandle,
    },
}

/// What a live request is waiting on.
#[derive(Debug)]
pub enum ReqKind {
    /// A persistent send (`MPI_Send_init` family): stores the call so
    /// `MPI_Start` can re-issue it; `active` while started and pending.
    PersistentSend {
        buf: Addr,
        count: u64,
        dtype: u32,
        dest: i32,
        tag: i32,
        comm: CommHandle,
        active: bool,
    },
    /// A persistent receive (`MPI_Recv_init`): `pending` holds the live
    /// slot and unpack layout while started.
    PersistentRecv {
        buf: Addr,
        count: u64,
        dtype: u32,
        src: i32,
        tag: i32,
        comm: CommHandle,
        #[allow(clippy::type_complexity)] // (slot, unpack blocks, extent)
        pending: Option<(Arc<RecvSlot>, Vec<(i64, u64)>, u64)>,
    },
    /// An eager non-blocking send: already complete.
    Send,
    /// A pending non-blocking receive.
    Recv { slot: Arc<RecvSlot>, buf: Addr, blocks: Vec<(i64, u64)>, extent: u64, count: u64 },
    /// A non-blocking collective.
    Coll { coll: Arc<CollCtx>, round: u64, lane_rank: usize, op: NbOp },
}

/// Rank-local request table (slab with free-list reuse).
#[derive(Debug, Default)]
pub struct RequestTable {
    slots: Vec<Option<ReqKind>>,
    free: Vec<usize>,
}

impl RequestTable {
    pub fn new() -> Self {
        RequestTable::default()
    }

    pub fn insert(&mut self, kind: ReqKind) -> RequestHandle {
        if let Some(i) = self.free.pop() {
            self.slots[i] = Some(kind);
            return RequestHandle(i as u64);
        }
        self.slots.push(Some(kind));
        RequestHandle((self.slots.len() - 1) as u64)
    }

    pub fn get(&self, h: RequestHandle) -> &ReqKind {
        self.slots
            .get(h.0 as usize)
            .and_then(|r| r.as_ref())
            .unwrap_or_else(|| panic!("use of invalid request handle {}", h.0))
    }

    /// Mutable access to a live request (persistent request state).
    pub fn get_mut(&mut self, h: RequestHandle) -> &mut ReqKind {
        self.slots
            .get_mut(h.0 as usize)
            .and_then(|r| r.as_mut())
            .unwrap_or_else(|| panic!("use of invalid request handle {}", h.0))
    }

    /// Whether this request is persistent (survives completion).
    pub fn is_persistent(&self, h: RequestHandle) -> bool {
        matches!(self.get(h), ReqKind::PersistentSend { .. } | ReqKind::PersistentRecv { .. })
    }

    /// Removes a completed request, freeing its id for reuse.
    pub fn remove(&mut self, h: RequestHandle) -> ReqKind {
        let slot = self
            .slots
            .get_mut(h.0 as usize)
            .unwrap_or_else(|| panic!("free of invalid request handle {}", h.0));
        let kind = slot.take().unwrap_or_else(|| panic!("double completion of request {}", h.0));
        self.free.push(h.0 as usize);
        kind
    }

    /// Number of live requests (used by leak checks in tests).
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_reused_after_completion() {
        let mut t = RequestTable::new();
        let a = t.insert(ReqKind::Send);
        let b = t.insert(ReqKind::Send);
        assert_ne!(a, b);
        t.remove(a);
        let c = t.insert(ReqKind::Send);
        assert_eq!(a, c, "slab ids must be reused, mimicking pointer reuse");
        assert_eq!(t.live(), 2);
    }

    #[test]
    #[should_panic(expected = "double completion")]
    fn double_completion_panics() {
        let mut t = RequestTable::new();
        let a = t.insert(ReqKind::Send);
        t.remove(a);
        t.remove(a);
    }

    #[test]
    fn null_request_is_distinct() {
        let mut t = RequestTable::new();
        let a = t.insert(ReqKind::Send);
        assert_ne!(a, REQUEST_NULL);
    }
}
