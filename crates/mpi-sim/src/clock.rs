//! Deterministic simulated clock with a latency/bandwidth cost model.
//!
//! Each rank owns a logical clock in simulated nanoseconds. MPI calls
//! advance it according to a simple cost model (base software overhead +
//! per-byte transfer cost + seeded noise), and synchronizing operations
//! (message receipt, collectives) propagate time between ranks the way
//! causality does on a real machine: a receive cannot complete before the
//! matching send plus the network latency.
//!
//! The paper's timing-compression experiments (§3.2, Fig 10) depend only on
//! durations/intervals being *similar but noisy* across loop iterations;
//! the seeded noise reproduces that regime deterministically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cost-model parameters, all in simulated nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct ClockModel {
    /// Software overhead charged to every MPI call.
    pub call_overhead: u64,
    /// One-way network latency for point-to-point messages.
    pub latency: u64,
    /// Transfer cost per byte (inverse bandwidth).
    pub per_byte_milli: u64,
    /// Maximum multiplicative noise in parts-per-thousand (0 = none).
    pub noise_ppm: u64,
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel {
            call_overhead: 500,
            latency: 1_500,
            per_byte_milli: 350, // ~0.35 ns/byte ≈ 2.8 GB/s
            noise_ppm: 80_000,   // up to 8% jitter
        }
    }
}

/// Per-rank simulated clock.
#[derive(Debug)]
pub struct SimClock {
    now: u64,
    model: ClockModel,
    rng: SmallRng,
}

impl SimClock {
    /// Creates a clock for `rank`, seeded deterministically.
    pub fn new(model: ClockModel, seed: u64, rank: usize) -> Self {
        SimClock {
            now: 0,
            model,
            rng: SmallRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Applies the seeded jitter to a base cost.
    fn jitter(&mut self, base: u64) -> u64 {
        if self.model.noise_ppm == 0 {
            return base;
        }
        let f = self.rng.gen_range(0..=self.model.noise_ppm);
        base + base * f / 1_000_000
    }

    /// Advances past a local compute region of roughly `ns` nanoseconds.
    pub fn compute(&mut self, ns: u64) {
        let cost = self.jitter(ns);
        self.now += cost;
    }

    /// Charges the fixed software overhead of entering an MPI call.
    pub fn call_entry(&mut self) {
        let cost = self.jitter(self.model.call_overhead);
        self.now += cost;
    }

    /// Cost of transferring `bytes` point-to-point.
    pub fn transfer_cost(&mut self, bytes: u64) -> u64 {
        self.jitter(self.model.latency + bytes * self.model.per_byte_milli / 1000)
    }

    /// A message sent at `send_time` carrying `bytes` becomes visible at the
    /// receiver at this time; receipt pulls the local clock forward.
    pub fn absorb_message(&mut self, send_time: u64, bytes: u64) {
        let arrival = send_time + self.transfer_cost(bytes);
        self.now = self.now.max(arrival);
    }

    /// Synchronizes with a collective whose last participant arrived at
    /// `sync_time`, then charges the collective's own cost for `bytes`.
    pub fn absorb_collective(&mut self, sync_time: u64, bytes: u64) {
        self.now = self.now.max(sync_time);
        let cost = self.transfer_cost(bytes);
        self.now += cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> ClockModel {
        ClockModel { noise_ppm: 0, ..ClockModel::default() }
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new(ClockModel::default(), 42, 3);
        let mut last = c.now();
        for i in 0..100 {
            c.call_entry();
            c.compute(i * 10);
            assert!(c.now() >= last);
            last = c.now();
        }
    }

    #[test]
    fn absorb_message_respects_causality() {
        let mut c = SimClock::new(quiet(), 1, 0);
        c.absorb_message(1_000_000, 1000);
        assert!(c.now() >= 1_000_000 + 1_500);
    }

    #[test]
    fn absorb_message_never_rewinds() {
        let mut c = SimClock::new(quiet(), 1, 0);
        c.compute(10_000_000);
        let before = c.now();
        c.absorb_message(0, 0);
        assert_eq!(c.now(), before);
    }

    #[test]
    fn deterministic_per_seed_and_rank() {
        let mut a = SimClock::new(ClockModel::default(), 7, 2);
        let mut b = SimClock::new(ClockModel::default(), 7, 2);
        for _ in 0..50 {
            a.call_entry();
            b.call_entry();
        }
        assert_eq!(a.now(), b.now());
        let mut c = SimClock::new(ClockModel::default(), 7, 3);
        for _ in 0..50 {
            c.call_entry();
        }
        assert_ne!(a.now(), c.now(), "different ranks should jitter differently");
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let mut c = SimClock::new(quiet(), 0, 0);
        let small = c.transfer_cost(1);
        let big = c.transfer_cost(1_000_000);
        assert!(big > small);
    }
}
