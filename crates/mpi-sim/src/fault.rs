//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes, ahead of time, everything that will go wrong
//! in a run: which ranks die (and at which MPI call), which tool-channel
//! messages are dropped, how application messages are delayed, and which
//! mailboxes stall. All decisions are pure functions of the plan's seed and
//! the message coordinates, so two runs with the same plan inject exactly
//! the same faults — the property the seeded chaos proptests rely on.
//!
//! Rank death is modeled as a controlled unwind: the fabric marks the rank
//! dead, then the rank thread panics with a [`RankKilled`] payload that
//! [`crate::World::run_faulty`] recognizes. Survivors that provably block
//! on a dead peer unwind with [`PeerFailure`] and still flush their trace
//! through the degraded finalize path.

use std::panic::panic_any;

use crate::fabric::WorldRank;

/// Panic payload for a rank killed by its fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKilled {
    pub rank: WorldRank,
    /// MPI calls completed (and traced) before death.
    pub calls: u64,
}

/// Panic payload raised by a rank provably blocked on a dead peer: the
/// awaited message or collective contribution can never arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerFailure {
    pub rank: WorldRank,
    pub dead_rank: WorldRank,
}

/// Unwinds the current rank as killed-by-plan.
pub(crate) fn raise_killed(rank: WorldRank, calls: u64) -> ! {
    panic_any(RankKilled { rank, calls })
}

/// Unwinds the current rank as blocked-on-dead-peer.
pub(crate) fn raise_peer_failure(rank: WorldRank, dead_rank: WorldRank) -> ! {
    panic_any(PeerFailure { rank, dead_rank })
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for controlled fault unwinds; every other
/// panic is forwarded to the previously installed hook.
pub(crate) fn silence_fault_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<RankKilled>() || p.is::<PeerFailure>() {
                return;
            }
            prev(info);
        }));
    });
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions (drops, delays).
    pub seed: u64,
    /// `(rank, call_number)`: the rank dies immediately after completing
    /// (and tracing) its `call_number`-th MPI call. Call numbers count
    /// from 1 and include `MPI_Init`.
    pub kills: Vec<(WorldRank, u64)>,
    /// Probability that a tool-channel (merge) message is silently dropped.
    pub drop_prob: f64,
    /// Probability that an application message is delayed.
    pub delay_prob: f64,
    /// Simulated delay (ns) added to a delayed application message.
    pub delay_ns: u64,
    /// `(rank, ns)`: the rank's first tool-channel receive stalls for a
    /// real-time duration derived from `ns` before it starts waiting.
    pub stalls: Vec<(WorldRank, u64)>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Schedules `rank` to die right after its `at_call`-th MPI call.
    pub fn kill(mut self, rank: WorldRank, at_call: u64) -> Self {
        self.kills.push((rank, at_call));
        self
    }

    /// Drops tool-channel messages with probability `p`.
    pub fn drop_messages(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Delays application messages with probability `p` by `ns` simulated
    /// nanoseconds.
    pub fn delay_messages(mut self, p: f64, ns: u64) -> Self {
        self.delay_prob = p;
        self.delay_ns = ns;
        self
    }

    /// Stalls `rank`'s tool mailbox once for a duration derived from `ns`.
    pub fn stall(mut self, rank: WorldRank, ns: u64) -> Self {
        self.stalls.push((rank, ns));
        self
    }

    /// The call number at which `rank` dies, if scheduled.
    pub fn kill_for(&self, rank: WorldRank) -> Option<u64> {
        self.kills.iter().find(|&&(r, _)| r == rank).map(|&(_, n)| n)
    }

    /// Whether any fault (not just kills) is configured.
    pub fn is_active(&self) -> bool {
        !self.kills.is_empty()
            || self.drop_prob > 0.0
            || self.delay_prob > 0.0
            || !self.stalls.is_empty()
    }

    /// Deterministic per-message coin for tool-channel drops. `seq` is the
    /// per-(src, dest) message ordinal, so the decision is stable across
    /// runs regardless of thread interleaving.
    pub(crate) fn drops_message(
        &self,
        src: WorldRank,
        dest: WorldRank,
        tag: i32,
        seq: u64,
    ) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        coin(hash4(self.seed, src as u64, (dest as u64) << 32 | tag as u32 as u64, seq))
            < self.drop_prob
    }

    /// Deterministic simulated delay (ns) for an application message
    /// delivered to `dest`; 0 when not delayed. `seq` is the per-dest
    /// delivery ordinal.
    pub(crate) fn delay_for(&self, dest: WorldRank, tag: i32, seq: u64) -> u64 {
        if self.delay_prob <= 0.0 {
            return 0;
        }
        if coin(hash4(self.seed ^ 0xDE1A, dest as u64, tag as u32 as u64, seq)) < self.delay_prob {
            self.delay_ns
        } else {
            0
        }
    }

    /// Stall duration for `rank`'s mailbox, if scheduled.
    pub(crate) fn stall_for(&self, rank: WorldRank) -> Option<u64> {
        self.stalls.iter().find(|&&(r, _)| r == rank).map(|&(_, ns)| ns)
    }
}

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    splitmix(splitmix(splitmix(splitmix(a) ^ b) ^ c) ^ d)
}

/// Maps a hash to [0, 1).
fn coin(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_lookup() {
        let p = FaultPlan::new(1).kill(3, 40).kill(5, 7);
        assert_eq!(p.kill_for(3), Some(40));
        assert_eq!(p.kill_for(5), Some(7));
        assert_eq!(p.kill_for(0), None);
        assert!(p.is_active());
        assert!(!FaultPlan::new(1).is_active());
    }

    #[test]
    fn drops_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(42).drop_messages(0.5);
        let b = FaultPlan::new(42).drop_messages(0.5);
        let c = FaultPlan::new(43).drop_messages(0.5);
        let seq_a: Vec<bool> = (0..64).map(|s| a.drops_message(0, 1, 9, s)).collect();
        let seq_b: Vec<bool> = (0..64).map(|s| b.drops_message(0, 1, 9, s)).collect();
        let seq_c: Vec<bool> = (0..64).map(|s| c.drops_message(0, 1, 9, s)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same drops");
        assert_ne!(seq_a, seq_c, "different seed, different drops");
        let hits = seq_a.iter().filter(|&&d| d).count();
        assert!(hits > 8 && hits < 56, "p=0.5 should drop roughly half, got {hits}/64");
    }

    #[test]
    fn zero_probabilities_never_fire() {
        let p = FaultPlan::new(7);
        assert!((0..256).all(|s| !p.drops_message(0, 1, 0, s)));
        assert!((0..256).all(|s| p.delay_for(1, 0, s) == 0));
    }
}
