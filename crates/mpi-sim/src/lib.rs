//! `mpi-sim` — an in-process MPI runtime used as the substrate for the
//! Pilgrim tracer reproduction.
//!
//! The real Pilgrim intercepts MPI calls through the PMPI profiling
//! interface of a production MPI library running on a cluster. This crate
//! provides the equivalent seam without external MPI: a *world* of ranks,
//! each an OS thread, exchanging messages through a shared fabric that
//! implements MPI matching semantics (source/tag wildcards, non-overtaking
//! order, communicator contexts), collectives, communicator management
//! (split/dup/idup, inter-communicators, merge), derived datatypes, request
//! objects with the full wait/test family, a simulated heap whose
//! allocations are observable by tracers, and a deterministic simulated
//! clock with a latency/bandwidth cost model.
//!
//! Every MPI-level call made by a rank is reported to an attached
//! [`Tracer`] with its full argument list and timing — exactly the
//! information a PMPI wrapper sees — plus an untraced [`TraceCtx`]
//! side-channel that tracers use for their own coordination (Pilgrim
//! assigns globally consistent communicator ids with an all-reduce, and
//! runs its inter-process merge at finalize time).

pub mod clock;
pub mod comm;
pub mod datatype;
pub mod env;
pub mod fabric;
pub mod fault;
pub mod funcs;
pub mod heap;
pub mod hooks;
pub mod request;
pub mod types;
pub mod world;

pub use clock::ClockModel;
pub use comm::CommHandle;
pub use datatype::DatatypeHandle;
pub use env::comm_mgmt::COLOR_UNDEFINED;
pub use env::Env;
pub use fault::{FaultPlan, PeerFailure, RankKilled};
pub use funcs::{FuncId, FunctionRegistry, ToolSupport};
pub use hooks::{
    Arg, CallRec, Directive, NullTracer, ReplayDirector, ToolRequest, TraceCtx, Tracer,
};
pub use request::RequestHandle;
pub use types::{ReduceOp, Status, ANY_SOURCE, ANY_TAG, PROC_NULL};
pub use world::{RankFailure, World, WorldConfig, WorldOutcome};
