//! §4.1: OSU micro-benchmarks — every kernel compresses to a few
//! kilobytes regardless of iterations ("most programs result in a trace
//! file size of a few kilobytes").

use std::sync::Arc;

use pilgrim::PilgrimConfig;
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim, run_raw};

fn main() {
    let its = iters(50);
    let p = max_procs(8);
    println!("== §4.1: OSU micro-benchmark trace sizes ({p} procs, {its} iterations/size) ==\n");
    println!(
        "{:<16}{:>12}{:>14}{:>14}{:>12}",
        "benchmark", "calls", "raw (KB)", "Pilgrim (KB)", "ratio"
    );
    for &(name, f) in mpi_workloads::osu::OSU_BENCHES {
        let run = run_pilgrim(p, PilgrimConfig::default(), Arc::new(move |env| f(env, its)));
        let raw = run_raw(p, Arc::new(move |env| f(env, its)));
        println!(
            "{:<16}{:>12}{:>14}{:>14}{:>11.0}x",
            name,
            run.total_calls,
            kb(raw as usize),
            kb(run.trace.size_bytes()),
            raw as f64 / run.trace.size_bytes() as f64
        );
    }
    println!("\nExpected shape: every kernel a few KB, independent of iteration count.");
}
