//! Figure 6: FLASH trace sizes.
//!
//! Panels (a–c): trace size vs process count, plus total MPI calls.
//! Panels (d–f): trace size vs iteration count at a fixed process count.
//! Expected shapes (paper): ScalaTrace tracks the call count; Pilgrim
//! plateaus in ranks; StirTurb is constant in iterations, Sedov grows
//! slowly (drifting dt-probe source), Cellular grows with AMR refinement.

use mpi_workloads::by_name;
use pilgrim::PilgrimConfig;
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim, run_scalatrace, sweep};

fn main() {
    let max = max_procs(64);
    let its = iters(60);

    println!("== Figure 6 (a-c): FLASH trace size vs processes ({its} iterations) ==");
    for app in ["sedov", "cellular", "stirturb"] {
        println!("\n-- {app} --");
        println!(
            "{:<8}{:>14}{:>12}{:>14}{:>12}",
            "procs", "ScalaTrace", "Pilgrim", "MPI calls", "unique CFGs"
        );
        for p in sweep(8, max) {
            let pr = run_pilgrim(p, PilgrimConfig::default(), by_name(app, its));
            let (st, _, _) = run_scalatrace(p, by_name(app, its));
            println!(
                "{:<8}{:>14}{:>12}{:>14}{:>12}",
                p,
                kb(st),
                kb(pr.trace.size_bytes()),
                pr.total_calls,
                pr.trace.unique_grammars
            );
        }
    }

    let fixed = 16.min(max);
    println!("\n== Figure 6 (d-f): FLASH trace size vs iterations ({fixed} processes) ==");
    for app in ["sedov", "cellular", "stirturb"] {
        println!("\n-- {app} --");
        println!("{:<12}{:>14}{:>12}{:>14}", "iterations", "ScalaTrace", "Pilgrim", "MPI calls");
        for its in [100, 200, 400, 600, 1000] {
            let pr = run_pilgrim(fixed, PilgrimConfig::default(), by_name(app, its));
            let (st, _, _) = run_scalatrace(fixed, by_name(app, its));
            println!(
                "{:<12}{:>14}{:>12}{:>14}",
                its,
                kb(st),
                kb(pr.trace.size_bytes()),
                pr.total_calls
            );
        }
    }
    println!(
        "\nExpected shape: StirTurb flat, Sedov slow growth (new probe source every \
         ~100 iters), Cellular growing with refinements."
    );
}
