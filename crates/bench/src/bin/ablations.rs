//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. Relative-rank encoding (§3.4.2) on/off — stencil signatures.
//! 2. Per-signature request-id pools (§3.4.3) vs one shared pool —
//!    nondeterministic completion churn.
//! 3. Grammar identity check in the inter-process merge (§3.5.2) on/off —
//!    merge time and payload.
//! 4. Pointer offsets (§3.3.3) on/off — signature size vs information.

use std::sync::Arc;

use mpi_sim::datatype::BasicType;
use mpi_workloads::by_name;
use pilgrim::{EncoderConfig, PilgrimConfig};
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim};

fn main() {
    let max = max_procs(36);
    let its = iters(50);

    println!("== Ablation 1: relative-rank encoding (2D stencil, {its} iters) ==\n");
    println!(
        "{:<8}{:>16}{:>16}{:>14}{:>14}",
        "procs", "relative (KB)", "absolute (KB)", "CST rel", "CST abs"
    );
    for p in [9, 16, 25, 36] {
        if p > max {
            break;
        }
        let rel = run_pilgrim(p, PilgrimConfig::default(), by_name("stencil2d", its));
        let abs_cfg = PilgrimConfig::new().encoder(EncoderConfig::new().relative_ranks(false));
        let abs = run_pilgrim(p, abs_cfg, by_name("stencil2d", its));
        println!(
            "{:<8}{:>16}{:>16}{:>14}{:>14}",
            p,
            kb(rel.trace.size_bytes()),
            kb(abs.trace.size_bytes()),
            rel.trace.cst.len(),
            abs.trace.cst.len()
        );
    }
    println!("(expected: absolute grows ~linearly in procs; relative plateaus at 9)\n");

    println!("== Ablation 2: per-signature request pools (completion-order churn) ==\n");
    let churn = |env: &mut mpi_sim::Env| {
        // §3.4.3 failure mode: after each nondeterministic completion the
        // application issues a *new* request (an acknowledgement send)
        // immediately. With one shared pool, the ack's symbolic id is
        // whatever the just-completed request freed — which depends on
        // completion order and varies across iterations.
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::LongLong);
        if me == 0 {
            let bufs: Vec<_> = (0..3).map(|_| env.malloc(8)).collect();
            let note = env.malloc(8);
            for _ in 0..120 {
                let mut reqs: Vec<_> = bufs
                    .iter()
                    .zip([1i32, 2, 3])
                    .map(|(&b, s)| env.irecv(b, 1, dt, s, 0, world))
                    .collect();
                let mut notes = Vec::new();
                // Each completion immediately triggers a fixed-signature
                // notification; with a shared pool its symbolic id is
                // whatever the completed irecv just freed — completion
                // order leaks into the signature stream.
                while env.waitany(&mut reqs).is_some() {
                    notes.push(env.isend(note, 1, dt, 1, 1, world));
                }
                env.waitall(&mut notes);
            }
        } else {
            let buf = env.malloc(8);
            for _ in 0..120 {
                env.send(buf, 1, dt, 0, 0, world);
                if me == 1 {
                    for _ in 0..3 {
                        env.recv(buf, 1, dt, 0, 1, world);
                    }
                }
            }
        }
    };
    let per_sig = run_pilgrim(4, PilgrimConfig::default(), Arc::new(churn));
    let shared = run_pilgrim(4, PilgrimConfig::new().shared_request_pool(true), Arc::new(churn));
    println!("{:<24}{:>14}{:>12}{:>16}", "pools", "trace (KB)", "CST size", "grammar bytes");
    println!(
        "{:<24}{:>14}{:>12}{:>16}",
        "per-signature (paper)",
        kb(per_sig.trace.size_bytes()),
        per_sig.trace.cst.len(),
        per_sig.trace.size_report().grammar_bytes
    );
    println!(
        "{:<24}{:>14}{:>12}{:>16}",
        "single shared",
        kb(shared.trace.size_bytes()),
        shared.trace.cst.len(),
        shared.trace.size_report().grammar_bytes
    );
    println!("(expected: per-signature pools keep ids stable; the shared pool leaks");
    println!(" completion order into signatures. Our shared pool reuses smallest-free");
    println!(" ids, which softens the churn the paper saw with naive reuse.)\n");

    println!("== Ablation 3: grammar identity check in the merge ==\n");
    let p = 32.min(max);
    let with = run_pilgrim(p, PilgrimConfig::default(), by_name("stirturb", its));
    let without =
        run_pilgrim(p, PilgrimConfig::new().merge_identity_check(false), by_name("stirturb", its));
    println!(
        "{:<18}{:>16}{:>16}{:>16}",
        "identity check", "trace (KB)", "unique CFGs", "CFG merge (us)"
    );
    println!(
        "{:<18}{:>16}{:>16}{:>16}",
        "on (paper)",
        kb(with.trace.size_bytes()),
        with.trace.unique_grammars,
        with.stats.inter_cfg.as_micros()
    );
    println!(
        "{:<18}{:>16}{:>16}{:>16}",
        "off",
        kb(without.trace.size_bytes()),
        without.trace.unique_grammars,
        without.stats.inter_cfg.as_micros()
    );
    println!("(expected: without the check every rank's grammar survives to rank 0)\n");

    println!("== Ablation 4: pointer offsets ==\n");
    let offsets = |env: &mut mpi_sim::Env| {
        // Sends from a rotating displacement inside one large buffer —
        // common in halo packing. Offsets distinguish the four call sites
        // (more information, more signatures); dropping them collapses
        // the signatures (smaller but lossier).
        let me = env.world_rank();
        let world = env.comm_world();
        let dt = env.basic(BasicType::Double);
        let big = env.malloc(4 * 512);
        for it in 0..200u64 {
            let part = big + (it % 4) * 512;
            if me == 0 {
                env.send(part, 8, dt, 1, 0, world);
            } else {
                env.recv(part, 8, dt, 0, 0, world);
            }
        }
    };
    let with_off = run_pilgrim(2, PilgrimConfig::default(), Arc::new(offsets));
    let no_off = run_pilgrim(
        2,
        PilgrimConfig::new().encoder(EncoderConfig::new().pointer_offsets(false)),
        Arc::new(offsets),
    );
    println!("{:<18}{:>16}{:>12}", "offsets", "trace (KB)", "CST size");
    println!(
        "{:<18}{:>16}{:>12}",
        "kept (paper)",
        kb(with_off.trace.size_bytes()),
        with_off.trace.cst.len()
    );
    println!(
        "{:<18}{:>16}{:>12}",
        "dropped",
        kb(no_off.trace.size_bytes()),
        no_off.trace.cst.len()
    );
    println!("(expected: offsets preserve buffer displacement at a small size cost)");
}
