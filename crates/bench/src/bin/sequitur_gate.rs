//! `sequitur_gate` — Sequitur push throughput on synthetic terminal
//! streams, with a committed-baseline regression gate.
//!
//! ```text
//! sequitur_gate [--symbols N] [--reps N] [--json-out PATH]
//!               [--check-against PATH] [--stat best|min]
//! ```
//!
//! The online grammar is the hot path of every tracer push, so its
//! throughput is gated the same way ingest throughput is
//! (`ingest_bench`): four deterministic input shapes — a short periodic
//! loop, two nested loop levels, a phase-structured mix, and a
//! high-entropy stream that resists digram reuse — each pushed through
//! [`Grammar::push`] and flattened, reporting sustained symbols/sec.
//!
//! `--json-out PATH` writes the rows as a schema-1 document (the
//! `BENCH_sequitur.json` baseline `scripts/check.sh` keeps in the
//! repo). `--check-against PATH` runs `--reps` sweeps (default 2 under
//! the gate), keeps each row's best symbols/sec (damping scheduler
//! noise), and fails with exit 1 if any row lands below 90% of the
//! baseline. Refresh the baseline with `--reps 3 --stat min`: recording
//! the *worst* rep anchors the baseline at the low end of the noise
//! band, so only a whole-distribution shift trips the gate.

use std::process::exit;
use std::time::Instant;

use pilgrim_sequitur::Grammar;

/// Allowed slowdown vs the committed baseline before the gate fails.
const REGRESSION_FLOOR: f64 = 0.9;

/// Rows faster than this are scheduler-noise-dominated and not gated.
const MIN_GATE_WALL_MS: f64 = 5.0;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn path_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{name} needs a path");
            exit(2)
        })
    })
}

/// Deterministic synthetic streams shaped like real traces. Every shape
/// is a pure function of its index so reps and machines agree on input.
fn stream(shape: &str, n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    // SplitMix64 — fixed-seed entropy for the adversarial stream.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in 0..n {
        let t = match shape {
            // One 8-call loop body repeated forever: Sequitur's best case.
            "periodic8" => (i % 8) as u32,
            // An inner loop of 6 inside an outer loop of 60 with a
            // per-outer-iteration prologue, like a stencil sweep.
            "nested" => {
                if i % 60 < 6 {
                    (100 + i % 6) as u32
                } else {
                    (i % 6) as u32
                }
            }
            // Phase changes every 10k calls, like an app alternating
            // compute/exchange/reduce epochs.
            "mixed" => ((i / 10_000) % 4 * 32 + i % 7) as u32,
            // High-entropy terminals over a 4k alphabet: near-worst case,
            // almost no digram repeats to exploit.
            "noisy4k" => (next() % 4096) as u32,
            _ => unreachable!("unknown shape"),
        };
        out.push(t);
    }
    out
}

struct Row {
    shape: &'static str,
    wall_ms: f64,
    symbols: usize,
    symbols_per_sec: f64,
    rules: usize,
    flat_bytes: usize,
}

fn run_sweep(symbols: usize) -> Vec<Row> {
    ["periodic8", "nested", "mixed", "noisy4k"]
        .into_iter()
        .map(|shape| {
            let input = stream(shape, symbols);
            let start = Instant::now();
            let mut gr = Grammar::new();
            for &t in &input {
                gr.push(t);
            }
            let flat = gr.to_flat();
            let wall = start.elapsed();
            let secs = wall.as_secs_f64().max(1e-9);
            // The flattened grammar must reproduce the input exactly —
            // a throughput number for a wrong grammar is meaningless.
            assert_eq!(flat.expand(), input, "{shape}: lossy grammar");
            Row {
                shape,
                wall_ms: wall.as_secs_f64() * 1e3,
                symbols,
                symbols_per_sec: symbols as f64 / secs,
                rules: flat.num_rules(),
                flat_bytes: flat.byte_size(),
            }
        })
        .collect()
}

/// Pulls `"key":<number>` out of a flat JSON object body (the baseline
/// is our own schema-1 output; no serde needed).
fn json_num(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn json_field<'d>(obj: &'d str, key: &str) -> Option<&'d str> {
    let needle = format!("\"{key}\":\"");
    let at = obj.find(&needle)? + needle.len();
    let rest = &obj[at..];
    rest.split('"').next()
}

/// Baseline rows as `(shape, symbols_per_sec)`.
fn baseline_rows(doc: &str) -> Vec<(String, f64)> {
    let Some(at) = doc.find("\"rows\":[") else { return Vec::new() };
    let body = &doc[at + "\"rows\":[".len()..];
    let mut out = Vec::new();
    for obj in body.split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        if let (Some(shape), Some(sps)) =
            (json_field(obj, "shape"), json_num(obj, "symbols_per_sec"))
        {
            out.push((shape.to_string(), sps));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symbols = flag(&args, "--symbols").unwrap_or(200_000) as usize;
    let json_out = path_flag(&args, "--json-out");
    let check_against = path_flag(&args, "--check-against");
    let reps = flag(&args, "--reps").unwrap_or(if check_against.is_some() { 2 } else { 1 }).max(1)
        as usize;
    let keep_min = match path_flag(&args, "--stat").as_deref() {
        None | Some("best") => false,
        Some("min") => true,
        Some(other) => {
            eprintln!("--stat must be best or min, got {other}");
            exit(2)
        }
    };

    println!(
        "sequitur_gate: {symbols} symbols per shape, {reps} rep{}",
        if reps == 1 { "" } else { "s" }
    );

    // Per shape, keep one rep: the best symbols/sec (default; the
    // gate's noise damper) or the worst (`--stat min`; the recorder).
    let mut best: Vec<Row> = run_sweep(symbols);
    for _ in 1..reps {
        for (slot, fresh) in best.iter_mut().zip(run_sweep(symbols)) {
            if (fresh.symbols_per_sec > slot.symbols_per_sec) != keep_min {
                *slot = fresh;
            }
        }
    }

    println!("| shape | wall (ms) | symbols | symbols/sec | rules | flat bytes |");
    println!("|---|---:|---:|---:|---:|---:|");
    let mut rows: Vec<String> = Vec::new();
    for r in &best {
        println!(
            "| {} | {:.1} | {} | {:.0} | {} | {} |",
            r.shape, r.wall_ms, r.symbols, r.symbols_per_sec, r.rules, r.flat_bytes
        );
        rows.push(format!(
            "{{\"shape\":\"{}\",\"wall_ms\":{:.1},\"symbols\":{},\"symbols_per_sec\":{:.0},\
             \"rules\":{},\"flat_bytes\":{}}}",
            r.shape, r.wall_ms, r.symbols, r.symbols_per_sec, r.rules, r.flat_bytes
        ));
    }

    if let Some(path) = json_out {
        let doc = format!(
            "{{\"schema\":1,\"bench\":\"sequitur\",\"symbols\":{symbols},\"rows\":[{}]}}\n",
            rows.join(",")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_against {
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            exit(1)
        });
        let baseline = baseline_rows(&doc);
        if baseline.is_empty() {
            eprintln!("baseline {path} has no rows");
            exit(1)
        }
        let mut regressed = 0usize;
        for (shape, base_sps) in baseline {
            let Some(fresh) = best.iter().find(|r| r.shape == shape) else {
                continue;
            };
            let floor = base_sps * REGRESSION_FLOOR;
            let noisy = fresh.wall_ms < MIN_GATE_WALL_MS;
            let verdict = if noisy {
                "skipped (sub-5ms row, noise-dominated)"
            } else if fresh.symbols_per_sec < floor {
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check {shape}: {:.0} sym/s vs baseline {base_sps:.0} (floor {floor:.0}) {verdict}",
                fresh.symbols_per_sec
            );
            if !noisy && fresh.symbols_per_sec < floor {
                regressed += 1;
            }
        }
        if regressed > 0 {
            eprintln!("sequitur_gate: {regressed} row(s) regressed >10% vs {path}");
            exit(1)
        }
        println!("sequitur_gate: no row regressed >10% vs {path}");
    }
}
