//! Table 1: information collected by different tracing tools.
//!
//! Prints the MPI-4.0 function coverage of Pilgrim, ScalaTrace and
//! Cypress from the generated function registry, plus the popular
//! parameter-handling comparison.

use mpi_sim::funcs::{FunctionRegistry, ToolSupport};

fn main() {
    let reg = FunctionRegistry::mpi40();
    println!("== Table 1: comparison of information collected by tracing tools ==\n");
    println!("Functions supported (MPI 4.0 C inventory, {} functions):", reg.total());
    println!("{:<14}{:>10}", "Tool", "Functions");
    for (name, tool) in [
        ("Cypress", ToolSupport::Cypress),
        ("ScalaTrace", ToolSupport::ScalaTrace),
        ("Pilgrim", ToolSupport::Pilgrim),
    ] {
        println!("{:<14}{:>10}", name, reg.supported_count(tool));
    }
    println!("(paper: Cypress 56, ScalaTrace 125, Pilgrim 446)\n");

    println!("Popular parameters:");
    println!("{:<18}{:<22}{:<26}Pilgrim", "Parameter", "Cypress", "ScalaTrace");
    let rows = [
        ("MPI_Status", "kept", "kept", "kept (src, tag)"),
        ("MPI_Request", "ignored", "raw handles", "per-signature symbolic ids"),
        ("MPI_Comm", "intra only", "intra and inter", "intra and inter, global ids"),
        ("MPI_Datatype", "only the size", "kept", "kept, symbolic ids"),
        ("src/dst/tag", "absolute", "absolute", "relative encoding"),
        ("memory pointer", "ignored", "ignored", "(segment id, offset)"),
    ];
    for (p, c, s, g) in rows {
        println!("{p:<18}{c:<22}{s:<26}{g}");
    }

    println!("\nSpot checks (from the registry):");
    for f in ["MPI_Testsome", "MPI_Comm_idup", "MPI_Waitall", "MPI_Put", "MPI_File_open"] {
        println!(
            "  {f:<22} cypress={:<6} scalatrace={:<6} pilgrim={}",
            reg.supports(ToolSupport::Cypress, f),
            reg.supports(ToolSupport::ScalaTrace, f),
            reg.supports(ToolSupport::Pilgrim, f),
        );
    }
}
