//! `chaos` — fault-injection sweep: kill an increasing number of ranks
//! mid-run and measure how much of the trace survives, with and without
//! crash-consistent checkpoints.
//!
//! ```text
//! chaos [--seed N] [--ranks N] [--iters N] [--interval N] [--budget N] [--quick]
//! ```
//!
//! `--budget` additionally arms the resource governor with a per-rank
//! memory budget (bytes), so rank failures and memory-pressure
//! degradation can be exercised together; the `gov` column counts
//! degradation events recorded in the merged manifest.
//!
//! Every row kills `k` deterministic victims (never rank 0, which holds
//! the merged trace) at deterministic call counts, runs the degraded
//! merge, and reports calls and bytes recovered. The whole sweep is a
//! pure function of `--seed`.

use std::process::exit;

use mpi_sim::datatype::BasicType;
use mpi_sim::types::ReduceOp;
use mpi_sim::{Env, FaultPlan, World, WorldConfig};
use pilgrim::{PilgrimConfig, PilgrimTracer};

/// Deterministic wildcard-free workload (allreduce + ring sendrecv).
fn workload(env: &mut Env, iters: usize) {
    let me = env.world_rank();
    let n = env.world_size();
    let world = env.comm_world();
    let dt = env.basic(BasicType::LongLong);
    let buf = env.malloc(8);
    let tmp = env.malloc(8);
    for i in 0..iters {
        env.heap_write_u64s(buf, &[(me + i) as u64]);
        env.allreduce(buf, tmp, 1, dt, ReduceOp::Max, world);
        let right = ((me + 1) % n) as i32;
        let left = ((me + n - 1) % n) as i32;
        env.sendrecv(buf, 1, dt, right, 7, tmp, 1, dt, left, 7, world);
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// `k` distinct victims in `1..nranks` with kill points spread over the
/// run, all derived from `seed`.
fn plan_kills(seed: u64, nranks: usize, iters: usize, k: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    let mut state = seed ^ 0xC5A05;
    let mut victims: Vec<usize> = Vec::new();
    while victims.len() < k {
        let v = 1 + (splitmix(&mut state) as usize) % (nranks - 1);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    let max_calls = (2 * iters) as u64; // init + iters * (allreduce + sendrecv)
    for v in victims {
        let at = 1 + splitmix(&mut state) % max_calls.max(2);
        plan = plan.kill(v, at);
    }
    plan
}

struct Row {
    kills: usize,
    checkpointed: bool,
    lost: usize,
    truncated: usize,
    governor_events: usize,
    calls_traced: u64,
    calls_in_trace: u64,
    trace_bytes: usize,
}

fn run_one(
    seed: u64,
    nranks: usize,
    iters: usize,
    k: usize,
    interval: Option<u64>,
    budget: Option<u64>,
) -> Row {
    let mut wcfg = WorldConfig::new(nranks);
    if k > 0 {
        wcfg.faults = Some(plan_kills(seed, nranks, iters, k));
    }
    let mut tcfg = PilgrimConfig::new().merge_timeout_ms(400);
    if let Some(iv) = interval {
        tcfg = tcfg.checkpoint_interval(iv);
    }
    if let Some(b) = budget {
        tcfg = tcfg.memory_budget(b as usize);
    }
    let mut out = World::run_faulty(
        &wcfg,
        |rank| PilgrimTracer::new(rank, tcfg),
        move |env| workload(env, iters),
    );
    let calls_traced: u64 = out
        .tracers
        .iter()
        .filter_map(|t| t.as_ref().map(|t| t.call_count()))
        .chain(out.failures.iter().map(|f| f.calls))
        .sum();
    let trace = out.tracers[0]
        .as_mut()
        .expect("rank 0 must survive (plans never target it)")
        .take_output()
        .trace
        .unwrap_or_else(|| {
            eprintln!("rank 0 produced no trace with {k} kills");
            exit(1)
        });
    Row {
        kills: k,
        checkpointed: interval.is_some(),
        lost: trace.completeness.lost_ranks().len(),
        truncated: trace.completeness.checkpoint_ranks().len(),
        governor_events: trace.completeness.events.len(),
        calls_traced,
        calls_in_trace: trace.rank_lengths.iter().sum(),
        trace_bytes: trace.serialize().len(),
    }
}

fn parse_num(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| parse_num(v)).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = flag(&args, "--seed").unwrap_or(0x5EED);
    let nranks = flag(&args, "--ranks").unwrap_or(8) as usize;
    let iters = flag(&args, "--iters").unwrap_or(if quick { 15 } else { 60 }) as usize;
    let interval = flag(&args, "--interval").unwrap_or(10);
    let budget = flag(&args, "--budget");
    if nranks < 2 {
        eprintln!("--ranks must be at least 2");
        exit(2);
    }
    let max_kills = if quick { 2.min(nranks - 1) } else { (nranks - 1).min(4) };

    let budget_note = budget.map_or(String::new(), |b| format!(", budget {b} bytes/rank"));
    println!(
        "chaos sweep: {nranks} ranks, {iters} iters, seed {seed:#x}, checkpoint every \
         {interval} calls{budget_note}"
    );
    println!(
        "{:>5} {:>11} {:>5} {:>9} {:>4} {:>12} {:>12} {:>9} {:>11}",
        "kills",
        "checkpoints",
        "lost",
        "truncated",
        "gov",
        "calls traced",
        "in trace",
        "recovered",
        "trace bytes"
    );
    for k in 0..=max_kills {
        for ckpt in [None, Some(interval)] {
            if k == 0 && ckpt.is_some() {
                continue; // healthy run: checkpoints change nothing in the trace
            }
            let row = run_one(seed, nranks, iters, k, ckpt, budget);
            let pct = if row.calls_traced == 0 {
                100.0
            } else {
                100.0 * row.calls_in_trace as f64 / row.calls_traced as f64
            };
            println!(
                "{:>5} {:>11} {:>5} {:>9} {:>4} {:>12} {:>12} {:>8.1}% {:>11}",
                row.kills,
                if row.checkpointed { "on" } else { "off" },
                row.lost,
                row.truncated,
                row.governor_events,
                row.calls_traced,
                row.calls_in_trace,
                pct,
                row.trace_bytes
            );
        }
    }
}
