//! `trace_tool` — record, inspect, verify, export, and replay Pilgrim
//! trace files from the command line.
//!
//! ```text
//! trace_tool record <workload> <ranks> <iters> <out.pilgrim> [--budget <bytes>] [--rr]
//! trace_tool inspect <trace.pilgrim>
//! trace_tool stats <trace.pilgrim>
//! trace_tool validate <trace.pilgrim>
//! trace_tool signatures <trace.pilgrim>
//! trace_tool export <trace.pilgrim> [out.txt]
//! trace_tool decode <trace.pilgrim> <rank> [limit]
//! trace_tool replay <trace.pilgrim> [--strict]
//! trace_tool minimize <trace.pilgrim> <out.pilgrim> <out.json>
//! trace_tool mutate <trace.pilgrim> <out.pilgrim>
//! trace_tool query <trace.pilgrim> [rank]
//! trace_tool slice <trace.pilgrim> <rank> <start> <count>
//! trace_tool matrix <trace.pilgrim>
//! trace_tool fidelity <trace.pilgrim>
//! trace_tool recover <spill_dir>
//! ```
//!
//! ## Record / replay / minimize
//!
//! `record --rr` enables the nondeterminism side-channel
//! ([`pilgrim::rr`]): every wildcard match, completion order, and probe
//! outcome is logged into the container's `PGND` section. `replay
//! --strict` then proves the recording deterministic (exit 0) or names
//! the first mismatching `(rank, call_index)` (exit 1); degraded traces
//! exit 3 with a partial-replay report instead of claiming a
//! divergence. `minimize` shrinks a diverging recording to a
//! self-contained reproducer (container + expected-divergence JSON);
//! `mutate` deterministically corrupts the first logged event — the CI
//! fixture for the strict gate.
//!
//! The query subcommands answer from the compressed grammar (indexed
//! random access + grammar-aware aggregation) and emit deterministic JSON
//! on stdout; index-build and query timings go to stderr.
//!
//! ## JSON envelope (schema 1)
//!
//! Every JSON-producing subcommand (`query`, `slice`, `matrix`,
//! `validate`, `fidelity`, `recover`) emits one object wrapped in a
//! versioned envelope:
//!
//! ```text
//! {"schema":1,"command":"<subcommand>",...,"fidelity":{...}}
//! ```
//!
//! The `"fidelity"` field is always present — `lossless:true` with empty
//! rank lists for clean traces, `null` when the command has no single
//! trace to report on (`recover`, failed `validate`) — so consumers
//! never need to probe for it.
//!
//! ## Exit codes (uniform across subcommands)
//!
//! * `0` — success (for `fidelity`: the trace is lossless; for
//!   `recover`: every job recovered clean; for `replay --strict`: the
//!   recording replayed deterministically)
//! * `1` — invalid input or a detected loss: unreadable file, decode
//!   failure, a `validate` consistency issue, or a `replay` divergence
//! * `2` — usage error
//! * `3` — degraded: `fidelity` on a degraded trace, `recover` with
//!   partial/lost jobs, `record`/`replay`/`minimize` on a trace whose
//!   ranks are truncated, lost, or salvaged
//!
//! Readers accept both trace formats — the legacy flat stream and the
//! checksummed `PGC1` container — by sniffing the magic; `record` writes
//! the container.

use std::fmt::Write as _;
use std::fs;
use std::process::exit;

use mpi_sim::FuncId;
use pilgrim::{
    decode_rank_calls, minimize, replay_strict, CallIterator, Divergence, GlobalTrace,
    MetricsRegistry, MinimizeError, NondetEvent, PartialReplayReport, PilgrimConfig, QueryEngine,
    RankStatus, Stage, StrictReplay, TraceIndex,
};
use pilgrim_bench::run_pilgrim;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool record <workload> <ranks> <iters> <out.pilgrim> [--budget <bytes>] [--rr]\n  \
         trace_tool inspect <trace.pilgrim>\n  \
         trace_tool stats <trace.pilgrim>\n  \
         trace_tool validate <trace.pilgrim>\n  \
         trace_tool signatures <trace.pilgrim>\n  \
         trace_tool export <trace.pilgrim> [out.txt]\n  \
         trace_tool decode <trace.pilgrim> <rank> [limit]\n  \
         trace_tool replay <trace.pilgrim> [--strict]\n  \
         trace_tool minimize <trace.pilgrim> <out.pilgrim> <out.json>\n  \
         trace_tool mutate <trace.pilgrim> <out.pilgrim>\n  \
         trace_tool query <trace.pilgrim> [rank]\n  \
         trace_tool slice <trace.pilgrim> <rank> <start> <count>\n  \
         trace_tool matrix <trace.pilgrim>\n  \
         trace_tool fidelity <trace.pilgrim>\n  \
         trace_tool recover <spill_dir>\n\nworkloads: {}",
        mpi_workloads::ALL_WORKLOADS.join(", ")
    );
    exit(2)
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn func_name(id: u16) -> &'static str {
    FuncId::from_id(id).map_or("MPI_<unknown>", |f| f.name())
}

/// Prints the index-build/query stage timings to stderr (stdout stays
/// deterministic for golden-output checks).
fn report_query_timing(metrics: &MetricsRegistry) {
    let snap = metrics.snapshot();
    eprintln!(
        "index-build {} ns, query {} ns",
        snap.stage_ns(Stage::IndexBuild),
        snap.stage_ns(Stage::Query)
    );
}

fn load(path: &str) -> GlobalTrace {
    let bytes = fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    GlobalTrace::decode_auto(&bytes).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid pilgrim trace: {e}");
        exit(1)
    })
}

/// Renders a [`pilgrim::FidelityReport`] as a JSON object.
fn fidelity_json(trace: &GlobalTrace) -> String {
    let f = trace.fidelity();
    let list = |ranks: &[usize]| {
        let items: Vec<String> = ranks.iter().map(usize::to_string).collect();
        format!("[{}]", items.join(","))
    };
    format!(
        "{{\"lossless\":{},\"frozen_ranks\":{},\"timing_degraded_ranks\":{},\
         \"sealed_ranks\":{},\"lost_ranks\":{},\"checkpoint_ranks\":{},\
         \"salvaged_ranks\":{},\"net_spilled_ranks\":{},\"events\":{}}}",
        f.lossless,
        list(&f.frozen_ranks),
        list(&f.timing_degraded_ranks),
        list(&f.sealed_ranks),
        list(&f.lost_ranks),
        list(&f.checkpoint_ranks),
        list(&f.salvaged_ranks),
        list(&f.net_spilled_ranks),
        f.events
    )
}

/// The trailing `,"fidelity":{...}` field every JSON subcommand appends.
/// Always present (schema 1), so consumers never probe for it.
fn fidelity_field(trace: &GlobalTrace) -> String {
    format!(",\"fidelity\":{}", fidelity_json(trace))
}

/// Opens the schema-1 envelope: `{"schema":1,"command":"<cmd>",`.
fn envelope(command: &str) -> String {
    format!("{{\"schema\":1,\"command\":{},", json_str(command))
}

/// `[1,4,7]` from a rank list.
fn json_usize_list(ranks: &[usize]) -> String {
    let items: Vec<String> = ranks.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

/// A [`Divergence`] as a JSON object.
fn divergence_json(d: &Divergence) -> String {
    format!(
        "{{\"rank\":{},\"call_index\":{},\"expected\":{},\"got\":{}}}",
        d.rank,
        d.call_index,
        json_str(&d.expected),
        json_str(&d.got)
    )
}

/// The degraded-replay verdict shared by `replay` and `minimize`:
/// schema-1 envelope with the partial-replay rank lists, exit 3.
fn degraded_exit(command: &str, trace: &GlobalTrace, report: &PartialReplayReport) -> ! {
    let first = |pairs: &[(usize, u64)]| {
        let ranks: Vec<usize> = pairs.iter().map(|&(r, _)| r).collect();
        json_usize_list(&ranks)
    };
    let lost: Vec<usize> = report.lost_ranks.iter().map(|&(r, _)| r).collect();
    println!(
        "{}\"degraded\":true,\"replayable_ranks\":{},\
         \"truncated_ranks\":{},\"lost_ranks\":{},\"salvaged_ranks\":{},\
         \"net_spilled_ranks\":{},\"divergence\":null{}}}",
        envelope(command),
        json_usize_list(&report.replayable_ranks),
        first(&report.truncated_ranks),
        json_usize_list(&lost),
        first(&report.salvaged_ranks),
        json_usize_list(&report.net_spilled_ranks),
        fidelity_field(trace)
    );
    exit(3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() >= 5 => {
            let workload = &args[1];
            let ranks: usize = args[2].parse().unwrap_or_else(|_| usage());
            let iters: usize = args[3].parse().unwrap_or_else(|_| usage());
            let mut cfg = PilgrimConfig::default();
            let mut rr = false;
            let mut rest = args[5..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--budget" => {
                        let budget: usize =
                            rest.next().and_then(|b| b.parse().ok()).unwrap_or_else(|| usage());
                        cfg = cfg.memory_budget(budget);
                    }
                    "--rr" => rr = true,
                    _ => usage(),
                }
            }
            let body = mpi_workloads::by_name(workload, iters);
            let trace = if rr {
                // Side-channel recording: every nondeterministic resolution
                // lands in the container's PGND section for strict replay.
                pilgrim::record(ranks, cfg, move |env| body(env)).unwrap_or_else(|| {
                    eprintln!("recording produced no rank-0 trace");
                    exit(1)
                })
            } else {
                run_pilgrim(ranks, cfg, body).trace
            };
            let bytes = pilgrim::write_container(&trace);
            fs::write(&args[4], &bytes).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", args[4]);
                exit(1)
            });
            println!(
                "{}\"workload\":{},\"ranks\":{ranks},\"calls\":{},\"bytes\":{},\"out\":{},\
                 \"rr\":{rr},\"nondet_events\":{}{}}}",
                envelope("record"),
                json_str(workload),
                trace.rank_lengths.iter().sum::<u64>(),
                bytes.len(),
                json_str(&args[4]),
                trace.nondet.as_ref().map_or(0, pilgrim::NondetLog::len),
                fidelity_field(&trace)
            );
            if trace.is_degraded() {
                exit(3)
            }
        }
        Some("inspect") if args.len() == 2 => {
            let trace = load(&args[1]);
            let report = trace.size_report();
            println!("ranks:            {}", trace.nranks);
            println!("calls:            {}", trace.rank_lengths.iter().sum::<u64>());
            println!("signatures (CST): {}", trace.cst.len());
            println!("unique grammars:  {}", trace.unique_grammars);
            println!("grammar rules:    {}", trace.grammar.num_rules());
            println!("size:             {} bytes", report.full_total());
            println!("  CST             {} bytes", report.cst_bytes);
            println!("  grammar         {} bytes", report.grammar_bytes);
            println!("  duration gram.  {} bytes", report.duration_bytes);
            println!("  interval gram.  {} bytes", report.interval_bytes);
            println!("  metadata        {} bytes", report.meta_bytes());
            if trace.completeness.is_complete() {
                println!("completeness:     all {} ranks merged", trace.nranks);
            } else {
                for (rank, round) in trace.completeness.lost_ranks() {
                    println!("completeness:     rank {rank} LOST (merge round {round})");
                }
                for (rank, calls) in trace.completeness.checkpoint_ranks() {
                    println!(
                        "completeness:     rank {rank} truncated at checkpoint ({calls} calls)"
                    );
                }
            }
            // Function histogram from the CST.
            let mut counts: std::collections::HashMap<&str, u64> = Default::default();
            for (_, sig, stats) in trace.cst.iter() {
                if let Some(call) = pilgrim::decode_signature(sig) {
                    let name = FuncId::from_id(call.func).map_or("?", |f| f.name());
                    *counts.entry(name).or_default() += stats.count;
                }
            }
            let mut rows: Vec<_> = counts.into_iter().collect();
            rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            println!("\ntop functions:");
            for (name, c) in rows.into_iter().take(12) {
                println!("  {name:<28}{c:>12}");
            }
        }
        Some("stats") if args.len() == 2 => {
            // Machine-readable size decomposition as JSON. Stage timers are
            // present (and zero): timing only exists while tracing runs.
            let trace = load(&args[1]);
            let mut report = MetricsRegistry::default().snapshot();
            report.size = Some(trace.size_report());
            report.counters.insert("calls".into(), trace.rank_lengths.iter().sum::<u64>());
            report.counters.insert("cst.signatures".into(), trace.cst.len() as u64);
            report.counters.insert("cfg.rules".into(), trace.grammar.num_rules() as u64);
            report.counters.insert("merge.unique_grammars".into(), trace.unique_grammars as u64);
            let lost = trace.completeness.lost_ranks().len() as u64;
            let truncated = trace.completeness.checkpoint_ranks().len() as u64;
            report.counters.insert("manifest.lost_ranks".into(), lost);
            report.counters.insert("manifest.checkpoint_ranks".into(), truncated);
            report
                .counters
                .insert("manifest.merged_ranks".into(), trace.nranks as u64 - lost - truncated);
            println!("{}", report.to_json());
        }
        Some("validate") if args.len() == 2 => {
            // Structural validation with a nonzero exit for CI gates: the
            // file must decode (errors name the byte offset) and the
            // decoded trace must be internally consistent (rule graph,
            // rank lengths, manifest coverage, timing maps). Emits the
            // schema-1 envelope; a decode failure carries "fidelity":null
            // because there is no trace to report on.
            let path = &args[1];
            let fail = |problem: String| -> ! {
                println!(
                    "{}\"ok\":false,\"problems\":[{}],\"fidelity\":null}}",
                    envelope("validate"),
                    json_str(&problem)
                );
                exit(1)
            };
            let bytes = match fs::read(path) {
                Ok(b) => b,
                Err(e) => fail(format!("cannot read {path}: {e}")),
            };
            let trace = match GlobalTrace::decode_auto(&bytes) {
                Ok(t) => t,
                Err(e) => fail(format!("decode failed: {e}")),
            };
            let issues = trace.validate();
            let merged = (0..trace.nranks)
                .filter(|&r| trace.completeness.status(r) == RankStatus::Merged)
                .count();
            let problems: Vec<String> = issues.iter().map(|i| json_str(i)).collect();
            println!(
                "{}\"ok\":{},\"bytes\":{},\"nranks\":{},\"merged\":{merged},\"lost\":{},\
                 \"truncated\":{},\"problems\":[{}]{}}}",
                envelope("validate"),
                issues.is_empty(),
                bytes.len(),
                trace.nranks,
                trace.completeness.lost_ranks().len(),
                trace.completeness.checkpoint_ranks().len(),
                problems.join(","),
                fidelity_field(&trace)
            );
            if !issues.is_empty() {
                exit(1)
            }
        }
        Some("signatures") if args.len() == 2 => {
            print!("{}", pilgrim::to_signature_listing(&load(&args[1])));
        }
        Some("export") if args.len() >= 2 => {
            let text = pilgrim::to_text(&load(&args[1]));
            match args.get(2) {
                Some(out) => {
                    fs::write(out, &text).expect("write export");
                    println!("exported {} lines to {out}", text.lines().count());
                }
                None => print!("{text}"),
            }
        }
        Some("decode") if args.len() >= 3 => {
            let trace = load(&args[1]);
            let rank: usize = args[2].parse().unwrap_or_else(|_| usage());
            let limit: usize =
                args.get(3).map(|l| l.parse().unwrap_or_else(|_| usage())).unwrap_or(50);
            let calls = decode_rank_calls(&trace, rank).unwrap_or_else(|e| {
                eprintln!("rank {rank} does not decode: {e}");
                exit(1)
            });
            for (i, call) in calls.iter().take(limit).enumerate() {
                let name = FuncId::from_id(call.func).map_or("?", |f| f.name());
                println!("{i:>6}  {name}  {} args", call.args.len());
            }
        }
        Some("query") if args.len() == 2 || args.len() == 3 => {
            // Per-signature call counts and apportioned aggregate time,
            // whole trace or one rank, straight from the grammar.
            let trace = load(&args[1]);
            let rank: Option<usize> = args.get(2).map(|r| r.parse().unwrap_or_else(|_| usage()));
            if rank.is_some_and(|r| r >= trace.nranks) {
                eprintln!("trace has {} ranks", trace.nranks);
                exit(1)
            }
            let metrics = MetricsRegistry::new(true);
            let index = TraceIndex::build_with_metrics(&trace, &metrics);
            let engine = QueryEngine::with_metrics(&trace, &index, &metrics);
            let counts = match rank {
                Some(r) => engine.rank_signature_counts(r),
                None => engine.signature_counts().clone(),
            };
            let rows = engine.summarize(&counts);
            let total: u64 = rows.iter().map(|r| r.count).sum();
            let mut out = envelope("query");
            let _ = write!(
                out,
                "\"scope\":{},\"calls\":{total},\"signatures\":[",
                rank.map_or_else(|| "\"trace\"".into(), |r| format!("\"rank {r}\""))
            );
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"term\":{},\"func\":{},\"count\":{},\"time_ns\":{}}}",
                    row.term,
                    json_str(func_name(row.func)),
                    row.count,
                    row.time_ns
                );
            }
            out.push(']');
            out.push_str(&fidelity_field(&trace));
            out.push('}');
            println!("{out}");
            report_query_timing(&metrics);
        }
        Some("slice") if args.len() == 5 => {
            // A window of one rank's calls via the streaming decoder:
            // constant memory regardless of where the window sits.
            let trace = load(&args[1]);
            let rank: usize = args[2].parse().unwrap_or_else(|_| usage());
            let start: u64 = args[3].parse().unwrap_or_else(|_| usage());
            let count: usize = args[4].parse().unwrap_or_else(|_| usage());
            if rank >= trace.nranks {
                eprintln!("trace has {} ranks", trace.nranks);
                exit(1)
            }
            let metrics = MetricsRegistry::new(true);
            let index = TraceIndex::build_with_metrics(&trace, &metrics);
            let timer = metrics.time_stage(Stage::Query);
            let mut out = envelope("slice");
            let _ = write!(
                out,
                "\"rank\":{rank},\"start\":{start},\"rank_calls\":{},\"calls\":[",
                index.rank_len(rank)
            );
            let window = CallIterator::new(&trace, &index, rank).skip(start as usize).take(count);
            for (i, decoded) in window.enumerate() {
                let call = decoded.unwrap_or_else(|e| {
                    eprintln!("rank {rank} call {}: {e}", start + i as u64);
                    exit(1)
                });
                if i > 0 {
                    out.push(',');
                }
                let arg_list: Vec<String> =
                    call.args.iter().map(|a| json_str(&pilgrim::format_arg(a))).collect();
                let _ = write!(
                    out,
                    "{{\"i\":{},\"func\":{},\"args\":[{}]}}",
                    start + i as u64,
                    json_str(func_name(call.func)),
                    arg_list.join(",")
                );
            }
            out.push(']');
            out.push_str(&fidelity_field(&trace));
            out.push('}');
            drop(timer);
            println!("{out}");
            report_query_timing(&metrics);
        }
        Some("matrix") if args.len() == 2 => {
            // Point-to-point communication matrix, computed without ever
            // expanding the grammar.
            let trace = load(&args[1]);
            let metrics = MetricsRegistry::new(true);
            let index = TraceIndex::build_with_metrics(&trace, &metrics);
            let engine = QueryEngine::with_metrics(&trace, &index, &metrics);
            let m = engine.comm_matrix();
            let fmt_matrix = |cells: &[u64]| {
                let rows: Vec<String> = cells
                    .chunks(m.nranks.max(1))
                    .map(|row| {
                        let items: Vec<String> = row.iter().map(u64::to_string).collect();
                        format!("[{}]", items.join(","))
                    })
                    .collect();
                format!("[{}]", rows.join(","))
            };
            let wc: Vec<String> = m.wildcard_recvs.iter().map(u64::to_string).collect();
            println!(
                "{}\"nranks\":{},\"sends\":{},\"recvs\":{},\"wildcard_recvs\":[{}],\
                 \"dropped\":{},\"total_sends\":{},\"total_recvs\":{}{}}}",
                envelope("matrix"),
                m.nranks,
                fmt_matrix(&m.sends),
                fmt_matrix(&m.recvs),
                wc.join(","),
                m.dropped,
                m.total_sends(),
                m.total_recvs(),
                fidelity_field(&trace)
            );
            report_query_timing(&metrics);
        }
        Some("fidelity") if args.len() == 2 => {
            // What the trace admits about itself: per-rank degradation
            // ladder progress, lost/truncated/salvaged ranks, and the full
            // governor event log. Exit 0 for lossless traces, 3 for
            // degraded ones, so scripts can gate on fidelity cheaply.
            let trace = load(&args[1]);
            let mut out = envelope("fidelity");
            out.push_str("\"fidelity\":");
            out.push_str(&fidelity_json(&trace));
            out.push_str(",\"events\":[");
            for (i, (rank, ev)) in trace.completeness.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"rank\":{rank},\"call_index\":{},\"stage\":{},\"component\":{},\
                     \"bytes\":{}}}",
                    ev.call_index,
                    json_str(ev.stage.name()),
                    json_str(ev.component.name()),
                    ev.bytes
                );
            }
            out.push_str("]}");
            println!("{out}");
            if trace.is_degraded() {
                exit(3)
            }
        }
        Some("recover") if args.len() == 2 => {
            // Rebuild every job a crashed ingest session left under its
            // spill directory: replay shard WALs, read back or salvage
            // containers, classify recovered/partial/lost. Exit 0 when
            // every job recovered clean, 3 when anything was partial or
            // lost, 1 when the directory itself is unreadable. The
            // envelope's "fidelity" is null — there is no single trace.
            let dir = std::path::Path::new(&args[1]);
            let report = pilgrim::IngestSession::recover(dir).unwrap_or_else(|e| {
                println!(
                    "{}\"ok\":false,\"problems\":[{}],\"fidelity\":null}}",
                    envelope("recover"),
                    json_str(&format!("cannot read {}: {e}", args[1]))
                );
                exit(1)
            });
            let mut out = envelope("recover");
            let _ = write!(out, "\"dir\":{},\"jobs\":[", json_str(&args[1]));
            for (i, job) in report.jobs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let problems: Vec<String> = job.problems.iter().map(|p| json_str(p)).collect();
                let _ = write!(
                    out,
                    "{{\"job\":{},\"state\":{},\"source\":{},\"calls\":{},\"nranks\":{},\
                     \"output\":{},\"problems\":[{}]}}",
                    job.job,
                    json_str(job.state.as_str()),
                    json_str(job.source.as_str()),
                    job.calls,
                    job.trace.as_ref().map_or(0, |t| t.nranks),
                    job.output
                        .as_ref()
                        .map_or_else(|| "null".into(), |p| json_str(&p.display().to_string())),
                    problems.join(",")
                );
            }
            let problems: Vec<String> = report.problems.iter().map(|p| json_str(p)).collect();
            let _ = write!(
                out,
                "],\"total\":{},\"recovered\":{},\"partial\":{},\"lost\":{},\"wal_files\":{},\
                 \"torn_wals\":{},\"quarantined\":{},\"problems\":[{}],\"fidelity\":null}}",
                report.jobs.len(),
                report.recovered(),
                report.partial(),
                report.lost(),
                report.wal_files,
                report.torn_wals,
                report.quarantined,
                problems.join(",")
            );
            println!("{out}");
            if report.partial() + report.lost() > 0 {
                exit(3)
            }
        }
        Some("replay") if args.len() == 2 || (args.len() == 3 && args[2] == "--strict") => {
            let strict = args.len() == 3;
            let trace = load(&args[1]);
            let report = pilgrim::partial_replay_report(&trace);
            if !report.is_fully_replayable() {
                // A truncated rank stops short of its matching sends and
                // receives; replaying it live would deadlock the world.
                degraded_exit("replay", &trace, &report)
            }
            if strict {
                match replay_strict(&trace) {
                    StrictReplay::Deterministic(retrace) => {
                        println!(
                            "{}\"strict\":true,\"calls\":{},\"ranks\":{},\"identical\":true,\
                             \"divergence\":null{}}}",
                            envelope("replay"),
                            retrace.rank_lengths.iter().sum::<u64>(),
                            retrace.nranks,
                            fidelity_field(&trace)
                        );
                    }
                    StrictReplay::Diverged(d) => {
                        println!(
                            "{}\"strict\":true,\"identical\":false,\"divergence\":{}{}}}",
                            envelope("replay"),
                            divergence_json(&d),
                            fidelity_field(&trace)
                        );
                        exit(1)
                    }
                    StrictReplay::Degraded(r) => degraded_exit("replay", &trace, &r),
                    StrictReplay::Undecodable(e) => {
                        eprintln!("trace does not decode: {e}");
                        exit(1)
                    }
                }
            } else {
                let replayed = pilgrim::replay(&trace);
                let same = replayed.decode_all_ranks() == trace.decode_all_ranks();
                println!(
                    "{}\"strict\":false,\"calls\":{},\"ranks\":{},\"identical\":{same},\
                     \"divergence\":null{}}}",
                    envelope("replay"),
                    replayed.rank_lengths.iter().sum::<u64>(),
                    replayed.nranks,
                    fidelity_field(&trace)
                );
                // Governor-degraded (frozen/sealed) traces replay every call
                // but legitimately renumber grammar segments on retrace:
                // that is a degraded verdict, not a loss.
                if trace.is_degraded() {
                    exit(3)
                }
                if !same {
                    exit(1)
                }
            }
        }
        Some("minimize") if args.len() == 4 => {
            // Shrink a diverging recording to the smallest call subset that
            // still reproduces the same (rank, expected, got) divergence.
            // The reproducer JSON carries no paths, so it can be committed
            // as a golden file and diffed byte-for-byte in CI.
            let trace = load(&args[1]);
            match minimize(&trace) {
                Ok(result) => {
                    let bytes = pilgrim::write_container(&result.trace);
                    fs::write(&args[2], &bytes).unwrap_or_else(|e| {
                        eprintln!("cannot write {}: {e}", args[2]);
                        exit(1)
                    });
                    let json = format!(
                        "{}\"divergence\":{},\"original_calls\":{},\"minimized_calls\":{},\
                         \"original_bytes\":{},\"minimized_bytes\":{},\"candidates_tried\":{}{}}}",
                        envelope("minimize"),
                        divergence_json(&result.divergence),
                        result.original_calls,
                        result.minimized_calls,
                        result.original_bytes,
                        result.minimized_bytes,
                        result.candidates_tried,
                        fidelity_field(&result.trace)
                    );
                    fs::write(&args[3], format!("{json}\n")).unwrap_or_else(|e| {
                        eprintln!("cannot write {}: {e}", args[3]);
                        exit(1)
                    });
                    println!("{json}");
                }
                Err(MinimizeError::Degraded(r)) => degraded_exit("minimize", &trace, &r),
                Err(e) => {
                    eprintln!("cannot minimize: {e}");
                    exit(1)
                }
            }
        }
        Some("mutate") if args.len() == 3 => {
            // Deterministically corrupt the first recorded nondet event so
            // CI can prove strict replay catches it at the exact site.
            let mut trace = load(&args[1]);
            let Some(log) = trace.nondet.as_mut() else {
                eprintln!("{} has no PGND section; record with --rr", args[1]);
                exit(1)
            };
            let site = log.ranks.iter_mut().enumerate().find_map(|(rank, events)| {
                events.iter_mut().next().map(|(&idx, ev)| {
                    *ev = match ev.clone() {
                        NondetEvent::Match { source, tag } => {
                            NondetEvent::Match { source: source + 1, tag }
                        }
                        NondetEvent::Iprobe { hit: Some((s, t)) } => {
                            NondetEvent::Iprobe { hit: Some((s + 1, t)) }
                        }
                        NondetEvent::Iprobe { hit: None } => {
                            NondetEvent::Iprobe { hit: Some((0, 0)) }
                        }
                        NondetEvent::AnyOf { index: Some(i) } => {
                            NondetEvent::AnyOf { index: Some(i + 1) }
                        }
                        NondetEvent::AnyOf { index: None } => NondetEvent::AnyOf { index: Some(0) },
                        NondetEvent::SomeOf { mut indices } => {
                            indices.push(indices.iter().max().map_or(0, |m| m + 1));
                            NondetEvent::SomeOf { indices }
                        }
                        NondetEvent::Flag { flag } => NondetEvent::Flag { flag: !flag },
                    };
                    (rank, idx)
                })
            });
            let Some((rank, idx)) = site else {
                eprintln!("{} recorded no nondet events", args[1]);
                exit(1)
            };
            let bytes = pilgrim::write_container(&trace);
            fs::write(&args[2], &bytes).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", args[2]);
                exit(1)
            });
            println!(
                "{}\"rank\":{rank},\"call_index\":{idx},\"out\":{}{}}}",
                envelope("mutate"),
                json_str(&args[2]),
                fidelity_field(&trace)
            );
        }
        _ => usage(),
    }
}
