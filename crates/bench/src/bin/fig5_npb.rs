//! Figure 5: NPB trace file sizes, Pilgrim vs ScalaTrace, for increasing
//! process counts. Six panels: LU, MG, IS, CG, SP, BT (SP/BT require
//! square process counts).
//!
//! We reproduce the *shape*: Pilgrim smaller everywhere; ScalaTrace
//! growing ~linearly in ranks (except where it can merge), Pilgrim
//! sublinear with plateaus (LU plateaus once all mesh-position classes
//! exist).

use mpi_workloads::by_name;
use pilgrim::PilgrimConfig;
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim, run_scalatrace, square_sweep, sweep};

fn main() {
    let max = max_procs(64);
    let its = iters(40);
    println!("== Figure 5: NPB trace size (KB), Pilgrim vs ScalaTrace ({its} iterations) ==");
    for bench in ["lu", "mg", "is", "cg"] {
        println!("\n-- {} --", bench.to_uppercase());
        println!(
            "{:<8}{:>16}{:>14}{:>10}{:>12}",
            "procs", "ScalaTrace", "Pilgrim", "ratio", "unique CFGs"
        );
        for p in sweep(8, max) {
            let pr = run_pilgrim(p, PilgrimConfig::default(), by_name(bench, its));
            let (st, _, _) = run_scalatrace(p, by_name(bench, its));
            println!(
                "{:<8}{:>16}{:>14}{:>9.1}x{:>12}",
                p,
                kb(st),
                kb(pr.trace.size_bytes()),
                st as f64 / pr.trace.size_bytes() as f64,
                pr.trace.unique_grammars
            );
        }
    }
    for bench in ["sp", "bt"] {
        println!("\n-- {} (square process counts) --", bench.to_uppercase());
        println!(
            "{:<8}{:>16}{:>14}{:>10}{:>12}",
            "procs", "ScalaTrace", "Pilgrim", "ratio", "unique CFGs"
        );
        for p in square_sweep(max) {
            let pr = run_pilgrim(p, PilgrimConfig::default(), by_name(bench, its));
            let (st, _, _) = run_scalatrace(p, by_name(bench, its));
            println!(
                "{:<8}{:>16}{:>14}{:>9.1}x{:>12}",
                p,
                kb(st),
                kb(pr.trace.size_bytes()),
                st as f64 / pr.trace.size_bytes() as f64,
                pr.trace.unique_grammars
            );
        }
    }
    println!("\nExpected shape: Pilgrim < ScalaTrace in every cell; ScalaTrace ~linear in procs.");
}
