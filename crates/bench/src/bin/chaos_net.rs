//! `chaos_net` — seeded fault-injection sweep over the `PNT1` wire
//! transport, with the no-silent-drop gate.
//!
//! ```text
//! chaos_net [--jobs J] [--ranks R] [--iters I] [--seed S] [--quick]
//! ```
//!
//! Each cell runs `J` concurrent jobs, one [`pilgrim::NetClient`] per
//! job (a tripped partition is client-global, so per-job clients keep
//! the cells independent), against one loopback [`pilgrim::serve`]
//! collector. The cell's [`pilgrim::NetFaultPlan`] injects refused
//! connects, mid-frame cuts, flipped bytes, duplicated frames, stalls,
//! and permanent partitions; every decision is a pure function of the
//! seed and the fault coordinates, so the table is bit-identical run to
//! run (`scripts/check.sh` runs the sweep twice and diffs the output).
//!
//! Per cell the table reports how each job's data ended up durable:
//! `delivered` (the collector acked the finish), `salvaged` (the client
//! degraded to local spill and/or collector-side recovery rebuilt the
//! job from the per-connection WALs), `lost` (nowhere). The gate is the
//! robustness invariant of the transport: **no silent drops** — every
//! job must be accounted for by the client outcome or the collector's
//! recovery in every cell, or the sweep exits 1.
//!
//! Timing-dependent counters (retransmits, reconnects, ack batching) go
//! to stderr only; stdout carries nothing that can vary run to run.

use std::collections::HashMap;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use pilgrim::recover::RecoveryState;
use pilgrim::{
    serve, IngestConfig, IngestSession, NetClient, NetClientConfig, NetFaultPlan, NetServerConfig,
    PilgrimConfig, PilgrimTracer, RetryPolicy, SegmentSink,
};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

#[derive(Clone, Copy)]
struct Sweep {
    jobs: usize,
    ranks: usize,
    iters: usize,
    seed: u64,
}

/// One sweep cell: a label, the fault plan, and the client retry budget
/// (the refuse-everything cell shrinks it so degrade fires fast).
struct Cell {
    name: &'static str,
    rate: f64,
    plan: NetFaultPlan,
    retry_attempts: u32,
}

fn cells(seed: u64) -> Vec<Cell> {
    let p = NetFaultPlan::new(seed);
    vec![
        Cell { name: "clean", rate: 0.0, plan: p.clone(), retry_attempts: 8 },
        Cell {
            name: "refuse",
            rate: 0.3,
            plan: p.clone().connect_refuse_rate(0.3),
            retry_attempts: 8,
        },
        Cell {
            name: "refuse",
            rate: 0.7,
            plan: p.clone().connect_refuse_rate(0.7),
            retry_attempts: 8,
        },
        Cell { name: "cut", rate: 0.1, plan: p.clone().cut_rate(0.1), retry_attempts: 8 },
        Cell { name: "cut", rate: 0.3, plan: p.clone().cut_rate(0.3), retry_attempts: 8 },
        Cell { name: "corrupt", rate: 0.1, plan: p.clone().corrupt_rate(0.1), retry_attempts: 8 },
        Cell { name: "corrupt", rate: 0.3, plan: p.clone().corrupt_rate(0.3), retry_attempts: 8 },
        Cell { name: "dup", rate: 0.2, plan: p.clone().duplicate_rate(0.2), retry_attempts: 8 },
        Cell { name: "dup", rate: 0.5, plan: p.clone().duplicate_rate(0.5), retry_attempts: 8 },
        Cell {
            name: "stall",
            rate: 0.3,
            plan: p.clone().stall_rate(0.3).stall_ms(2),
            retry_attempts: 8,
        },
        Cell {
            name: "refuse-all",
            rate: 1.0,
            plan: p.clone().connect_refuse_rate(1.0),
            retry_attempts: 2,
        },
        Cell {
            name: "partition",
            rate: 0.02,
            plan: p.clone().partition_rate(0.02),
            retry_attempts: 4,
        },
        Cell {
            name: "partition",
            rate: 0.05,
            plan: p.clone().partition_rate(0.05),
            retry_attempts: 4,
        },
        Cell {
            name: "mixed",
            rate: 0.1,
            plan: p.cut_rate(0.1).corrupt_rate(0.1).duplicate_rate(0.2),
            retry_attempts: 8,
        },
    ]
}

struct CellResult {
    delivered: usize,
    salvaged: usize,
    lost: usize,
}

fn run_cell(dir: &Path, cell_idx: usize, cell: &Cell, sw: Sweep) -> CellResult {
    let Sweep { jobs, ranks, iters, seed } = sw;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("cannot bind loopback: {e}");
        exit(1)
    });
    let session =
        IngestSession::new(IngestConfig::new().shards(2).spill_dir(dir)).unwrap_or_else(|e| {
            eprintln!("cannot start ingest session: {e}");
            exit(1)
        });
    let server = serve(listener, session, NetServerConfig::new()).unwrap_or_else(|e| {
        eprintln!("cannot serve: {e}");
        exit(1)
    });
    let addr = server.addr().to_string();

    let outcomes: Vec<_> = (0..jobs)
        .map(|j| {
            let addr = addr.clone();
            let plan = cell.plan.clone();
            let retry_attempts = cell.retry_attempts;
            let client_dir = dir.join(format!("client-{j}"));
            std::thread::spawn(move || {
                // One client per job: a tripped partition or an
                // exhausted retry budget degrades exactly this job.
                // Client ids are fixed per (cell, job) so every fault
                // coordinate reproduces run to run.
                let client_id = (cell_idx as u64) * 64 + j as u64 + 1;
                let cfg = NetClientConfig::new(addr)
                    .client_id(client_id)
                    .retry(
                        RetryPolicy::default()
                            .max_attempts(retry_attempts)
                            .backoff(Duration::from_millis(5)),
                    )
                    .heartbeat(Duration::from_millis(200))
                    .finish_timeout(Duration::from_secs(60))
                    .spill_dir(client_dir)
                    .faults(plan);
                let client = NetClient::start(cfg).unwrap_or_else(|e| {
                    eprintln!("cannot start net client: {e}");
                    exit(1)
                });
                // Odd jobs trace under a memory budget: the governor
                // seals segments mid-run, so the stream carries many
                // frames per rank and the faults have surface to hit.
                let mut tcfg = PilgrimConfig::default();
                if j % 2 == 1 {
                    tcfg = tcfg.memory_budget(3000);
                }
                let handle = client.open_job(0, ranks, tcfg.merge_identity_check);
                let workload = WORKLOADS[j % WORKLOADS.len()];
                let body = mpi_workloads::by_name(workload, iters);
                let sink: Arc<dyn SegmentSink> = Arc::new(handle.clone());
                let wcfg = mpi_sim::WorldConfig::new(ranks).seed(seed ^ (j as u64) << 8);
                mpi_sim::World::run(
                    &wcfg,
                    |rank| PilgrimTracer::new(rank, tcfg).with_segment_sink(sink.clone()),
                    move |env| body(env),
                );
                let out = handle.finish();
                let stats = client.shutdown();
                eprintln!(
                    "  cell {cell_idx} job {j}: {} connects, {} retransmits, {} spilled",
                    stats.connects, stats.retransmits, stats.spilled_records
                );
                out
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect();

    server.stop();
    // Collector-side recovery over the per-connection WAL union: the
    // second half of the accounting for jobs the client couldn't settle.
    let states: HashMap<u64, RecoveryState> = pilgrim::recover::recover_dir(dir)
        .map(|r| r.jobs.iter().map(|j| (j.job, j.state)).collect())
        .unwrap_or_default();

    let mut result = CellResult { delivered: 0, salvaged: 0, lost: 0 };
    for out in &outcomes {
        if out.delivered {
            result.delivered += 1;
        } else if out.local_path.is_some()
            || states.get(&out.job).is_some_and(|s| *s != RecoveryState::Lost)
        {
            result.salvaged += 1;
        } else {
            result.lost += 1;
            eprintln!("  cell {cell_idx}: job {} lost! problems: {:?}", out.job, out.problems);
        }
    }
    result
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = flag(&args, "--jobs").unwrap_or(if quick { 4 } else { 6 }) as usize;
    let ranks = flag(&args, "--ranks").unwrap_or(2) as usize;
    let iters = flag(&args, "--iters").unwrap_or(if quick { 5 } else { 10 }) as usize;
    let seed = flag(&args, "--seed").unwrap_or(0x4E45_5443);

    let base = std::env::temp_dir().join(format!("pilgrim-chaos-net-{seed:x}"));
    let _ = std::fs::remove_dir_all(&base);

    println!("chaos_net: {jobs} jobs x {ranks} ranks, {iters} iters, seed {seed:#x}");
    println!("| cell | rate | jobs | delivered | salvaged | lost |");
    println!("|---|---:|---:|---:|---:|---:|");

    let sw = Sweep { jobs, ranks, iters, seed };
    let mut total_lost = 0usize;
    for (i, cell) in cells(seed).iter().enumerate() {
        let dir = base.join(format!("cell-{i}"));
        let r = run_cell(&dir, i, cell, sw);
        println!(
            "| {} | {:.2} | {jobs} | {} | {} | {} |",
            cell.name, cell.rate, r.delivered, r.salvaged, r.lost
        );
        total_lost += r.lost;
    }
    let _ = std::fs::remove_dir_all(&base);
    if total_lost > 0 {
        eprintln!("chaos_net: {total_lost} jobs silently dropped");
        exit(1)
    }
    println!("chaos_net: every job accounted for in every cell");
}
