//! `governor_sweep` — memory-budget sweep on the compression-hostile
//! adversarial workload: how far up the degradation ladder each budget
//! pushes the tracer, and what that costs in trace size.
//!
//! ```text
//! governor_sweep [--ranks N] [--iters N] [--seed N]
//! ```
//!
//! Each row runs the same seeded adversarial kernel under one per-rank
//! memory budget and reports the peak governed working set, the highest
//! ladder stage reached, transition/seal counts, the serialized trace
//! size, and the compression ratio against the raw (uncompressed) trace.
//! The whole sweep is deterministic: same seed, same rows.

use mpi_sim::{Env, World, WorldConfig};
use mpi_workloads::adversarial::adversarial_seeded;
use pilgrim::{DegradationStage, PilgrimConfig, PilgrimTracer, TimingMode};
use pilgrim_bench::run_raw;

struct SweepRow {
    budget: Option<usize>,
    peak_bytes: u64,
    stage: Option<DegradationStage>,
    transitions: usize,
    seals: usize,
    trace_bytes: usize,
}

fn run_one(nranks: usize, iters: usize, seed: u64, budget: Option<usize>) -> SweepRow {
    let mut cfg = PilgrimConfig::new().timing(TimingMode::Lossy { base: 1.2 });
    if let Some(b) = budget {
        cfg = cfg.memory_budget(b);
    }
    let mut tracers = World::run(
        &WorldConfig::new(nranks),
        move |rank| PilgrimTracer::new(rank, cfg),
        move |env: &mut Env| adversarial_seeded(env, iters, seed),
    );
    let peak_bytes = tracers.iter().map(|t| t.governor().peak_bytes()).max().unwrap_or(0);
    let stage = tracers
        .iter()
        .flat_map(|t| t.governor().events().iter().map(|e| e.stage))
        .max_by_key(|s| s.code());
    let transitions: usize = tracers.iter().map(|t| t.governor().events().len()).sum();
    let seals = tracers
        .iter()
        .flat_map(|t| t.governor().events())
        .filter(|e| e.stage == DegradationStage::SealSegment)
        .count();
    let trace = tracers[0].take_output().trace.expect("rank 0 trace");
    SweepRow { budget, peak_bytes, stage, transitions, seals, trace_bytes: trace.serialize().len() }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            std::process::exit(2)
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nranks = flag(&args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(&args, "--iters").unwrap_or(300) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);

    let raw_bytes = run_raw(
        nranks,
        std::sync::Arc::new(move |env: &mut Env| adversarial_seeded(env, iters, seed)),
    );
    println!(
        "governor sweep: adversarial workload, {nranks} ranks, {iters} iters, seed {seed} \
         (raw trace {raw_bytes} bytes)"
    );
    println!(
        "{:>10} {:>12} {:>17} {:>12} {:>6} {:>12} {:>8}",
        "budget", "peak bytes", "stage reached", "transitions", "seals", "trace bytes", "ratio"
    );
    let budgets: [Option<usize>; 5] =
        [None, Some(1 << 20), Some(256 << 10), Some(64 << 10), Some(16 << 10)];
    for budget in budgets {
        let row = run_one(nranks, iters, seed, budget);
        println!(
            "{:>10} {:>12} {:>17} {:>12} {:>6} {:>12} {:>7.1}x",
            row.budget.map_or("none".into(), |b| format!("{} KiB", b >> 10)),
            // An unbudgeted governor does no accounting, so it has no peak.
            if row.budget.is_some() { row.peak_bytes.to_string() } else { "-".into() },
            row.stage.map_or("-", DegradationStage::name),
            row.transitions,
            row.seals,
            row.trace_bytes,
            raw_bytes as f64 / row.trace_bytes as f64
        );
    }
}
