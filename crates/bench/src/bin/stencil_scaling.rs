//! §4.1: stencil benchmarks — the trace file size stops growing beyond
//! 9 ranks (2D 5-point, non-periodic) / 27 ranks (3D 7-point, periodic),
//! and is independent of the iteration count.

use mpi_workloads::by_name;
use pilgrim::PilgrimConfig;
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim};

fn main() {
    let max = max_procs(64);
    let its = iters(100);

    println!("== §4.1: stencil trace size vs number of processes ({its} iterations) ==\n");
    println!("{:<10}{:>12}{:>12}{:>18}", "procs", "2D (KB)", "3D (KB)", "unique grammars");
    let mut procs: Vec<usize> = vec![4, 9, 16, 25, 27, 36, 64];
    procs.retain(|&p| p <= max);
    for p in procs {
        let r2 = run_pilgrim(p, PilgrimConfig::default(), by_name("stencil2d", its));
        let r3 = run_pilgrim(p, PilgrimConfig::default(), by_name("stencil3d", its));
        println!(
            "{:<10}{:>12}{:>12}{:>11} / {}",
            p,
            kb(r2.trace.size_bytes()),
            kb(r3.trace.size_bytes()),
            r2.trace.unique_grammars,
            r3.trace.unique_grammars
        );
    }

    println!(
        "\n== trace size vs iterations (9 procs 2D / 27 procs 3D, capped by --max-procs) ==\n"
    );
    println!("{:<12}{:>12}{:>12}", "iterations", "2D (KB)", "3D (KB)");
    let p3 = 27.min(max);
    for its in [10, 100, 1000] {
        let r2 = run_pilgrim(9.min(max), PilgrimConfig::default(), by_name("stencil2d", its));
        let r3 = run_pilgrim(p3, PilgrimConfig::default(), by_name("stencil3d", its));
        println!("{:<12}{:>12}{:>12}", its, kb(r2.trace.size_bytes()), kb(r3.trace.size_bytes()));
    }
    println!("\nExpected shape: sizes flat beyond 9 (2D) / 27 (3D) ranks and flat in iterations.");
}
