//! `pilgrimd` — the streaming multi-job trace collector built on
//! [`pilgrim::IngestSession`].
//!
//! ```text
//! pilgrimd --jobs N [--ranks R] [--iters I] [--budget B] [--shards S] [--out DIR]
//!          [--wal] [--timeout-ms T] [--crash-at-job K]
//! ```
//!
//! Runs `N` concurrent simulated worlds (driver thread each), every rank
//! streaming its grammar segments into one shared ingest session
//! mid-run. Workloads rotate through stencil2d / stencil3d / lu / mg so
//! concurrent jobs carry different CSTs. With `--budget B`, odd-numbered
//! jobs trace under a per-rank memory budget: the governor seals
//! segments mid-run and the stream carries many segments per rank
//! instead of one. With `--out DIR`, every finished job is spilled as a
//! crash-safe `PGC1` container and re-validated by decoding it back.
//!
//! Crash-resilience flags: `--wal` write-ahead-logs every stream message
//! under `DIR/wal/` so `trace_tool recover DIR` can rebuild interrupted
//! jobs; `--timeout-ms T` seals jobs still incomplete `T` ms after
//! opening; `--crash-at-job K` aborts the whole process the moment the
//! `K`-th job finishes — the remaining jobs die mid-stream, which is the
//! fixture for the recovery gate in `scripts/check.sh`.
//!
//! Exit status is the CI gate: `0` when every job is lossless (no
//! ingest problems, no lost or truncated ranks, spilled containers
//! decode back to the in-memory trace), `1` otherwise (and no exit at
//! all under `--crash-at-job`, which dies by `abort`).

use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pilgrim::{GlobalTrace, IngestConfig, IngestSession, JobDesc, PilgrimConfig};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = flag(&args, "--jobs").unwrap_or(8) as usize;
    let ranks = flag(&args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(&args, "--iters").unwrap_or(30) as usize;
    let budget = flag(&args, "--budget").map(|b| b as usize);
    let shards = flag(&args, "--shards").unwrap_or(4) as usize;
    let wal = args.iter().any(|a| a == "--wal");
    let timeout = flag(&args, "--timeout-ms").map(Duration::from_millis);
    let crash_at = flag(&args, "--crash-at-job");
    let out_dir = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a directory");
            exit(2)
        })
    });

    let mut cfg = IngestConfig::new().shards(shards).wal(wal);
    if let Some(dir) = &out_dir {
        cfg = cfg.spill_dir(dir);
    }
    let session = Arc::new(IngestSession::new(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start ingest session: {e}");
        exit(1)
    }));

    println!(
        "pilgrimd: {jobs} concurrent jobs x {ranks} ranks, {iters} iters, {shards} shards{}{}{}{}",
        budget.map_or(String::new(), |b| format!(", budget {b} B on odd jobs")),
        out_dir.as_deref().map_or(String::new(), |d| format!(", spilling to {d}")),
        if wal { ", WAL on" } else { "" },
        crash_at.map_or(String::new(), |k| format!(", crashing after job {k}"))
    );

    let finished = Arc::new(AtomicU64::new(0));
    let outcomes: Vec<_> = (0..jobs)
        .map(|j| {
            let session = session.clone();
            let finished = finished.clone();
            std::thread::spawn(move || {
                let workload = WORKLOADS[j % WORKLOADS.len()];
                let mut tcfg = PilgrimConfig::default();
                if let (Some(b), true) = (budget, j % 2 == 1) {
                    tcfg = tcfg.memory_budget(b);
                }
                let mut desc = JobDesc::new(workload, ranks).seed(0x5EED + j as u64).config(tcfg);
                if let Some(t) = timeout {
                    desc = desc.timeout(t);
                }
                let body = mpi_workloads::by_name(workload, iters);
                let outcome = session.submit_world(&desc, move |env| body(env));
                // The crash fixture: die hard — no Drop, no flush — the
                // moment the K-th job completes, leaving the rest of the
                // fleet mid-stream for `trace_tool recover` to rebuild.
                if let Some(k) = crash_at {
                    if finished.fetch_add(1, Ordering::SeqCst) + 1 >= k {
                        eprintln!("pilgrimd: injected crash after {k} finished jobs");
                        std::process::abort();
                    }
                }
                (workload, outcome)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect();

    let mut failures = 0usize;
    for (workload, out) in &outcomes {
        let trace = out.trace.as_ref();
        let lost = trace.map_or(0, |t| t.completeness.lost_ranks().len());
        let truncated = trace.map_or(0, |t| t.completeness.checkpoint_ranks().len());
        // Re-validate the spill: the container on disk must decode back
        // to exactly the trace the shard handed us.
        let spill_ok = match (&out.spill_path, trace) {
            (Some(path), Some(t)) => std::fs::read(path)
                .ok()
                .and_then(|b| GlobalTrace::decode_auto(&b).ok())
                .is_some_and(|back| back.serialize() == t.serialize()),
            (Some(_), None) => false,
            (None, _) => true,
        };
        let ok = out.is_lossless() && lost == 0 && truncated == 0 && spill_ok;
        if !ok {
            failures += 1;
        }
        println!(
            "  job {:>3} {workload:<10} {:>8} calls {:>5} segments {:>9} B  {}{}",
            out.job,
            out.calls,
            out.segments,
            out.ingested_bytes,
            if ok { "OK" } else { "LOSS" },
            if out.problems.is_empty() {
                String::new()
            } else {
                format!("  problems: {}", out.problems.join("; "))
            }
        );
    }

    let stats = session.stats();
    println!(
        "session: {} segments, {} B ingested, {} backpressure events, {}/{} jobs finished",
        stats.segments, stats.bytes, stats.backpressure, stats.jobs_finished, stats.jobs_opened
    );
    if wal || stats.worker_panics + stats.quarantined + stats.jobs_sealed + stats.spill_errors > 0 {
        println!(
            "resilience: {} WAL records ({} B, {} errors), {} panics caught, {} retries, \
             {} quarantined, {} sealed, {} stalled, {} spill errors",
            stats.wal_records,
            stats.wal_bytes,
            stats.wal_errors,
            stats.worker_panics,
            stats.retries,
            stats.quarantined,
            stats.jobs_sealed,
            stats.stalled,
            stats.spill_errors
        );
    }
    if failures > 0 {
        eprintln!("pilgrimd: {failures} of {jobs} jobs lost data");
        exit(1)
    }
    println!("pilgrimd: all {jobs} jobs lossless");
}
