//! `pilgrimd` — the streaming multi-job trace collector built on
//! [`pilgrim::IngestSession`], with a `PNT1` networked mode.
//!
//! ```text
//! pilgrimd --jobs N [--ranks R] [--iters I] [--budget B] [--shards S] [--out DIR]
//!          [--wal] [--timeout-ms T] [--crash-at-job K]
//! pilgrimd serve --listen ADDR --out DIR [--shards S] [--timeout-ms T]
//!          [--expect-jobs N] [--crash-at-job K] [--io-timeout-ms T]
//!          [--auth-key-file PATH] [--max-conns N] [--max-frame-len N]
//!          [--max-bytes-per-sec N] [--max-frames-per-sec N]
//!          [--max-open-jobs N] [--max-wal-bytes N] [--shed-saturation F]
//!          [--drain-grace-ms T]
//! pilgrimd send --addr ADDR --jobs N [--ranks R] [--iters I] [--budget B]
//!          [--client-id C] [--spill DIR] [--retry-attempts A] [--backoff-ms B]
//!          [--finish-timeout-ms T] [--auth-key-file PATH] [--fault-seed S]
//!          [--refuse-rate P] [--cut-rate P] [--corrupt-rate P] [--dup-rate P]
//!          [--stall-rate P] [--partition-rate P]
//! ```
//!
//! The first form is the in-process collector: `N` concurrent simulated
//! worlds stream into one shared ingest session (see the legacy docs in
//! `run_local`). `serve` exposes the same session over TCP: it binds
//! `ADDR`, prints a schema-1 JSON line naming the bound address (so a
//! harness can read the port back), and collects `PNT1` streams from any
//! number of `send` clients, acking each frame only after it is durable
//! in a per-connection WAL under `DIR/wal/`. `send` drives `N` simulated
//! worlds through a [`pilgrim::NetClient`] — reconnecting with backoff,
//! resuming from acks, and degrading to a local spill when the retry
//! budget runs out — with every wire fault injectable through a seeded
//! [`pilgrim::NetFaultPlan`].
//!
//! Every mode ends with one machine-readable summary line on stdout:
//! a schema-1 JSON envelope (`{"schema":1,"command":...,"exit":E,...}`).
//! Exit codes are uniform: `0` all jobs lossless/delivered, `1` data
//! loss, `2` usage error, `3` degraded (the client fell back to local
//! spill but every job is accounted for). `--crash-at-job` dies by
//! `abort` and reports nothing — that is its job.
//!
//! `serve` shuts down gracefully on SIGINT/SIGTERM: it stops accepting,
//! drains in-flight connections for `--drain-grace-ms`, and still emits
//! the final envelope (with `"graceful":true`) — so an operator's ^C
//! never loses acked data or the summary line.

use std::io::Write as _;
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pilgrim::{
    serve, AuthKey, GlobalTrace, IngestConfig, IngestSession, JobDesc, NetClient, NetClientConfig,
    NetFaultPlan, NetServerConfig, PilgrimConfig, PilgrimTracer, RetryPolicy, SegmentSink,
};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn fflag(args: &[String], name: &str) -> Option<f64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn sflag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            exit(2)
        })
    })
}

/// Reads `--auth-key-file` when present; a missing or empty key file is
/// a usage error (exit 2), not something to silently run without.
fn auth_key_flag(args: &[String]) -> Option<AuthKey> {
    let path = sflag(args, "--auth-key-file")?;
    match AuthKey::from_file(std::path::Path::new(&path)) {
        Ok(key) => Some(key),
        Err(e) => {
            eprintln!("cannot load auth key from {path}: {e}");
            exit(2)
        }
    }
}

/// Set by the SIGINT/SIGTERM handler; `serve` polls it and drains.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_sig: i32) {
    // An atomic store is async-signal-safe; everything else happens on
    // the main thread when it notices the flag.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Routes SIGINT (2) and SIGTERM (15) to [`on_shutdown_signal`] via the
/// raw libc `signal` symbol — no crate dependency, and `signal`'s
/// coarse semantics are all a latch flag needs.
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_shutdown_signal);
        signal(SIGTERM, on_shutdown_signal);
    }
}

/// Prints the one machine-readable summary line and exits with its code.
fn emit_envelope(command: &str, fields: &[(&str, String)], code: i32) -> ! {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    println!("{{\"schema\":1,\"command\":\"{command}\",{},\"exit\":{code}}}", body.join(","));
    exit(code)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("send") => run_send(&args[1..]),
        _ => run_local(&args),
    }
}

// ---------------------------------------------------------------------------
// serve: the networked collector
// ---------------------------------------------------------------------------

fn run_serve(args: &[String]) -> ! {
    let listen = sflag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let Some(out_dir) = sflag(args, "--out") else {
        eprintln!("serve needs --out DIR (the WAL and container directory)");
        exit(2)
    };
    let shards = flag(args, "--shards").unwrap_or(4) as usize;
    let timeout = flag(args, "--timeout-ms").map(Duration::from_millis);
    let io_timeout = flag(args, "--io-timeout-ms").unwrap_or(5000);
    let expect_jobs = flag(args, "--expect-jobs");
    let crash_at = flag(args, "--crash-at-job");
    let auth_key = auth_key_flag(args);
    let drain_grace = Duration::from_millis(flag(args, "--drain-grace-ms").unwrap_or(2000));

    // Bind with a short retry: a restarted collector may race the dying
    // incarnation's socket teardown.
    let mut listener = None;
    for _ in 0..200 {
        match std::net::TcpListener::bind(&listen) {
            Ok(l) => {
                listener = Some(l);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let Some(listener) = listener else {
        eprintln!("cannot bind {listen}");
        exit(1)
    };

    let session = IngestSession::new(IngestConfig::new().shards(shards).spill_dir(&out_dir))
        .unwrap_or_else(|e| {
            eprintln!("cannot start ingest session: {e}");
            exit(1)
        });
    let mut cfg = NetServerConfig::new().io_timeout(Duration::from_millis(io_timeout));
    if let Some(t) = timeout {
        cfg = cfg.job_timeout(t);
    }
    if let Some(k) = crash_at {
        cfg = cfg.kill_after_finished(k);
    }
    if let Some(key) = auth_key {
        cfg = cfg.auth_key(key);
    }
    if let Some(n) = flag(args, "--max-conns") {
        cfg = cfg.max_connections(n as usize);
    }
    if let Some(n) = flag(args, "--max-frame-len") {
        cfg = cfg.max_frame_len(n as usize);
    }
    if let Some(n) = flag(args, "--max-bytes-per-sec") {
        cfg = cfg.max_conn_bytes_per_sec(n);
    }
    if let Some(n) = flag(args, "--max-frames-per-sec") {
        cfg = cfg.max_conn_frames_per_sec(n);
    }
    if let Some(n) = flag(args, "--max-open-jobs") {
        cfg = cfg.max_open_jobs(n);
    }
    if let Some(n) = flag(args, "--max-wal-bytes") {
        cfg = cfg.max_wal_bytes(n);
    }
    if let Some(f) = fflag(args, "--shed-saturation") {
        cfg = cfg.shed_saturation(f);
    }
    install_shutdown_handler();
    let server = serve(listener, session, cfg).unwrap_or_else(|e| {
        eprintln!("cannot serve on {listen}: {e}");
        exit(1)
    });

    // First line, flushed before any collection: the bound address, so a
    // harness that asked for port 0 can read the real port back.
    println!("{{\"schema\":1,\"command\":\"serve\",\"listening\":\"{}\"}}", server.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "pilgrimd serve: listening on {}, spilling to {out_dir}{}{}",
        server.addr(),
        expect_jobs.map_or(String::new(), |n| format!(", expecting {n} jobs")),
        crash_at.map_or(String::new(), |k| format!(", crashing after job {k}"))
    );

    let mut graceful = false;
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            graceful = true;
            break;
        }
        if server.stopped() {
            if crash_at.is_some() {
                // The kill hook fired: die exactly like a crashed
                // collector — no drain, no envelope. The per-connection
                // WALs are the only thing left behind, on purpose.
                eprintln!("pilgrimd serve: injected crash after {} jobs", server.finished_jobs());
                std::process::abort();
            }
            break;
        }
        if expect_jobs.is_some_and(|n| server.finished_jobs() >= n) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = if graceful {
        eprintln!(
            "pilgrimd serve: signal received, draining for up to {} ms",
            drain_grace.as_millis()
        );
        server.drain(drain_grace)
    } else {
        server.stop()
    };
    eprintln!("pilgrimd serve: {stats:?}");
    let code = i32::from(stats.wal_errors > 0);
    emit_envelope(
        "serve",
        &[
            ("jobs_opened", stats.jobs_opened.to_string()),
            ("jobs_finished", stats.jobs_finished.to_string()),
            ("connections", stats.connections.to_string()),
            ("frames", stats.frames.to_string()),
            ("acks", stats.acks.to_string()),
            ("dup_frames", stats.dup_frames.to_string()),
            ("torn_conns", stats.torn_conns.to_string()),
            ("stale_finishes", stats.stale_finishes.to_string()),
            ("wal_errors", stats.wal_errors.to_string()),
            ("wal_bytes", stats.wal_bytes.to_string()),
            ("auth_failures", stats.auth_failures.to_string()),
            ("version_skew", stats.version_skew.to_string()),
            ("sheds", stats.sheds.to_string()),
            ("throttled", stats.throttled.to_string()),
            ("slow_loris_closed", stats.slow_loris_closed.to_string()),
            ("graceful", graceful.to_string()),
        ],
        code,
    )
}

// ---------------------------------------------------------------------------
// send: the networked client fleet
// ---------------------------------------------------------------------------

fn run_send(args: &[String]) -> ! {
    let Some(addr) = sflag(args, "--addr") else {
        eprintln!("send needs --addr HOST:PORT");
        exit(2)
    };
    let jobs = flag(args, "--jobs").unwrap_or(4) as usize;
    let ranks = flag(args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(args, "--iters").unwrap_or(20) as usize;
    let budget = flag(args, "--budget").map(|b| b as usize);
    let client_id = flag(args, "--client-id").unwrap_or(1);
    let seed = flag(args, "--seed").unwrap_or(0x5EED);
    let spill = sflag(args, "--spill");
    let retry = RetryPolicy::default()
        .max_attempts(flag(args, "--retry-attempts").unwrap_or(8) as u32)
        .backoff(Duration::from_millis(flag(args, "--backoff-ms").unwrap_or(10)));
    let finish_timeout = Duration::from_millis(flag(args, "--finish-timeout-ms").unwrap_or(30_000));
    let faults = NetFaultPlan::new(flag(args, "--fault-seed").unwrap_or(0))
        .connect_refuse_rate(fflag(args, "--refuse-rate").unwrap_or(0.0))
        .cut_rate(fflag(args, "--cut-rate").unwrap_or(0.0))
        .corrupt_rate(fflag(args, "--corrupt-rate").unwrap_or(0.0))
        .duplicate_rate(fflag(args, "--dup-rate").unwrap_or(0.0))
        .stall_rate(fflag(args, "--stall-rate").unwrap_or(0.0))
        .partition_rate(fflag(args, "--partition-rate").unwrap_or(0.0));

    let mut ccfg = NetClientConfig::new(addr.clone())
        .client_id(client_id)
        .retry(retry)
        .finish_timeout(finish_timeout)
        .faults(faults);
    if let Some(dir) = &spill {
        ccfg = ccfg.spill_dir(dir);
    }
    if let Some(key) = auth_key_flag(args) {
        ccfg = ccfg.auth_key(key);
    }
    let client = Arc::new(NetClient::start(ccfg).unwrap_or_else(|e| {
        eprintln!("cannot start net client: {e}");
        exit(1)
    }));
    eprintln!("pilgrimd send: {jobs} jobs x {ranks} ranks, {iters} iters -> {addr}");

    let outcomes: Vec<_> = (0..jobs)
        .map(|j| {
            let client = client.clone();
            std::thread::spawn(move || {
                let workload = WORKLOADS[j % WORKLOADS.len()];
                let mut tcfg = PilgrimConfig::default();
                if let (Some(b), true) = (budget, j % 2 == 1) {
                    tcfg = tcfg.memory_budget(b);
                }
                let handle = client.open_job(j as u64, ranks, tcfg.merge_identity_check);
                let body = mpi_workloads::by_name(workload, iters);
                let sink: Arc<dyn SegmentSink> = Arc::new(handle.clone());
                let wcfg = mpi_sim::WorldConfig::new(ranks)
                    .seed(seed + j as u64)
                    .label(format!("{workload}#net{j}"));
                mpi_sim::World::run(
                    &wcfg,
                    |rank| PilgrimTracer::new(rank, tcfg).with_segment_sink(sink.clone()),
                    move |env| body(env),
                );
                (workload, handle.finish())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect();

    let mut delivered = 0usize;
    let mut local = 0usize;
    let mut lost = 0usize;
    for (workload, out) in &outcomes {
        let verdict = if out.delivered {
            delivered += 1;
            if out.lossless == Some(true) {
                "DELIVERED"
            } else {
                "DELIVERED (lossy)"
            }
        } else if out.local_path.is_some() {
            local += 1;
            "LOCAL SPILL"
        } else {
            lost += 1;
            "LOST"
        };
        eprintln!(
            "  job {:>20} {workload:<10} {verdict}{}",
            out.job,
            if out.problems.is_empty() {
                String::new()
            } else {
                format!("  problems: {}", out.problems.join("; "))
            }
        );
    }
    let client = Arc::try_unwrap(client).unwrap_or_else(|_| {
        eprintln!("a driver thread leaked its client handle");
        exit(1)
    });
    let stats = client.shutdown();
    eprintln!("pilgrimd send: {stats:?}");

    let code = if lost > 0 {
        1
    } else if stats.degraded || local > 0 {
        3
    } else {
        0
    };
    emit_envelope(
        "send",
        &[
            ("jobs", jobs.to_string()),
            ("delivered", delivered.to_string()),
            ("local", local.to_string()),
            ("lost", lost.to_string()),
            ("degraded", stats.degraded.to_string()),
            ("connects", stats.connects.to_string()),
            ("connect_failures", stats.connect_failures.to_string()),
            ("retransmits", stats.retransmits.to_string()),
            ("acks", stats.acks.to_string()),
            ("spilled_records", stats.spilled_records.to_string()),
            ("dropped_records", stats.dropped_records.to_string()),
            ("busy_sheds", stats.busy_sheds.to_string()),
            ("auth_failed", stats.auth_failed.to_string()),
        ],
        code,
    )
}

// ---------------------------------------------------------------------------
// local: the original in-process collector
// ---------------------------------------------------------------------------

fn run_local(args: &[String]) -> ! {
    let jobs = flag(args, "--jobs").unwrap_or(8) as usize;
    let ranks = flag(args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(args, "--iters").unwrap_or(30) as usize;
    let budget = flag(args, "--budget").map(|b| b as usize);
    let shards = flag(args, "--shards").unwrap_or(4) as usize;
    let wal = args.iter().any(|a| a == "--wal");
    let timeout = flag(args, "--timeout-ms").map(Duration::from_millis);
    let crash_at = flag(args, "--crash-at-job");
    let out_dir = sflag(args, "--out");

    let mut cfg = IngestConfig::new().shards(shards).wal(wal);
    if let Some(dir) = &out_dir {
        cfg = cfg.spill_dir(dir);
    }
    let session = Arc::new(IngestSession::new(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start ingest session: {e}");
        exit(1)
    }));

    println!(
        "pilgrimd: {jobs} concurrent jobs x {ranks} ranks, {iters} iters, {shards} shards{}{}{}{}",
        budget.map_or(String::new(), |b| format!(", budget {b} B on odd jobs")),
        out_dir.as_deref().map_or(String::new(), |d| format!(", spilling to {d}")),
        if wal { ", WAL on" } else { "" },
        crash_at.map_or(String::new(), |k| format!(", crashing after job {k}"))
    );

    let finished = Arc::new(AtomicU64::new(0));
    let outcomes: Vec<_> = (0..jobs)
        .map(|j| {
            let session = session.clone();
            let finished = finished.clone();
            std::thread::spawn(move || {
                let workload = WORKLOADS[j % WORKLOADS.len()];
                let mut tcfg = PilgrimConfig::default();
                if let (Some(b), true) = (budget, j % 2 == 1) {
                    tcfg = tcfg.memory_budget(b);
                }
                let mut desc = JobDesc::new(workload, ranks).seed(0x5EED + j as u64).config(tcfg);
                if let Some(t) = timeout {
                    desc = desc.timeout(t);
                }
                let body = mpi_workloads::by_name(workload, iters);
                let outcome = session.submit_world(&desc, move |env| body(env));
                // The crash fixture: die hard — no Drop, no flush — the
                // moment the K-th job completes, leaving the rest of the
                // fleet mid-stream for `trace_tool recover` to rebuild.
                if let Some(k) = crash_at {
                    if finished.fetch_add(1, Ordering::SeqCst) + 1 >= k {
                        eprintln!("pilgrimd: injected crash after {k} finished jobs");
                        std::process::abort();
                    }
                }
                (workload, outcome)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect();

    let mut failures = 0usize;
    for (workload, out) in &outcomes {
        let trace = out.trace.as_ref();
        let lost = trace.map_or(0, |t| t.completeness.lost_ranks().len());
        let truncated = trace.map_or(0, |t| t.completeness.checkpoint_ranks().len());
        // Re-validate the spill: the container on disk must decode back
        // to exactly the trace the shard handed us.
        let spill_ok = match (&out.spill_path, trace) {
            (Some(path), Some(t)) => std::fs::read(path)
                .ok()
                .and_then(|b| GlobalTrace::decode_auto(&b).ok())
                .is_some_and(|back| back.serialize() == t.serialize()),
            (Some(_), None) => false,
            (None, _) => true,
        };
        let ok = out.is_lossless() && lost == 0 && truncated == 0 && spill_ok;
        if !ok {
            failures += 1;
        }
        println!(
            "  job {:>3} {workload:<10} {:>8} calls {:>5} segments {:>9} B  {}{}",
            out.job,
            out.calls,
            out.segments,
            out.ingested_bytes,
            if ok { "OK" } else { "LOSS" },
            if out.problems.is_empty() {
                String::new()
            } else {
                format!("  problems: {}", out.problems.join("; "))
            }
        );
    }

    let stats = session.stats();
    eprintln!(
        "session: {} segments, {} B ingested, {} backpressure events, {}/{} jobs finished",
        stats.segments, stats.bytes, stats.backpressure, stats.jobs_finished, stats.jobs_opened
    );
    if wal || stats.worker_panics + stats.quarantined + stats.jobs_sealed + stats.spill_errors > 0 {
        eprintln!(
            "resilience: {} WAL records ({} B, {} errors), {} panics caught, {} retries, \
             {} quarantined, {} sealed, {} stalled, {} spill errors",
            stats.wal_records,
            stats.wal_bytes,
            stats.wal_errors,
            stats.worker_panics,
            stats.retries,
            stats.quarantined,
            stats.jobs_sealed,
            stats.stalled,
            stats.spill_errors
        );
    }
    if failures > 0 {
        eprintln!("pilgrimd: {failures} of {jobs} jobs lost data");
    }
    let code = i32::from(failures > 0);
    emit_envelope(
        "local",
        &[
            ("jobs", jobs.to_string()),
            ("lossless", (jobs - failures).to_string()),
            ("failures", failures.to_string()),
            ("segments", stats.segments.to_string()),
            ("ingested_bytes", stats.bytes.to_string()),
            ("wal_records", stats.wal_records.to_string()),
            ("wal_errors", stats.wal_errors.to_string()),
            ("sealed", stats.jobs_sealed.to_string()),
        ],
        code,
    )
}
