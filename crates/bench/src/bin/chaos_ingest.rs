//! `chaos_ingest` — seeded fault-injection sweep over the ingest
//! service, with crash recovery.
//!
//! ```text
//! chaos_ingest [--jobs J] [--ranks R] [--iters I] [--seed S] [--quick]
//! ```
//!
//! Sweeps fault rate × shard count × {bare, WAL} cells. Each cell runs
//! `J` concurrent jobs against one [`pilgrim::IngestSession`] carrying
//! an [`pilgrim::IngestFaultPlan`]: workers panic while folding
//! segments, poisoned segments exhaust the retry budget and get
//! quarantined, container spills tear mid-write, WAL appends
//! short-write, and stalled ranks never complete. Half the jobs
//! are then "crashed" — streamed in full but never finished, exactly
//! what a dead collector leaves behind — before the session is dropped
//! and `IngestSession::recover` rebuilds the directory.
//!
//! The table reports, per cell, how many jobs survived the run itself
//! and how recovery classified the crashed remainder: with the WAL on,
//! crashed jobs come back `recovered`; bare, they are only as good as
//! the torn spill salvage. These are the numbers behind the
//! EXPERIMENTS.md chaos-ingest table. Jobs are opened in a fixed order
//! and every fault decision is a pure function of `--seed` and the
//! fault coordinates `(job, rank, seq)`, so the whole table reproduces
//! run to run no matter how the concurrent streams interleave.

use std::process::exit;
use std::sync::Arc;

use pilgrim::{
    IngestConfig, IngestFaultPlan, IngestSession, PilgrimConfig, PilgrimTracer, SegmentSink,
};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

/// Sweep-wide knobs, fixed across every cell.
#[derive(Clone, Copy)]
struct Sweep {
    jobs: usize,
    ranks: usize,
    iters: usize,
    seed: u64,
}

struct CellResult {
    finished_ok: usize,
    degraded: usize,
    recovered: usize,
    partial: usize,
    lost: usize,
    quarantined: u64,
    panics: u64,
    retries: u64,
    sealed: u64,
}

/// Runs one sweep cell and recovers its directory. Jobs `0..J/2` are
/// finished normally (they exercise in-flight fault tolerance); jobs
/// `J/2..J` are streamed but never finished, simulating a collector
/// that died mid-run, then the dropped session's directory is recovered.
fn run_cell(dir: &std::path::Path, wal: bool, rate: f64, shards: usize, sw: Sweep) -> CellResult {
    let Sweep { jobs, ranks, iters, seed } = sw;
    let faults = IngestFaultPlan::new(seed)
        .segment_panic_rate(rate)
        .poison_rate(rate / 4.0)
        .spill_io_rate(rate * 2.0)
        .wal_io_rate(rate / 2.0)
        .stall_rate(rate / 4.0);
    let session = Arc::new(
        IngestSession::new(
            IngestConfig::new().shards(shards).spill_dir(dir).wal(wal).faults(faults),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot start ingest session: {e}");
            exit(1)
        }),
    );

    let crash_from = jobs / 2;
    // Open every job from this thread, in order, so job IDs — and with
    // them the seeded fault coordinates (job, rank, seq) — don't depend
    // on thread scheduling. The streams themselves still race freely.
    // No per-job deadline: a wall-clock seal firing (or not) under
    // scheduler jitter would make the table non-reproducible; stalled
    // completions surface as degraded jobs at finish instead.
    let handles: Vec<_> = (0..jobs).map(|_| session.open_job(ranks, true)).collect();
    let outcomes: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(j, handle)| {
            let session = session.clone();
            std::thread::spawn(move || {
                let workload = WORKLOADS[j % WORKLOADS.len()];
                let body = mpi_workloads::by_name(workload, iters);
                let sink: Arc<dyn SegmentSink> = Arc::new(handle.clone());
                let cfg = PilgrimConfig::default();
                let wcfg = mpi_sim::WorldConfig::new(ranks).seed(0x5EED + j as u64);
                mpi_sim::World::run(
                    &wcfg,
                    |rank| PilgrimTracer::new(rank, cfg).with_segment_sink(sink.clone()),
                    move |env| body(env),
                );
                // The crash half: stream the whole world into the
                // session but never finish the job — the collector
                // "dies" holding an open job, and only the WAL (or a
                // torn spill) remembers it.
                if j < crash_from {
                    Some(session.finish_job(&handle))
                } else {
                    None
                }
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect();

    // Graceful shutdown so the fault counters are a complete snapshot,
    // not a mid-drain race; the crashed jobs stay unfinished either way.
    let session = Arc::try_unwrap(session).unwrap_or_else(|_| {
        eprintln!("a driver thread leaked its session handle");
        exit(1)
    });
    let stats = session.shutdown();

    let finished_ok = outcomes.iter().flatten().filter(|o| o.is_lossless()).count();
    let degraded = crash_from - finished_ok;
    let report = IngestSession::recover(dir).unwrap_or_else(|e| {
        eprintln!("recovery of {} failed: {e}", dir.display());
        exit(1)
    });
    // Only the crashed half shows up as partial/lost work; finished jobs
    // are either `recovered` straight off their intact container or were
    // degraded in-run (quarantine, seal) and already counted above.
    CellResult {
        finished_ok,
        degraded,
        recovered: report.recovered(),
        partial: report.partial(),
        lost: report.lost(),
        quarantined: stats.quarantined,
        panics: stats.worker_panics,
        retries: stats.retries,
        sealed: stats.jobs_sealed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = flag(&args, "--jobs").unwrap_or(8) as usize;
    let ranks = flag(&args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(&args, "--iters").unwrap_or(20) as usize;
    let seed = flag(&args, "--seed").unwrap_or(0xC4A0_5EED);
    let quick = args.iter().any(|a| a == "--quick");

    // Injected worker panics are the point of the sweep, not noise —
    // keep their backtraces off the table. Real panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected worker panic") {
            default_hook(info)
        }
    }));

    let rates: &[f64] = if quick { &[0.0, 0.05] } else { &[0.0, 0.01, 0.05, 0.15] };
    let shard_counts: &[usize] = if quick { &[4] } else { &[2, 4] };

    let base = std::env::temp_dir().join(format!("pilgrim-chaos-{seed:x}"));
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "chaos_ingest: {jobs} jobs x {ranks} ranks, {iters} iters, seed {seed:#x} \
         (half the jobs crash mid-run, then recover)"
    );
    println!(
        "| wal | fault rate | shards | finished ok | degraded | recovered | partial | lost | \
         quarantined | panics | retries | sealed |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");

    let mut total_unaccounted = 0usize;
    for &wal in &[false, true] {
        for &rate in rates {
            for &shards in shard_counts {
                let dir = base.join(format!(
                    "{}-r{}-s{shards}",
                    if wal { "wal" } else { "bare" },
                    (rate * 1000.0) as u64
                ));
                let r = run_cell(&dir, wal, rate, shards, Sweep { jobs, ranks, iters, seed });
                println!(
                    "| {} | {rate:.2} | {shards} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    if wal { "on" } else { "off" },
                    r.finished_ok,
                    r.degraded,
                    r.recovered,
                    r.partial,
                    r.lost,
                    r.quarantined,
                    r.panics,
                    r.retries,
                    r.sealed,
                );
                // The invariant the sweep gates on: recovery accounts for
                // every job it can see — nothing silently vanishes.
                let seen = r.recovered + r.partial + r.lost;
                if wal && seen < jobs {
                    eprintln!(
                        "chaos_ingest: WAL cell rate={rate} shards={shards} accounted for only \
                         {seen}/{jobs} jobs"
                    );
                    total_unaccounted += jobs - seen;
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    if total_unaccounted > 0 {
        eprintln!("chaos_ingest: {total_unaccounted} jobs dropped without a trace");
        exit(1)
    }
    println!("chaos_ingest: every job accounted for in every WAL cell");
}
