//! `ingest_bench` — streaming-ingest throughput across concurrent jobs.
//!
//! ```text
//! ingest_bench [--ranks R] [--iters I] [--shards S] [--max-jobs J] [--json-out PATH]
//! ```
//!
//! Sweeps the number of concurrent jobs (1, 2, 4, … up to `--max-jobs`,
//! default 16), each job a full `R`-rank simulated world streaming its
//! grammar segments into one shared [`pilgrim::IngestSession`]. Reports
//! wall time, sustained calls/sec and jobs/sec, and how often producers
//! hit shard-queue backpressure — the numbers behind the EXPERIMENTS.md
//! ingest table. `--json-out PATH` additionally writes the distilled
//! rows as a schema-1 JSON document (the `BENCH_ingest.json` baseline
//! that `scripts/check.sh` keeps in the repo).

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use pilgrim::{IngestConfig, IngestSession, JobDesc, PilgrimConfig};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks = flag(&args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(&args, "--iters").unwrap_or(40) as usize;
    let shards = flag(&args, "--shards").unwrap_or(4) as usize;
    let max_jobs = flag(&args, "--max-jobs").unwrap_or(16) as usize;
    let json_out = args.iter().position(|a| a == "--json-out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json-out needs a path");
            exit(2)
        })
    });

    println!(
        "ingest_bench: {ranks}-rank jobs, {iters} iters, {shards} shards (rotating {})",
        WORKLOADS.join("/")
    );
    println!("| concurrent jobs | wall (ms) | calls | calls/sec | jobs/sec | backpressure |");
    println!("|---:|---:|---:|---:|---:|---:|");

    let mut rows: Vec<String> = Vec::new();
    let mut jobs = 1usize;
    while jobs <= max_jobs {
        let session =
            Arc::new(IngestSession::new(IngestConfig::new().shards(shards)).unwrap_or_else(|e| {
                eprintln!("cannot start ingest session: {e}");
                exit(1)
            }));
        let start = Instant::now();
        let outcomes: Vec<_> = (0..jobs)
            .map(|j| {
                let session = session.clone();
                std::thread::spawn(move || {
                    let workload = WORKLOADS[j % WORKLOADS.len()];
                    let desc = JobDesc::new(workload, ranks)
                        .seed(0x5EED + j as u64)
                        .config(PilgrimConfig::default());
                    let body = mpi_workloads::by_name(workload, iters);
                    session.submit_world(&desc, move |env| body(env))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect();
        let wall = start.elapsed();
        let stats = session.stats();
        let lossless = outcomes.iter().all(|o| o.is_lossless());
        if !lossless {
            eprintln!("ingest_bench: loss at {jobs} concurrent jobs");
            exit(1)
        }
        let calls: u64 = outcomes.iter().map(|o| o.calls).sum();
        let secs = wall.as_secs_f64().max(1e-9);
        println!(
            "| {jobs} | {:.1} | {calls} | {:.0} | {:.1} | {} |",
            wall.as_secs_f64() * 1e3,
            calls as f64 / secs,
            jobs as f64 / secs,
            stats.backpressure
        );
        rows.push(format!(
            "{{\"jobs\":{jobs},\"wall_ms\":{:.1},\"calls\":{calls},\"calls_per_sec\":{:.0},\
             \"backpressure\":{}}}",
            wall.as_secs_f64() * 1e3,
            calls as f64 / secs,
            stats.backpressure
        ));
        jobs *= 2;
    }

    if let Some(path) = json_out {
        let doc = format!(
            "{{\"schema\":1,\"bench\":\"ingest\",\"ranks\":{ranks},\"iters\":{iters},\
             \"shards\":{shards},\"rows\":[{}]}}\n",
            rows.join(",")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        }
        println!("wrote {path}");
    }
}
