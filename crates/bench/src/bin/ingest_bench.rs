//! `ingest_bench` — streaming-ingest throughput across concurrent jobs.
//!
//! ```text
//! ingest_bench [--ranks R] [--iters I] [--shards S] [--max-jobs J]
//!              [--reps N] [--json-out PATH] [--check-against PATH]
//! ```
//!
//! Sweeps the number of concurrent jobs (1, 2, 4, … up to `--max-jobs`,
//! default 16), each job a full `R`-rank simulated world streaming its
//! grammar segments into one shared [`pilgrim::IngestSession`]. Reports
//! wall time, sustained calls/sec and jobs/sec, and how often producers
//! hit shard-queue backpressure — the numbers behind the EXPERIMENTS.md
//! ingest table. `--json-out PATH` additionally writes the distilled
//! rows as a schema-1 JSON document (the `BENCH_ingest.json` baseline
//! that `scripts/check.sh` keeps in the repo).
//!
//! `--check-against PATH` turns the run into a regression gate: the
//! sweep runs `--reps` times (default 2 under the gate, 1 otherwise),
//! each row keeps its best calls/sec across reps (max damps scheduler
//! noise on shared CI machines), and any row that lands below 90% of
//! the committed baseline's calls/sec fails the run with exit 1.
//!
//! The committed baseline should be refreshed with `--reps 3 --stat
//! min`: recording the *worst* rep puts the baseline at the low end of
//! the machine's noise band, so the gate's best-of-reps only falls
//! below the 90% floor when the whole distribution shifted down — a
//! real regression, not a preempted run.

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use pilgrim::{IngestConfig, IngestSession, JobDesc, PilgrimConfig};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

/// Allowed slowdown vs the committed baseline before the gate fails.
const REGRESSION_FLOOR: f64 = 0.9;

/// Rows that finish faster than this are scheduler-noise-dominated (a
/// single preemption swings them past the 10% floor) and are reported
/// but not gated. A real regression that slows such a row down pushes
/// its wall time past the threshold — and shows on the bigger rows too.
const MIN_GATE_WALL_MS: f64 = 10.0;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

fn path_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{name} needs a path");
            exit(2)
        })
    })
}

struct Row {
    jobs: usize,
    wall_ms: f64,
    calls: u64,
    calls_per_sec: f64,
    backpressure: u64,
}

fn run_sweep(ranks: usize, iters: usize, shards: usize, max_jobs: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut jobs = 1usize;
    while jobs <= max_jobs {
        let session =
            Arc::new(IngestSession::new(IngestConfig::new().shards(shards)).unwrap_or_else(|e| {
                eprintln!("cannot start ingest session: {e}");
                exit(1)
            }));
        let start = Instant::now();
        let outcomes: Vec<_> = (0..jobs)
            .map(|j| {
                let session = session.clone();
                std::thread::spawn(move || {
                    let workload = WORKLOADS[j % WORKLOADS.len()];
                    let desc = JobDesc::new(workload, ranks)
                        .seed(0x5EED + j as u64)
                        .config(PilgrimConfig::default());
                    let body = mpi_workloads::by_name(workload, iters);
                    session.submit_world(&desc, move |env| body(env))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("driver thread panicked"))
            .collect();
        let wall = start.elapsed();
        let stats = session.stats();
        let lossless = outcomes.iter().all(|o| o.is_lossless());
        if !lossless {
            eprintln!("ingest_bench: loss at {jobs} concurrent jobs");
            exit(1)
        }
        let calls: u64 = outcomes.iter().map(|o| o.calls).sum();
        let secs = wall.as_secs_f64().max(1e-9);
        rows.push(Row {
            jobs,
            wall_ms: wall.as_secs_f64() * 1e3,
            calls,
            calls_per_sec: calls as f64 / secs,
            backpressure: stats.backpressure,
        });
        jobs *= 2;
    }
    rows
}

/// Pulls `"key":<number>` out of a flat JSON object body. The baseline
/// is our own schema-1 output, so a field scan is all the parsing the
/// gate needs (and keeps serde out of the bench crate).
fn json_num(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Baseline rows as `(jobs, calls_per_sec)` from a schema-1
/// `BENCH_ingest.json` document.
fn baseline_rows(doc: &str) -> Vec<(usize, f64)> {
    let Some(at) = doc.find("\"rows\":[") else { return Vec::new() };
    let body = &doc[at + "\"rows\":[".len()..];
    let mut out = Vec::new();
    for obj in body.split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        if let (Some(jobs), Some(cps)) = (json_num(obj, "jobs"), json_num(obj, "calls_per_sec")) {
            out.push((jobs as usize, cps));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks = flag(&args, "--ranks").unwrap_or(4) as usize;
    let iters = flag(&args, "--iters").unwrap_or(40) as usize;
    let shards = flag(&args, "--shards").unwrap_or(4) as usize;
    let max_jobs = flag(&args, "--max-jobs").unwrap_or(16) as usize;
    let json_out = path_flag(&args, "--json-out");
    let check_against = path_flag(&args, "--check-against");
    let reps = flag(&args, "--reps").unwrap_or(if check_against.is_some() { 2 } else { 1 }).max(1)
        as usize;
    let keep_min = match path_flag(&args, "--stat").as_deref() {
        None | Some("best") => false,
        Some("min") => true,
        Some(other) => {
            eprintln!("--stat must be best or min, got {other}");
            exit(2)
        }
    };

    println!(
        "ingest_bench: {ranks}-rank jobs, {iters} iters, {shards} shards (rotating {}), {reps} \
         rep{}",
        WORKLOADS.join("/"),
        if reps == 1 { "" } else { "s" }
    );

    // Per row, keep one rep: the best calls/sec (default; the gate's
    // noise damper) or the worst (`--stat min`; the baseline recorder).
    let mut best: Vec<Row> = run_sweep(ranks, iters, shards, max_jobs);
    for _ in 1..reps {
        for (slot, fresh) in best.iter_mut().zip(run_sweep(ranks, iters, shards, max_jobs)) {
            if (fresh.calls_per_sec > slot.calls_per_sec) != keep_min {
                *slot = fresh;
            }
        }
    }

    println!("| concurrent jobs | wall (ms) | calls | calls/sec | jobs/sec | backpressure |");
    println!("|---:|---:|---:|---:|---:|---:|");
    let mut rows: Vec<String> = Vec::new();
    for r in &best {
        let secs = (r.wall_ms / 1e3).max(1e-9);
        println!(
            "| {} | {:.1} | {} | {:.0} | {:.1} | {} |",
            r.jobs,
            r.wall_ms,
            r.calls,
            r.calls_per_sec,
            r.jobs as f64 / secs,
            r.backpressure
        );
        rows.push(format!(
            "{{\"jobs\":{},\"wall_ms\":{:.1},\"calls\":{},\"calls_per_sec\":{:.0},\
             \"backpressure\":{}}}",
            r.jobs, r.wall_ms, r.calls, r.calls_per_sec, r.backpressure
        ));
    }

    if let Some(path) = json_out {
        let doc = format!(
            "{{\"schema\":1,\"bench\":\"ingest\",\"ranks\":{ranks},\"iters\":{iters},\
             \"shards\":{shards},\"rows\":[{}]}}\n",
            rows.join(",")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_against {
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            exit(1)
        });
        let baseline = baseline_rows(&doc);
        if baseline.is_empty() {
            eprintln!("baseline {path} has no rows");
            exit(1)
        }
        let mut regressed = 0usize;
        for (jobs, base_cps) in baseline {
            let Some(fresh) = best.iter().find(|r| r.jobs == jobs) else {
                // Baseline rows past --max-jobs are out of this run's
                // scope (the quick gate sweeps a prefix of the sweep
                // that produced the baseline).
                continue;
            };
            let floor = base_cps * REGRESSION_FLOOR;
            let noisy = fresh.wall_ms < MIN_GATE_WALL_MS;
            let verdict = if noisy {
                "skipped (sub-10ms row, noise-dominated)"
            } else if fresh.calls_per_sec < floor {
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "check {jobs} jobs: {:.0} calls/s vs baseline {base_cps:.0} (floor {floor:.0}) \
                 {verdict}",
                fresh.calls_per_sec
            );
            if !noisy && fresh.calls_per_sec < floor {
                regressed += 1;
            }
        }
        if regressed > 0 {
            eprintln!("ingest_bench: {regressed} row(s) regressed >10% vs {path}");
            exit(1)
        }
        println!("ingest_bench: no row regressed >10% vs {path}");
    }
}
