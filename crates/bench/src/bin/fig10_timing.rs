//! Figure 10: space required for non-aggregated timing (§3.2, §4.4):
//! interval-grammar and duration-grammar sizes for the NPB benchmarks
//! with relative error 20% (b = 1.2).
//!
//! Paper shape: timing grammars grow ~linearly in ranks (inter-process
//! compression is far less effective for timing than for calls), with
//! interval grammars larger than duration grammars.

use mpi_workloads::by_name;
use pilgrim::{PilgrimConfig, TimingMode};
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim, square_sweep, sweep};

fn main() {
    let max = max_procs(32);
    let its = iters(40);
    let cfg = PilgrimConfig::new().timing(TimingMode::Lossy { base: 1.2 });
    println!("== Figure 10: timing grammar sizes, b = 1.2 ({its} iterations) ==");
    for bench in ["is", "mg", "cg", "lu", "sp", "bt"] {
        let procs = if bench == "sp" || bench == "bt" { square_sweep(max) } else { sweep(8, max) };
        println!("\n-- {} --", bench.to_uppercase());
        println!(
            "{:<8}{:>18}{:>18}{:>14}{:>12}",
            "procs", "interval (KB)", "duration (KB)", "calls", "call trace"
        );
        for p in procs {
            let run = run_pilgrim(p, cfg, by_name(bench, its));
            let r = run.trace.size_report();
            println!(
                "{:<8}{:>18}{:>18}{:>14}{:>12}",
                p,
                kb(r.interval_bytes),
                kb(r.duration_bytes),
                run.total_calls,
                kb(r.core_total())
            );
        }
    }
    println!("\nExpected shape: timing grammars ~linear in procs (weak inter-process sharing),");
    println!("much larger than the call trace, yet still far below 16B x calls (raw timestamps).");
}
