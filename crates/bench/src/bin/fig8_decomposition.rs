//! Figure 8: Pilgrim's overhead decomposition for the FLASH simulations —
//! intra-process compression vs inter-process CST merge vs inter-process
//! CFG merge. The paper's shape: the CST merge is a tiny fraction
//! (~0.2–0.4%); the split between intra and CFG merge depends on how many
//! unique grammars survive (StirTurb: 2, Sedov: 74, Cellular: 498).

use mpi_workloads::by_name;
use pilgrim::{MetricsReport, PilgrimConfig};
use pilgrim_bench::{iters, max_procs, metrics_out, run_pilgrim, write_metrics};

fn main() {
    let p = max_procs(32);
    let its = iters(120);
    let metrics_path = metrics_out();
    let mut all_metrics = MetricsReport::default();
    println!("== Figure 8: Pilgrim overhead decomposition ({p} procs, {its} iters) ==\n");
    println!(
        "{:<12}{:>14}{:>16}{:>16}{:>14}",
        "app", "intra %", "inter-CST %", "inter-CFG %", "unique CFGs"
    );
    for app in ["sedov", "cellular", "stirturb"] {
        let cfg = PilgrimConfig::new().metrics(metrics_path.is_some());
        let run = run_pilgrim(p, cfg, by_name(app, its));
        all_metrics.merge(&run.metrics);
        // Rank 0's decomposition: it holds the merged result and runs the
        // sequential final Sequitur pass the paper attributes the
        // inter-CFG cost to.
        let (intra, cst, cfg) = run.stats_rank0.decomposition();
        println!(
            "{:<12}{:>13.1}%{:>15.2}%{:>15.1}%{:>14}",
            app, intra, cst, cfg, run.trace.unique_grammars
        );
    }
    println!("\nExpected shape: inter-CST negligible; inter-CFG share grows with unique grammars.");
    if let Some(path) = metrics_path {
        write_metrics(&path, &all_metrics);
    }
}
