//! Query-engine microbenchmark: full grammar expansion vs indexed /
//! streaming / grammar-aware access on the paper's workloads (fig5 NPB
//! LU + MG, fig9 MILC).
//!
//! For each workload it times: one full decode of every rank, building
//! the `TraceIndex`, 1000 indexed random probes, streaming a 1000-call
//! window, the per-signature histogram, and the communication matrix —
//! then reports the speedup of the grammar-aware analytics over paying
//! for a full expansion.

use std::time::{Duration, Instant};

use mpi_workloads::by_name;
use pilgrim::{
    decode_rank_calls, CallIterator, MetricsRegistry, PilgrimConfig, QueryEngine, TraceIndex,
};
use pilgrim_bench::{iters, max_procs, run_pilgrim};

/// Best-of-3 wall time: the minimum is the least noisy estimator for
/// short deterministic operations.
fn time<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let v = f();
        let dt = t0.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(v);
    }
    (best.unwrap(), out.unwrap())
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn main() {
    let procs = max_procs(16);
    let its = iters(30);
    println!("== Query engine: indexed/streaming access vs full decode ==");
    println!("({procs} procs, {its} iterations; times are best-of-3 wall clock)");
    println!(
        "{:<10}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "workload",
        "calls",
        "decode ms",
        "index ms",
        "probe us",
        "window ms",
        "counts ms",
        "matrix ms",
        "speedup"
    );
    for wl in ["lu", "mg", "milc"] {
        let run = run_pilgrim(procs, PilgrimConfig::default(), by_name(wl, its));
        let trace = run.trace;
        let total: u64 = trace.rank_lengths.iter().sum();

        let (t_decode, _) = time(|| {
            for rank in 0..trace.nranks {
                decode_rank_calls(&trace, rank).expect("decodable trace");
            }
        });

        let metrics = MetricsRegistry::new(true);
        let (t_index, index) = time(|| TraceIndex::build_with_metrics(&trace, &metrics));

        // 1000 indexed probes spread deterministically over the trace.
        let probes: Vec<u64> = (0..1000).map(|i| (i * 7919) % total).collect();
        let (t_probe, _) = time(|| {
            for &p in &probes {
                let rank = index.nranks() - 1 - (p as usize % index.nranks());
                let i = p % index.rank_len(rank).max(1);
                index.call_at(&trace, rank, i).expect("in range");
            }
        });

        // Stream a 1000-call window from the middle of rank 0.
        let mid = (index.rank_len(0) / 2) as usize;
        let (t_window, streamed) =
            time(|| CallIterator::new(&trace, &index, 0).skip(mid).take(1000).count());
        assert!(streamed > 0);

        let (t_counts, engine) = time(|| {
            let e = QueryEngine::with_metrics(&trace, &index, &metrics);
            assert!(!e.signature_counts().is_empty());
            e
        });
        let (t_matrix, m) = time(|| engine.comm_matrix());

        let speedup = t_decode.as_secs_f64() / (t_index + t_matrix).as_secs_f64();
        println!(
            "{:<10}{:>10}{:>12}{:>12}{:>12.2}{:>12}{:>12}{:>12}{:>9.1}x",
            wl,
            total,
            ms(t_decode),
            ms(t_index),
            t_probe.as_secs_f64() * 1e6 / probes.len() as f64,
            ms(t_window),
            ms(t_counts),
            ms(t_matrix),
            speedup
        );
        eprintln!(
            "   {wl}: sends={} recvs={} wildcard={} index bytes={}",
            m.total_sends(),
            m.total_recvs(),
            m.wildcard_recvs.iter().sum::<u64>(),
            index.byte_size()
        );
    }
    println!("\nspeedup = full decode / (index build + comm matrix).");
}
