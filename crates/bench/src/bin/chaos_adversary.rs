//! `chaos_adversary` — hostile-peer sweep against a live `PNT1`
//! collector, with honest clients streaming concurrently.
//!
//! ```text
//! chaos_adversary [--jobs J] [--ranks R] [--iters I] [--peers P] [--seed S] [--quick]
//! ```
//!
//! Where `chaos_net` injects faults into *cooperating* peers, this
//! sweep dispatches peers that never intended to cooperate: the seeded
//! [`pilgrim::AdversaryPlan`] corpus covers garbage hellos, oversize
//! length prefixes, CRC-valid-but-semantically-invalid frames,
//! job opens declaring absurd rank counts, handshake replays,
//! wrong-key clients, slow-loris writers, held
//! connections, and mid-handshake disconnects (see
//! [`pilgrim::AdversaryKind`]). Three cells run the corpus against an
//! authenticated collector, an unauthenticated one, and an overloaded
//! one (`max_open_jobs` squeezed so honest jobs get shed with `Busy`).
//!
//! The gates are the hardening invariants, checked in-process:
//!
//! - **zero panics** — a panic hook counts every panic anywhere in the
//!   process (collector worker threads included);
//! - **zero hangs** — a watchdog thread kills the sweep if a cell
//!   outlives its deadline;
//! - **bounded memory** — the collector's peak per-connection buffer
//!   must stay under the decode-size cap plus one read chunk;
//! - **no honest casualties** — every honest job ends durable:
//!   delivered, locally spilled, or rebuilt by collector-side recovery.
//!
//! Stdout is deterministic (the table carries only seed-determined
//! counts); timing-dependent counters go to stderr. `scripts/check.sh`
//! runs the sweep twice and diffs the output.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pilgrim::net::NetFrame;
use pilgrim::recover::RecoveryState;
use pilgrim::wal::encode_frame;
use pilgrim::{
    challenge_response, serve, AdversaryKind, AdversaryPlan, AuthKey, IngestConfig, IngestSession,
    NetClient, NetClientConfig, NetServerConfig, PilgrimConfig, PilgrimTracer, RetryPolicy,
    SegmentSink, NET_MAGIC, NET_VERSION,
};

const WORKLOADS: [&str; 4] = ["stencil2d", "stencil3d", "lu", "mg"];

/// Decode-size cap handed to every cell's collector; the bounded-memory
/// gate asserts the peak connection buffer stayed under it (plus one
/// 64 KiB read chunk).
const FRAME_CAP: usize = 1 << 20;

static PANICS: AtomicU64 = AtomicU64::new(0);
static DONE: AtomicBool = AtomicBool::new(false);

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            exit(2)
        })
    })
}

// ---------------------------------------------------------------------------
// Hostile peers
// ---------------------------------------------------------------------------

/// Reads one server frame, tolerating the leading `PNT1` magic (the
/// server prefixes it on its first frame only). Returns `None` on
/// close, timeout, or anything unparseable — an adversary doesn't care.
fn read_peer_frame(stream: &mut TcpStream, expect_magic: bool) -> Option<NetFrame> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2000)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let mut pos = 0usize;
        let body = if expect_magic {
            if buf.len() < 4 {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return None,
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        continue;
                    }
                }
            }
            if &buf[..4] != NET_MAGIC {
                return None;
            }
            &buf[4..]
        } else {
            &buf[..]
        };
        match pilgrim::wal::split_frame(body, &mut pos) {
            Some(Ok((kind, payload))) => return NetFrame::decode(kind, payload).ok(),
            Some(Err(_)) => return None,
            None => match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            },
        }
    }
}

/// Completes a `magic + Hello` → `Challenge?` exchange and returns the
/// server's first frame. `None` when the server hung up first.
fn send_hello(stream: &mut TcpStream, client_id: u64) -> Option<NetFrame> {
    let mut hello = NET_MAGIC.to_vec();
    hello.extend_from_slice(&NetFrame::Hello { version: NET_VERSION, client_id }.encode());
    stream.write_all(&hello).ok()?;
    read_peer_frame(stream, true)
}

/// Plays one hostile peer against the collector. Every socket error is
/// swallowed: the collector closing on us mid-attack is the expected
/// outcome, not a failure of the adversary.
fn run_adversary(addr: &str, plan: &AdversaryPlan, peer: u64, key: Option<&AuthKey>) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let client_id = 0xAD00 + peer;
    match plan.kind(peer) {
        AdversaryKind::GarbageHello => {
            let _ = stream.write_all(&plan.garbage(peer, 256));
            let _ = read_peer_frame(&mut stream, true);
        }
        AdversaryKind::OversizeLength => {
            // Valid magic, valid Hello kind byte, then a varint length
            // declaring a payload of ~1 TiB that never arrives. The
            // collector must reject the header, not allocate for it.
            let mut wire = NET_MAGIC.to_vec();
            wire.push(1); // KIND_HELLO
            let mut len = 1u64 << 40;
            while len >= 0x80 {
                wire.push((len as u8 & 0x7f) | 0x80);
                len >>= 7;
            }
            wire.push(len as u8);
            wire.extend_from_slice(&plan.garbage(peer, 64));
            let _ = stream.write_all(&wire);
            let _ = read_peer_frame(&mut stream, true);
        }
        AdversaryKind::SemanticGarbage => {
            // A real handshake, then CRC-valid frames whose contents
            // are nonsense: unknown kinds, truncated payloads, and
            // server-only frames sent client→server. In auth mode these
            // fail the frame MAC instead — either way the collector
            // must shrug, not panic.
            let _ = send_hello(&mut stream, client_id);
            let mut wire = Vec::new();
            wire.extend_from_slice(&encode_frame(0xEE, &plan.garbage(peer, 32)));
            wire.extend_from_slice(&encode_frame(4, &plan.garbage(peer, 5)));
            wire.extend_from_slice(&NetFrame::HelloAck { version: NET_VERSION }.encode());
            wire.extend_from_slice(&NetFrame::Busy { job: plan.salt(peer) }.encode());
            let _ = stream.write_all(&wire);
            let _ = read_peer_frame(&mut stream, false);
        }
        AdversaryKind::HugeJobOpen => {
            // A real handshake, then a CRC-valid JobOpen declaring
            // ~2^50 ranks. The collector must answer the declared
            // allocation with a typed Reject, not reserve petabytes of
            // merger state. (In auth mode the unMAC'd frame fails the
            // session MAC first — either way, nothing is allocated.)
            let _ = send_hello(&mut stream, client_id);
            let open = NetFrame::JobOpen {
                job: plan.salt(peer),
                nranks: 1usize << 50,
                identity_check: false,
            };
            let _ = stream.write_all(&open.encode());
            let _ = read_peer_frame(&mut stream, false);
        }
        AdversaryKind::HandshakeReplay => {
            // Capture a (nonce-bound) challenge response on one
            // connection, then replay it verbatim against the fresh
            // nonce of a second connection. The second handshake must
            // fail: nonces never repeat.
            let captured = match (send_hello(&mut stream, client_id), key) {
                (Some(NetFrame::Challenge { nonce }), Some(k)) => {
                    let mac = challenge_response(k, &nonce, client_id, NET_VERSION);
                    let _ = stream.write_all(&NetFrame::AuthResponse { mac }.encode());
                    let _ = read_peer_frame(&mut stream, false);
                    Some(mac)
                }
                _ => None,
            };
            drop(stream);
            if let (Some(mac), Ok(mut second)) = (captured, TcpStream::connect(addr)) {
                if let Some(NetFrame::Challenge { .. }) = send_hello(&mut second, client_id) {
                    let _ = second.write_all(&NetFrame::AuthResponse { mac }.encode());
                    let _ = read_peer_frame(&mut second, false);
                }
            }
        }
        AdversaryKind::WrongKey => {
            let wrong = AuthKey::from_bytes(&plan.salt(peer).to_le_bytes());
            if let (Some(NetFrame::Challenge { nonce }), Some(k)) =
                (send_hello(&mut stream, client_id), wrong)
            {
                let mac = challenge_response(&k, &nonce, client_id, NET_VERSION);
                let _ = stream.write_all(&NetFrame::AuthResponse { mac }.encode());
                let _ = read_peer_frame(&mut stream, false);
            }
        }
        AdversaryKind::SlowLoris => {
            // One byte of a valid hello every 25 ms: slower than the
            // collector's patience, fast enough to defeat a naive
            // "no bytes at all" idle check.
            let mut hello = NET_MAGIC.to_vec();
            hello.extend_from_slice(&NetFrame::Hello { version: NET_VERSION, client_id }.encode());
            for b in hello {
                if stream.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        AdversaryKind::ConnectHold => {
            // Hold an admission slot without ever writing.
            std::thread::sleep(Duration::from_millis(400));
        }
        AdversaryKind::MidHandshakeDisconnect => {
            let _ = stream.write_all(&NET_MAGIC[..3]);
        }
    }
}

// ---------------------------------------------------------------------------
// Honest clients
// ---------------------------------------------------------------------------

struct HonestOutcome {
    job: u64,
    delivered: bool,
    spilled: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_honest_job(
    addr: String,
    dir: &Path,
    cell_idx: usize,
    j: usize,
    ranks: usize,
    iters: usize,
    seed: u64,
    key: Option<AuthKey>,
) -> HonestOutcome {
    let client_id = (cell_idx as u64) * 64 + j as u64 + 1;
    let mut cfg = NetClientConfig::new(addr)
        .client_id(client_id)
        .retry(RetryPolicy::default().max_attempts(6).backoff(Duration::from_millis(10)))
        .heartbeat(Duration::from_millis(200))
        .finish_timeout(Duration::from_secs(60))
        .spill_dir(dir.join(format!("client-{j}")));
    if let Some(k) = key {
        cfg = cfg.auth_key(k);
    }
    let client = NetClient::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start net client: {e}");
        exit(1)
    });
    let mut tcfg = PilgrimConfig::default();
    if j % 2 == 1 {
        tcfg = tcfg.memory_budget(3000);
    }
    let handle = client.open_job(0, ranks, tcfg.merge_identity_check);
    let workload = WORKLOADS[j % WORKLOADS.len()];
    let body = mpi_workloads::by_name(workload, iters);
    let sink: Arc<dyn SegmentSink> = Arc::new(handle.clone());
    let wcfg = mpi_sim::WorldConfig::new(ranks).seed(seed ^ (j as u64) << 8);
    mpi_sim::World::run(
        &wcfg,
        |rank| PilgrimTracer::new(rank, tcfg).with_segment_sink(sink.clone()),
        move |env| body(env),
    );
    let out = handle.finish();
    let stats = client.shutdown();
    eprintln!(
        "  cell {cell_idx} honest job {j}: {} connects, {} busy sheds, delivered={}",
        stats.connects, stats.busy_sheds, out.delivered
    );
    HonestOutcome { job: out.job, delivered: out.delivered, spilled: out.local_path.is_some() }
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

struct Cell {
    name: &'static str,
    auth: bool,
    peers_factor: u64,
    /// Squeeze `max_open_jobs` to force shedding.
    overload: bool,
}

struct CellResult {
    peers: u64,
    durable: usize,
    lost: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    dir: &Path,
    cell_idx: usize,
    cell: &Cell,
    jobs: usize,
    ranks: usize,
    iters: usize,
    peers: u64,
    seed: u64,
) -> CellResult {
    let key = cell.auth.then(|| AuthKey::from_bytes(b"chaos-adversary-sweep-key")).flatten();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("cannot bind loopback: {e}");
        exit(1)
    });
    let session =
        IngestSession::new(IngestConfig::new().shards(2).spill_dir(dir)).unwrap_or_else(|e| {
            eprintln!("cannot start ingest session: {e}");
            exit(1)
        });
    let mut scfg = NetServerConfig::new()
        .io_timeout(Duration::from_millis(500))
        .max_frame_len(FRAME_CAP)
        .max_connections(64);
    if let Some(k) = &key {
        scfg = scfg.auth_key(k.clone());
    }
    if cell.overload {
        scfg = scfg.max_open_jobs(1);
    }
    let server = serve(listener, session, scfg).unwrap_or_else(|e| {
        eprintln!("cannot serve: {e}");
        exit(1)
    });
    let addr = server.addr().to_string();
    let peers = peers * cell.peers_factor;
    let plan = AdversaryPlan::new(seed ^ cell_idx as u64);

    // Honest clients and hostile peers run concurrently, by design.
    let honest: Vec<_> = (0..jobs)
        .map(|j| {
            let addr = addr.clone();
            let dir = dir.to_path_buf();
            let key = key.clone();
            std::thread::spawn(move || {
                run_honest_job(addr, &dir, cell_idx, j, ranks, iters, seed, key)
            })
        })
        .collect();
    let hostile: Vec<_> = (0..peers)
        .map(|peer| {
            let addr = addr.clone();
            let plan = plan.clone();
            let key = key.clone();
            std::thread::spawn(move || run_adversary(&addr, &plan, peer, key.as_ref()))
        })
        .collect();

    for h in hostile {
        let _ = h.join();
    }
    let outcomes: Vec<_> =
        honest.into_iter().map(|h| h.join().expect("honest driver thread panicked")).collect();

    let stats = server.stop();
    eprintln!(
        "  cell {cell_idx} server: {} conns, {} bad hellos, {} auth failures, {} sheds, \
         {} slow-loris kills, peak buffer {} B",
        stats.connections,
        stats.bad_hello,
        stats.auth_failures,
        stats.sheds,
        stats.slow_loris_closed,
        stats.peak_conn_buffer
    );
    // Bounded memory: the per-connection buffer may hold at most one
    // capped frame plus one in-flight read chunk.
    let bound = (FRAME_CAP + 64 * 1024 + 16) as u64;
    if stats.peak_conn_buffer > bound {
        eprintln!(
            "chaos_adversary: cell {cell_idx} peak connection buffer {} exceeds bound {bound}",
            stats.peak_conn_buffer
        );
        exit(1)
    }

    // Collector-side recovery backs the durability accounting for any
    // job the client couldn't settle (e.g. shed into local spill after
    // a partial stream).
    let states: HashMap<u64, RecoveryState> = pilgrim::recover::recover_dir(dir)
        .map(|r| r.jobs.iter().map(|j| (j.job, j.state)).collect())
        .unwrap_or_default();
    let mut result = CellResult { peers, durable: 0, lost: 0 };
    for out in &outcomes {
        if out.delivered
            || out.spilled
            || states.get(&out.job).is_some_and(|s| *s != RecoveryState::Lost)
        {
            result.durable += 1;
        } else {
            result.lost += 1;
            eprintln!("  cell {cell_idx}: honest job {} lost!", out.job);
        }
    }
    result
}

fn main() {
    // Gate 1: nothing anywhere in this process — collector threads
    // included — may panic while hostile peers are connected.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        PANICS.fetch_add(1, Ordering::SeqCst);
        default_hook(info);
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = flag(&args, "--jobs").unwrap_or(if quick { 3 } else { 4 }) as usize;
    let ranks = flag(&args, "--ranks").unwrap_or(2) as usize;
    let iters = flag(&args, "--iters").unwrap_or(if quick { 5 } else { 10 }) as usize;
    let peers = flag(&args, "--peers").unwrap_or(if quick { 8 } else { 16 });
    let seed = flag(&args, "--seed").unwrap_or(0x4144_5645);

    // Gate 2: the whole sweep must finish inside the deadline or it
    // *is* the hang the corpus hunts for.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(240));
        if !DONE.load(Ordering::SeqCst) {
            eprintln!("chaos_adversary: watchdog fired — sweep hung");
            exit(1)
        }
    });

    let base = std::env::temp_dir().join(format!("pilgrim-chaos-adversary-{seed:x}"));
    let _ = std::fs::remove_dir_all(&base);

    let cells = [
        Cell { name: "authed", auth: true, peers_factor: 1, overload: false },
        Cell { name: "unauth", auth: false, peers_factor: 1, overload: false },
        Cell { name: "overload", auth: true, peers_factor: 2, overload: true },
    ];

    println!("chaos_adversary: {jobs} honest jobs x {ranks} ranks, {iters} iters, seed {seed:#x}");
    println!("| cell | peers | honest | durable | lost |");
    println!("|---|---:|---:|---:|---:|");

    let mut total_lost = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let dir = base.join(format!("cell-{i}"));
        let r = run_cell(&dir, i, cell, jobs, ranks, iters, peers, seed);
        println!("| {} | {} | {jobs} | {} | {} |", cell.name, r.peers, r.durable, r.lost);
        total_lost += r.lost;
    }
    let _ = std::fs::remove_dir_all(&base);
    DONE.store(true, Ordering::SeqCst);

    let panics = PANICS.load(Ordering::SeqCst);
    if panics > 0 {
        eprintln!("chaos_adversary: {panics} panics under hostile peers");
        exit(1)
    }
    if total_lost > 0 {
        eprintln!("chaos_adversary: {total_lost} honest jobs lost under hostile peers");
        exit(1)
    }
    println!("chaos_adversary: zero panics, zero hangs, every honest job durable");
}
