//! Figure 7: FLASH execution time — untraced vs Pilgrim vs ScalaTrace —
//! for increasing process counts (weak-scaling style) and iteration
//! counts. Times are wall-clock of the whole simulated run on this host;
//! the paper's claim is the *shape*: Pilgrim's overhead stays moderate
//! (max 21/29/4 % for Sedov/Cellular/StirTurb).

use mpi_sim::WorldConfig;
use mpi_workloads::by_name;
use pilgrim::{MetricsReport, PilgrimConfig};
use pilgrim_bench::{
    iters, max_procs, metrics_out, run_pilgrim_world, run_scalatrace_world, run_untraced_world,
    sweep, write_metrics,
};

fn main() {
    let max = max_procs(32);
    let its = iters(60);
    let metrics_path = metrics_out();
    let mut all_metrics = MetricsReport::default();
    println!("== Figure 7: FLASH execution time (ms wall), tracing overhead ==");
    println!("(compute phases busy-spin so the untraced baseline carries the");
    println!(" application's real compute budget, as on the paper's clusters)");
    for app in ["sedov", "cellular", "stirturb"] {
        println!("\n-- {app} ({its} iterations) --");
        println!(
            "{:<8}{:>12}{:>14}{:>14}{:>12}",
            "procs", "no tracing", "w/ Pilgrim", "w/ ScalaTrace", "overhead%"
        );
        for p in sweep(8, max) {
            let mut wcfg = WorldConfig::new(p);
            // 3 real ns of spinning per simulated compute ns, approximating the
            // compute intensity of the paper's production runs.
            wcfg.compute_spin = 3.0;
            let base = run_untraced_world(&wcfg, by_name(app, its));
            let cfg = PilgrimConfig::new().metrics(metrics_path.is_some());
            let pr = run_pilgrim_world(&wcfg, cfg, by_name(app, its));
            all_metrics.merge(&pr.metrics);
            let (_, st_wall, _) = run_scalatrace_world(&wcfg, by_name(app, its));
            let overhead = (pr.wall.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
            println!(
                "{:<8}{:>12.1}{:>14.1}{:>14.1}{:>11.1}%",
                p,
                base.as_secs_f64() * 1e3,
                pr.wall.as_secs_f64() * 1e3,
                st_wall.as_secs_f64() * 1e3,
                overhead
            );
        }
    }
    println!("\nExpected shape: Pilgrim overhead moderate; paper max 21% / 29% / 4%.");
    println!("(Wall times on a simulator are noisy; rerun or raise --iters for stability.)");
    if let Some(path) = metrics_path {
        write_metrics(&path, &all_metrics);
    }
}
