//! Figure 9: MILC (su3_rmd) trace size under strong and weak scaling.
//!
//! Paper shape: weak scaling is *flat* (27 unique grammars at every
//! size, 627 KB at 16K ranks); strong scaling shows stages — the trace
//! grows only when a new process-grid shape introduces new patterns.

use std::sync::Arc;

use mpi_workloads::milc::su3_rmd;
use pilgrim::PilgrimConfig;
use pilgrim_bench::{iters, kb, max_procs, run_pilgrim, sweep};

fn main() {
    let max = max_procs(64);
    let traj = iters(3);
    // Strong scaling: total problem fixed; per-rank sites shrink with P.
    let total_sites: u64 = 4096;
    println!("== Figure 9: MILC trace size vs processes ({traj} trajectories) ==\n");
    println!(
        "{:<8}{:>16}{:>14}{:>16}{:>14}",
        "procs", "strong (KB)", "uniq CFGs", "weak (KB)", "uniq CFGs"
    );
    for p in sweep(8, max) {
        let per_rank = (total_sites / p as u64).max(1);
        let strong = run_pilgrim(
            p,
            PilgrimConfig::default(),
            Arc::new(move |env| su3_rmd(env, traj, per_rank)),
        );
        let weak =
            run_pilgrim(p, PilgrimConfig::default(), Arc::new(move |env| su3_rmd(env, traj, 16)));
        println!(
            "{:<8}{:>16}{:>14}{:>16}{:>14}",
            p,
            kb(strong.trace.size_bytes()),
            strong.trace.unique_grammars,
            kb(weak.trace.size_bytes()),
            weak.trace.unique_grammars
        );
    }
    println!("\nExpected shape: weak scaling flat; strong scaling steps with grid-shape changes.");
}
