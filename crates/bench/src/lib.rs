//! Shared harness for the paper-reproduction benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper; this module
//! provides the common runners (trace a workload under Pilgrim /
//! ScalaTrace / raw / untraced) and scale handling for a single-node
//! environment. The paper's largest runs used 4K–16K cluster processors;
//! rank counts here default to laptop-friendly sweeps and can be raised
//! with `--max-procs N` (or `PILGRIM_MAX_PROCS`).

use std::time::{Duration, Instant};

use mpi_sim::{NullTracer, World, WorldConfig};
use mpi_workloads::Body;
use pilgrim::{GlobalTrace, MetricsReport, OverheadStats, PilgrimConfig, PilgrimTracer};
use trace_baselines::{RawTracer, ScalaTraceTracer};

/// Result of one traced Pilgrim run.
pub struct PilgrimRun {
    pub trace: GlobalTrace,
    pub wall: Duration,
    pub stats: OverheadStats,
    /// Rank 0's own stats: the rank that performs the final merge work.
    pub stats_rank0: OverheadStats,
    /// All ranks' metrics merged (timers/counters summed), with rank 0's
    /// trace size decomposition attached. All-zero timers unless the run's
    /// [`PilgrimConfig::metrics`] was enabled.
    pub metrics: MetricsReport,
    /// Sum of per-rank local (pre-merge) sizes.
    pub local_bytes: usize,
    pub total_calls: u64,
}

/// Runs a workload under the Pilgrim tracer.
pub fn run_pilgrim(nranks: usize, cfg: PilgrimConfig, body: Body) -> PilgrimRun {
    run_pilgrim_world(&WorldConfig::new(nranks), cfg, body)
}

/// [`run_pilgrim`] with a custom world configuration (overhead
/// experiments enable compute spinning).
pub fn run_pilgrim_world(wcfg: &WorldConfig, cfg: PilgrimConfig, body: Body) -> PilgrimRun {
    let start = Instant::now();
    let mut tracers = World::run(wcfg, |rank| PilgrimTracer::new(rank, cfg), move |env| body(env));
    let wall = start.elapsed();
    let mut stats = OverheadStats::default();
    let mut metrics = MetricsReport::default();
    let mut local_bytes = 0;
    let mut total_calls = 0;
    let mut trace = None;
    let mut stats_rank0 = OverheadStats::default();
    for (rank, t) in tracers.iter_mut().enumerate() {
        local_bytes += t.local_size_bytes();
        total_calls += t.call_count();
        let out = t.take_output();
        stats.merge(&out.stats);
        metrics.merge(&out.metrics);
        if rank == 0 {
            stats_rank0 = out.stats;
            trace = out.trace;
        }
    }
    PilgrimRun {
        trace: trace.expect("rank 0 trace"),
        wall,
        stats,
        stats_rank0,
        metrics,
        local_bytes,
        total_calls,
    }
}

/// `--metrics-out <path>` / `PILGRIM_METRICS_OUT`: where to write a JSON
/// metrics report, if requested.
pub fn metrics_out() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--metrics-out needs a path");
                std::process::exit(2)
            }));
        }
    }
    std::env::var("PILGRIM_METRICS_OUT").ok()
}

/// Writes a metrics report as JSON to `path` and logs where it went.
pub fn write_metrics(path: &str, report: &MetricsReport) {
    std::fs::write(path, report.to_json()).expect("write metrics JSON");
    eprintln!("metrics written to {path}");
}

/// Runs a workload under the ScalaTrace model; returns
/// (size, wall time, distinct groups).
pub fn run_scalatrace(nranks: usize, body: Body) -> (usize, Duration, usize) {
    run_scalatrace_world(&WorldConfig::new(nranks), body)
}

/// [`run_scalatrace`] with a custom world configuration.
pub fn run_scalatrace_world(wcfg: &WorldConfig, body: Body) -> (usize, Duration, usize) {
    let start = Instant::now();
    let tracers = World::run(wcfg, ScalaTraceTracer::new, move |env| body(env));
    let wall = start.elapsed();
    let g = tracers[0].global().expect("rank 0 result");
    (g.size_bytes(), wall, g.groups.len())
}

/// Runs a workload with no tracer; returns wall time.
pub fn run_untraced(nranks: usize, body: Body) -> Duration {
    run_untraced_world(&WorldConfig::new(nranks), body)
}

/// [`run_untraced`] with a custom world configuration.
pub fn run_untraced_world(wcfg: &WorldConfig, body: Body) -> Duration {
    let start = Instant::now();
    World::run(wcfg, |_| NullTracer, move |env| body(env));
    start.elapsed()
}

/// Runs a workload under the raw tracer; returns total bytes.
pub fn run_raw(nranks: usize, body: Body) -> u64 {
    let tracers = World::run(&WorldConfig::new(nranks), RawTracer::new, move |env| body(env));
    tracers.iter().map(|t| t.bytes()).sum()
}

/// `--max-procs` / `PILGRIM_MAX_PROCS`, with a default.
pub fn max_procs(default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-procs" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("PILGRIM_MAX_PROCS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `--iters` / `PILGRIM_ITERS` override for run length.
pub fn iters(default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--iters" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("PILGRIM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Pretty byte counts, KB with one decimal like the paper's plots.
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Doubling sweep `start..=max`.
pub fn sweep(start: usize, max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = start;
    while p <= max {
        v.push(p);
        p *= 2;
    }
    v
}

/// Square process counts `(k*k) <= max`, starting at 4.
pub fn square_sweep(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut k = 2;
    while k * k <= max {
        v.push(k * k);
        k *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps() {
        assert_eq!(sweep(8, 64), vec![8, 16, 32, 64]);
        assert_eq!(square_sweep(64), vec![4, 16, 64]);
        assert_eq!(kb(2048), "2.0");
    }

    #[test]
    fn runners_work_end_to_end() {
        let body = mpi_workloads::by_name("stirturb", 5);
        let run = run_pilgrim(4, PilgrimConfig::default(), body.clone());
        assert!(run.trace.size_bytes() > 0);
        assert!(run.total_calls > 0);
        let (st_size, _, groups) = run_scalatrace(4, body.clone());
        assert!(st_size > 0 && groups >= 1);
        let raw = run_raw(4, body.clone());
        assert!(raw > run.trace.size_bytes() as u64);
        let _ = run_untraced(4, body);
    }
}
