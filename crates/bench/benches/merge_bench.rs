//! Criterion benchmarks for inter-process compression primitives:
//! grammar identity checks, hash-consing + final Sequitur pass, and the
//! trace (de)serialization used between ranks.

use criterion::{criterion_group, criterion_main, Criterion};
use pilgrim::merge::combine_grammars;
use pilgrim_sequitur::Grammar;

fn grammar_of(seq: &[u32]) -> pilgrim_sequitur::FlatGrammar {
    let mut g = Grammar::new();
    for &t in seq {
        g.push(t);
    }
    g.to_flat()
}

fn workload_grammar(variant: u32) -> pilgrim_sequitur::FlatGrammar {
    let mut seq = Vec::new();
    for _ in 0..500 {
        seq.extend_from_slice(&[1, 2, 3, variant, 5, 6]);
    }
    grammar_of(&seq)
}

fn bench_identity(c: &mut Criterion) {
    let a = workload_grammar(4);
    let b = workload_grammar(4);
    let d = workload_grammar(9);
    c.bench_function("grammar_identity_equal", |bch| bch.iter(|| a == b));
    c.bench_function("grammar_identity_differs", |bch| bch.iter(|| a == d));
    c.bench_function("grammar_to_ints", |bch| bch.iter(|| a.to_ints()));
}

fn bench_combine(c: &mut Criterion) {
    // 256 ranks, 8 unique grammar classes: the rank-0 final pass.
    let set: Vec<_> = (0..8u32)
        .map(|v| {
            let g = workload_grammar(100 + v);
            let len = g.expanded_len();
            let ranks: Vec<(u64, u64)> =
                (0..256u64).filter(|r| r % 8 == v as u64).map(|r| (r, len)).collect();
            (g, ranks)
        })
        .collect();
    c.bench_function("combine_grammars_256ranks_8unique", |b| {
        b.iter(|| combine_grammars(&set, 256))
    });
    // Worst case: every rank distinct.
    let set_distinct: Vec<_> = (0..64u32)
        .map(|v| {
            let g = workload_grammar(1000 + v);
            let len = g.expanded_len();
            (g, vec![(v as u64, len)])
        })
        .collect();
    c.bench_function("combine_grammars_64ranks_all_unique", |b| {
        b.iter(|| combine_grammars(&set_distinct, 64))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_identity, bench_combine
}
criterion_main!(benches);
