//! Criterion benchmarks for the Pilgrim tracer hot path: per-call cost of
//! signature encoding + CST + CFG growth, across workload shapes, and the
//! cost of the comparator tracers on the same streams.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpi_sim::{World, WorldConfig};
use mpi_workloads::by_name;
use pilgrim::{PilgrimConfig, PilgrimTracer, TimingMode};
use trace_baselines::{RawTracer, ScalaTraceTracer};

fn bench_tracers(c: &mut Criterion) {
    // Per-call tracing cost: run a fixed workload under each tracer.
    // Criterion measures the whole world run; the untraced run is the
    // subtraction baseline.
    let mut g = c.benchmark_group("trace_workload_stirturb_8x20");
    let calls = {
        let tracers = World::run(&WorldConfig::new(8), PilgrimTracer::with_defaults, |env| {
            let body = by_name("stirturb", 20);
            body(env)
        });
        tracers.iter().map(|t| t.call_count()).sum::<u64>()
    };
    g.throughput(Throughput::Elements(calls));
    g.sample_size(10);
    g.bench_function("untraced", |b| {
        b.iter(|| {
            World::run(
                &WorldConfig::new(8),
                |_| mpi_sim::NullTracer,
                |env| by_name("stirturb", 20)(env),
            )
        })
    });
    g.bench_function("pilgrim", |b| {
        b.iter(|| {
            World::run(&WorldConfig::new(8), PilgrimTracer::with_defaults, |env| {
                by_name("stirturb", 20)(env)
            })
        })
    });
    g.bench_function("pilgrim_lossy_timing", |b| {
        let cfg = PilgrimConfig::new().timing(TimingMode::Lossy { base: 1.2 });
        b.iter(|| {
            World::run(
                &WorldConfig::new(8),
                move |r| PilgrimTracer::new(r, cfg),
                |env| by_name("stirturb", 20)(env),
            )
        })
    });
    g.bench_function("scalatrace", |b| {
        b.iter(|| {
            World::run(&WorldConfig::new(8), ScalaTraceTracer::new, |env| {
                by_name("stirturb", 20)(env)
            })
        })
    });
    g.bench_function("raw", |b| {
        b.iter(|| {
            World::run(&WorldConfig::new(8), RawTracer::new, |env| by_name("stirturb", 20)(env))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tracers
}
criterion_main!(benches);
