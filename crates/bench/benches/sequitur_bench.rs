//! Criterion microbenchmarks for the Sequitur core: append throughput on
//! the pattern classes that matter for MPI traces (tight loops, nested
//! loops, irregular tails), plus expansion and serialization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pilgrim_sequitur::{FlatGrammar, Grammar};

fn loop_sequence(iters: usize) -> Vec<u32> {
    let mut seq = Vec::with_capacity(iters * 4);
    for _ in 0..iters {
        seq.extend_from_slice(&[1, 2, 3, 4]);
    }
    seq
}

fn irregular_sequence(n: usize) -> Vec<u32> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 12) as u32
        })
        .collect()
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequitur_push");
    for (name, seq) in [
        ("regular_loop_40k", loop_sequence(10_000)),
        ("irregular_40k", irregular_sequence(40_000)),
        ("mixed_40k", {
            let mut s = loop_sequence(8_000);
            s.extend(irregular_sequence(8_000));
            s
        }),
    ] {
        g.throughput(Throughput::Elements(seq.len() as u64));
        g.bench_function(name, |b| {
            b.iter_batched(
                Grammar::new,
                |mut gr| {
                    for &t in &seq {
                        gr.push(t);
                    }
                    gr
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_push_run(c: &mut Criterion) {
    c.bench_function("sequitur_push_run_counted_1m", |b| {
        b.iter_batched(
            Grammar::new,
            |mut gr| {
                // A counted run of one million identical terminals: O(1).
                gr.push_run(7, 1_000_000);
                gr
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_flat(c: &mut Criterion) {
    let mut gr = Grammar::new();
    for &t in &loop_sequence(10_000) {
        gr.push(t);
    }
    for &t in &irregular_sequence(5_000) {
        gr.push(t);
    }
    let flat = gr.to_flat();
    c.bench_function("sequitur_to_flat", |b| b.iter(|| gr.to_flat()));
    c.bench_function("sequitur_expand_45k", |b| b.iter(|| flat.expand()));
    c.bench_function("sequitur_serialize", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            flat.serialize(&mut buf);
            buf
        })
    });
    let mut buf = Vec::new();
    flat.serialize(&mut buf);
    c.bench_function("sequitur_deserialize", |b| b.iter(|| FlatGrammar::decode(&buf).unwrap()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_push, bench_push_run, bench_flat
}
criterion_main!(benches);
