//! Seeded fault injection for the ingest service layer.
//!
//! [`IngestFaultPlan`] is the collector-side sibling of `mpi_sim`'s
//! `FaultPlan`: every decision — a worker panic while folding a segment,
//! a poisoned segment that panics on every retry, an I/O error or short
//! write on a spill or WAL append, a stalled rank whose completion never
//! arrives, simulated disk exhaustion — is a pure function of the plan's
//! seed and the fault coordinates `(job, rank, seq)`. Two runs with the
//! same plan inject exactly the same faults, which is what the seeded
//! chaos-ingest determinism tests rely on.
//!
//! The plan is threaded through
//! [`IngestConfig::faults`](crate::ingest::IngestConfig); a default plan
//! injects nothing and costs one branch per decision point.

/// A seeded, deterministic schedule of ingest-layer faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestFaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Probability that folding a segment panics the worker on its
    /// *first* attempt only (a transient fault; the bounded retry then
    /// succeeds).
    pub segment_panic_rate: f64,
    /// Probability that a segment is poisoned: folding it panics on
    /// *every* attempt, so the collector quarantines it after the retry
    /// budget and the rank degrades.
    pub poison_rate: f64,
    /// Probability that a job's container spill fails with an injected
    /// short write — half the bytes land in the `.tmp` file, then the
    /// write errors, leaving a torn temporary for salvage to chew on.
    pub spill_io_rate: f64,
    /// Probability that a segment's WAL append fails with an injected
    /// short write (the frame is torn mid-record; the writer truncates
    /// back to the last clean frame, so the segment is lost to replay).
    pub wal_io_rate: f64,
    /// Probability that a rank's completion is swallowed (a stalled
    /// producer): the rank never completes and the job finishes only
    /// through its deadline seal.
    pub stall_rate: f64,
    /// Simulated disk capacity for spill + WAL writes combined; once the
    /// injected byte meter passes this, every durable write fails with
    /// an out-of-space error. `None` = unbounded.
    pub disk_capacity: Option<u64>,
}

impl IngestFaultPlan {
    pub fn new(seed: u64) -> Self {
        IngestFaultPlan { seed, ..Default::default() }
    }

    pub fn segment_panic_rate(mut self, p: f64) -> Self {
        self.segment_panic_rate = p;
        self
    }

    pub fn poison_rate(mut self, p: f64) -> Self {
        self.poison_rate = p;
        self
    }

    pub fn spill_io_rate(mut self, p: f64) -> Self {
        self.spill_io_rate = p;
        self
    }

    pub fn wal_io_rate(mut self, p: f64) -> Self {
        self.wal_io_rate = p;
        self
    }

    pub fn stall_rate(mut self, p: f64) -> Self {
        self.stall_rate = p;
        self
    }

    pub fn disk_capacity(mut self, bytes: u64) -> Self {
        self.disk_capacity = Some(bytes);
        self
    }

    /// True when the plan can inject at least one fault.
    pub fn is_active(&self) -> bool {
        self.segment_panic_rate > 0.0
            || self.poison_rate > 0.0
            || self.spill_io_rate > 0.0
            || self.wal_io_rate > 0.0
            || self.stall_rate > 0.0
            || self.disk_capacity.is_some()
    }

    /// Transient worker panic while folding segment `(job, rank, seq)`?
    /// Fires on the first attempt only.
    pub fn segment_panics(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x01, job, rank, seq)) < self.segment_panic_rate
    }

    /// Poisoned segment: panics on every attempt, quarantine after the
    /// retry budget.
    pub fn segment_poisoned(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x02, job, rank, seq)) < self.poison_rate
    }

    /// Injected short write on job `job`'s container spill?
    pub fn spill_fails(&self, job: u64) -> bool {
        coin(hash4(self.seed ^ 0x03, job, 0, 0)) < self.spill_io_rate
    }

    /// Injected short write appending segment `(job, rank, seq)` to the
    /// WAL? Keyed on the segment, not the append index, so the decision
    /// does not depend on how concurrent streams interleave.
    pub fn wal_append_fails(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x04, job, rank, seq)) < self.wal_io_rate
    }

    /// Swallow rank `rank`'s completion for job `job` (stalled producer)?
    pub fn completion_stalled(&self, job: u64, rank: u64) -> bool {
        coin(hash4(self.seed ^ 0x05, job, rank, 0)) < self.stall_rate
    }

    /// Does writing `len` more durable bytes (after `already` injected
    /// bytes) exceed the simulated disk?
    pub fn disk_full(&self, already: u64, len: u64) -> bool {
        self.disk_capacity.is_some_and(|cap| already.saturating_add(len) > cap)
    }
}

/// SplitMix64 finalizer — the same cheap mixer `mpi_sim::fault` uses.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    splitmix(splitmix(splitmix(splitmix(a) ^ b) ^ c) ^ d)
}

/// Maps a hash to [0, 1).
fn coin(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = IngestFaultPlan::new(7);
        assert!(!p.is_active());
        for i in 0..200 {
            assert!(!p.segment_panics(i, i, i));
            assert!(!p.segment_poisoned(i, i, i));
            assert!(!p.spill_fails(i));
            assert!(!p.wal_append_fails(i, i, i));
            assert!(!p.completion_stalled(i, i));
            assert!(!p.disk_full(u64::MAX - 1, 1));
        }
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let a = IngestFaultPlan::new(42).segment_panic_rate(0.3).poison_rate(0.2);
        let b = a.clone();
        for job in 0..16 {
            for seq in 0..16 {
                assert_eq!(a.segment_panics(job, 1, seq), b.segment_panics(job, 1, seq));
                assert_eq!(a.segment_poisoned(job, 1, seq), b.segment_poisoned(job, 1, seq));
            }
        }
        // A different seed flips at least one decision at this rate.
        let c = IngestFaultPlan::new(43).segment_panic_rate(0.3);
        let flips =
            (0..256).filter(|&i| a.segment_panics(i, 1, 0) != c.segment_panics(i, 1, 0)).count();
        assert!(flips > 0, "seeds 42 and 43 agreed on all 256 decisions");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = IngestFaultPlan::new(9).segment_panic_rate(0.25);
        let hits = (0..4000).filter(|&i| p.segment_panics(i, i % 7, i % 13)).count();
        assert!((700..1300).contains(&hits), "0.25 rate produced {hits}/4000 hits");
    }

    #[test]
    fn disk_capacity_trips_exactly_once_past_the_cap() {
        let p = IngestFaultPlan::new(1).disk_capacity(1000);
        assert!(p.is_active());
        assert!(!p.disk_full(0, 1000));
        assert!(p.disk_full(1, 1000));
        assert!(p.disk_full(1000, 1));
    }
}
