//! Error types for fallible decoding.
//!
//! Every deserializer in the public API returns `Result<_, DecodeError>`
//! rather than a bare `Option`, so callers can tell a short read from
//! structural corruption. The type itself lives in `pilgrim_sequitur`
//! (the lowest layer that decodes anything) and is re-exported here.

pub use pilgrim_sequitur::DecodeError;
