//! Overhead accounting (paper Fig 7/8): wall-clock time spent in
//! intra-process compression and in the two inter-process phases.

use std::time::Duration;

/// Wall-clock overhead decomposition for one rank.
#[derive(Debug, Default, Clone, Copy)]
pub struct OverheadStats {
    /// Time in `on_call` (signature encoding, CST, CFG growth).
    pub intra: Duration,
    /// Time merging CSTs at finalize.
    pub inter_cst: Duration,
    /// Time merging CFGs (including the final Sequitur pass).
    pub inter_cfg: Duration,
}

impl OverheadStats {
    /// Total tracing overhead.
    pub fn total(&self) -> Duration {
        self.intra + self.inter_cst + self.inter_cfg
    }

    /// Percentage decomposition `(intra, cst, cfg)`; zeros if untraced.
    pub fn decomposition(&self) -> (f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.intra.as_secs_f64() / total * 100.0,
            self.inter_cst.as_secs_f64() / total * 100.0,
            self.inter_cfg.as_secs_f64() / total * 100.0,
        )
    }

    /// Accumulates another rank's stats (for whole-run summaries).
    pub fn merge(&mut self, other: &OverheadStats) {
        self.intra += other.intra;
        self.inter_cst += other.inter_cst;
        self.inter_cfg += other.inter_cfg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_sums_to_hundred() {
        let s = OverheadStats {
            intra: Duration::from_millis(60),
            inter_cst: Duration::from_millis(10),
            inter_cfg: Duration::from_millis(30),
        };
        let (a, b, c) = s.decomposition();
        assert!((a + b + c - 100.0).abs() < 1e-9);
        assert!(a > c && c > b);
    }

    #[test]
    fn empty_stats_decompose_to_zero() {
        let s = OverheadStats::default();
        assert_eq!(s.decomposition(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OverheadStats { intra: Duration::from_millis(5), ..Default::default() };
        let b = OverheadStats {
            intra: Duration::from_millis(7),
            inter_cfg: Duration::from_millis(1),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.intra, Duration::from_millis(12));
        assert_eq!(a.inter_cfg, Duration::from_millis(1));
    }
}
