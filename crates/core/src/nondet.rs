//! The nondeterminism side-channel behind deterministic record/replay
//! (`PGND`).
//!
//! A compressed trace pins down *what* every rank did, but not the
//! choices the MPI runtime made freely along the way: which sender an
//! `ANY_SOURCE` receive matched, which index a `Waitany` completed,
//! whether an `Iprobe` or `Test` saw its flag raised. [`NondetLog`]
//! records exactly those resolutions — one [`NondetEvent`] per
//! `(rank, call_index)` — so a replay can feed them back through
//! [`mpi_sim::ReplayDirector`] and reproduce the recorded schedule
//! bit-for-bit.
//!
//! The log travels as the `PGND` section of the `PGC1` container
//! (varint/zigzag entries, delta-coded call indices, CRC'd like every
//! other section; see DESIGN.md §9). Because the trace itself stores the
//! *outcome* of every call (statuses, completion indices, flags),
//! [`NondetLog::derive`] can recompute the log from a decoded trace
//! alone — the pure replay oracle that strict replay and the minimizer
//! use to detect divergence without re-executing anything.
//!
//! Match sources are stored as deltas relative to the receive's caller
//! rank in its communicator — the same relative form the signature
//! encoder uses for status ranks — so deriving them from decoded
//! `RankCode::Relative` statuses needs no communicator-membership
//! reconstruction. (Traces encoded with `relative_ranks` disabled fall
//! back to assuming the caller's communicator rank equals its world
//! rank, which holds for `MPI_COMM_WORLD` and its duplicates.)

use std::collections::{BTreeMap, HashMap};

use mpi_sim::{Directive, FuncId};
use pilgrim_sequitur::{read_varint, write_varint, DecodeError};

use crate::decode::decode_rank_calls;
use crate::encode::{unzigzag, zigzag, EncodedArg, EncodedCall, RankCode};
use crate::trace::GlobalTrace;

/// `MPI_ANY_TAG` as it appears in recorded tag arguments.
const ANY_TAG: i64 = -1;

/// One recorded nondeterministic resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NondetEvent {
    /// A wildcard receive or probe matched `(source, tag)`. `source` is
    /// a delta relative to the receive's caller rank in its
    /// communicator; `tag` is absolute. For a wildcard `Irecv` the event
    /// is keyed at the *irecv's* call index (where replay must pin the
    /// posting), not at the completion call that revealed the match.
    Match { source: i32, tag: i32 },
    /// An `MPI_Iprobe` outcome: `Some((source_delta, tag))` for a hit,
    /// `None` for a miss. Recorded for every iprobe — the flag is
    /// nondeterministic even for concrete `(source, tag)`.
    Iprobe { hit: Option<(i32, i32)> },
    /// Waitany/Testany completion index (`None`: nothing completed).
    AnyOf { index: Option<u32> },
    /// Waitsome/Testsome completion set, in completion order.
    SomeOf { indices: Vec<u32> },
    /// Test/Testall flag outcome.
    Flag { flag: bool },
}

impl NondetEvent {
    /// The replay directive this event pins down.
    pub fn directive(&self) -> Directive {
        match self {
            NondetEvent::Match { source, tag } => {
                Directive::MatchSource { source: *source, tag: *tag }
            }
            NondetEvent::Iprobe { hit: Some((source, tag)) } => {
                Directive::MatchSource { source: *source, tag: *tag }
            }
            NondetEvent::Iprobe { hit: None } => Directive::Flag(false),
            NondetEvent::AnyOf { index } => Directive::CompleteOne { index: *index },
            NondetEvent::SomeOf { indices } => Directive::CompleteSet { indices: indices.clone() },
            NondetEvent::Flag { flag } => Directive::Flag(*flag),
        }
    }
}

// Wire kinds for the PGND entry payloads.
const K_MATCH: u8 = 0;
const K_IPROBE_MISS: u8 = 1;
const K_IPROBE_HIT: u8 = 2;
const K_ANY_NONE: u8 = 3;
const K_ANY_SOME: u8 = 4;
const K_SOME: u8 = 5;
const K_FLAG_FALSE: u8 = 6;
const K_FLAG_TRUE: u8 = 7;

/// Per-rank map of call index → recorded resolution. The side-channel a
/// recording ships alongside the compressed trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NondetLog {
    /// `ranks[r]` holds rank `r`'s events keyed by 0-based call index.
    pub ranks: Vec<BTreeMap<u64, NondetEvent>>,
}

impl NondetLog {
    /// An empty log for `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        NondetLog { ranks: vec![BTreeMap::new(); nranks] }
    }

    /// Total recorded events across all ranks.
    pub fn len(&self) -> usize {
        self.ranks.iter().map(|r| r.len()).sum()
    }

    /// Whether no rank recorded any event.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(|r| r.is_empty())
    }

    /// Records `event` for `(rank, call_index)`.
    pub fn insert(&mut self, rank: usize, call_index: u64, event: NondetEvent) {
        if let Some(map) = self.ranks.get_mut(rank) {
            map.insert(call_index, event);
        }
    }

    /// One rank's events as replay directives, keyed by call index.
    pub fn directives(&self, rank: usize) -> HashMap<u64, Directive> {
        self.ranks
            .get(rank)
            .map(|m| m.iter().map(|(&i, e)| (i, e.directive())).collect())
            .unwrap_or_default()
    }

    /// Appends the `PGND` payload (excluding the section header/CRC,
    /// which [`crate::export::write_container`] adds).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.ranks.len() as u64);
        for rank in &self.ranks {
            write_varint(out, rank.len() as u64);
            let mut prev = 0u64;
            for (&idx, ev) in rank {
                // BTreeMap iterates ascending, so deltas stay small.
                write_varint(out, idx - prev);
                prev = idx;
                match ev {
                    NondetEvent::Match { source, tag } => {
                        out.push(K_MATCH);
                        write_varint(out, zigzag(*source as i64));
                        write_varint(out, zigzag(*tag as i64));
                    }
                    NondetEvent::Iprobe { hit: None } => out.push(K_IPROBE_MISS),
                    NondetEvent::Iprobe { hit: Some((source, tag)) } => {
                        out.push(K_IPROBE_HIT);
                        write_varint(out, zigzag(*source as i64));
                        write_varint(out, zigzag(*tag as i64));
                    }
                    NondetEvent::AnyOf { index: None } => out.push(K_ANY_NONE),
                    NondetEvent::AnyOf { index: Some(i) } => {
                        out.push(K_ANY_SOME);
                        write_varint(out, *i as u64);
                    }
                    NondetEvent::SomeOf { indices } => {
                        out.push(K_SOME);
                        write_varint(out, indices.len() as u64);
                        for &i in indices {
                            write_varint(out, i as u64);
                        }
                    }
                    NondetEvent::Flag { flag: false } => out.push(K_FLAG_FALSE),
                    NondetEvent::Flag { flag: true } => out.push(K_FLAG_TRUE),
                }
            }
        }
    }

    /// Decodes a `PGND` payload. Corruption surfaces as a typed
    /// [`DecodeError`], never a panic or an unbounded allocation.
    pub fn decode(buf: &[u8]) -> Result<NondetLog, DecodeError> {
        let mut pos = 0usize;
        let uv = |pos: &mut usize| -> Result<u64, DecodeError> {
            let at = *pos;
            read_varint(buf, pos).ok_or(DecodeError::TruncatedVarint { offset: at })
        };
        let nranks = uv(&mut pos)?;
        // Every rank costs at least one byte (its entry count).
        if nranks > (buf.len() - pos) as u64 {
            return Err(DecodeError::Corrupt { what: "nondet rank count", offset: 0 });
        }
        let mut ranks = Vec::with_capacity(nranks as usize);
        for _ in 0..nranks {
            let n = uv(&mut pos)?;
            // Every entry costs at least two bytes (index delta + kind).
            if n > ((buf.len() - pos) / 2) as u64 {
                return Err(DecodeError::Corrupt { what: "nondet entry count", offset: pos });
            }
            let mut map = BTreeMap::new();
            let mut idx = 0u64;
            for k in 0..n {
                let delta = uv(&mut pos)?;
                idx = idx.wrapping_add(delta);
                if k > 0 && delta == 0 {
                    return Err(DecodeError::Corrupt {
                        what: "nondet duplicate call index",
                        offset: pos,
                    });
                }
                let at = pos;
                let kind = *buf
                    .get(pos)
                    .ok_or(DecodeError::Truncated { what: "nondet entry kind", offset: at })?;
                pos += 1;
                let ev = match kind {
                    K_MATCH | K_IPROBE_HIT => {
                        let source = unzigzag(uv(&mut pos)?) as i32;
                        let tag = unzigzag(uv(&mut pos)?) as i32;
                        if kind == K_MATCH {
                            NondetEvent::Match { source, tag }
                        } else {
                            NondetEvent::Iprobe { hit: Some((source, tag)) }
                        }
                    }
                    K_IPROBE_MISS => NondetEvent::Iprobe { hit: None },
                    K_ANY_NONE => NondetEvent::AnyOf { index: None },
                    K_ANY_SOME => NondetEvent::AnyOf { index: Some(uv(&mut pos)? as u32) },
                    K_SOME => {
                        let len = uv(&mut pos)?;
                        if len > (buf.len() - pos) as u64 {
                            return Err(DecodeError::Corrupt {
                                what: "nondet completion-set length",
                                offset: pos,
                            });
                        }
                        let mut indices = Vec::with_capacity(len as usize);
                        for _ in 0..len {
                            indices.push(uv(&mut pos)? as u32);
                        }
                        NondetEvent::SomeOf { indices }
                    }
                    K_FLAG_FALSE => NondetEvent::Flag { flag: false },
                    K_FLAG_TRUE => NondetEvent::Flag { flag: true },
                    _ => {
                        return Err(DecodeError::Corrupt { what: "nondet entry kind", offset: at })
                    }
                };
                map.insert(idx, ev);
            }
            ranks.push(map);
        }
        if pos != buf.len() {
            return Err(DecodeError::TrailingBytes { consumed: pos, len: buf.len() });
        }
        Ok(NondetLog { ranks })
    }

    /// Recomputes the nondeterminism log a recording *should* contain
    /// from the decoded trace alone — the statuses, completion indices
    /// and flags stored in the call signatures pin down every resolution
    /// the runtime made. Comparing the derived log against the recorded
    /// one is a pure divergence oracle: no re-execution, no timeouts.
    pub fn derive(trace: &GlobalTrace) -> Result<NondetLog, DecodeError> {
        let mut ranks = Vec::with_capacity(trace.nranks);
        for rank in 0..trace.nranks {
            let calls = decode_rank_calls(trace, rank)?;
            ranks.push(derive_rank(rank as i64, &calls, BTreeMap::new()));
        }
        Ok(NondetLog { ranks })
    }
}

/// [`derive_rank`] for one already-decoded rank — the minimizer's pure
/// oracle evaluates candidate call subsets without rebuilding a trace.
pub(crate) fn derive_rank_events(
    world_rank: i64,
    calls: &[EncodedCall],
) -> BTreeMap<u64, NondetEvent> {
    derive_rank(world_rank, calls, BTreeMap::new())
}

/// Derive-side request bookkeeping: one entry per live request symbol
/// use, FIFO per symbol (mirroring [`crate::replay::Replayer`]'s handle
/// pools and the tracer's id pool reuse order).
struct DReq {
    /// `Some(call_index)` when created by a wildcard `Irecv` whose match
    /// resolution is still unreported.
    wildcard: Option<u64>,
    /// Persistent requests survive completion until `MPI_Request_free`.
    persistent: bool,
}

/// Extracts one rank's events from its decoded call sequence.
fn derive_rank(
    world_rank: i64,
    calls: &[EncodedCall],
    mut out: BTreeMap<u64, NondetEvent>,
) -> BTreeMap<u64, NondetEvent> {
    use EncodedArg as A;
    let mut fifo: HashMap<u64, Vec<DReq>> = HashMap::new();
    for (i, call) in calls.iter().enumerate() {
        let idx = i as u64;
        let a = &call.args;
        let rank_at = |j: usize| match a.get(j) {
            Some(A::Rank(code)) => Some(*code),
            _ => None,
        };
        let tag_at = |j: usize| match a.get(j) {
            Some(A::Tag(t)) => Some(*t),
            _ => None,
        };
        let int_at = |j: usize| match a.get(j) {
            Some(A::Int(v)) => Some(*v),
            _ => None,
        };
        let status_at = |j: usize| match a.get(j) {
            Some(A::Status { source, tag }) => Some((*source, *tag)),
            _ => None,
        };
        // A resolved status source as a caller-relative delta (see the
        // module docs for the `Absolute` fallback).
        let delta_of = |code: RankCode| match code {
            RankCode::Relative(d) => Some(d as i32),
            RankCode::Absolute(r) => Some((r - world_rank) as i32),
            RankCode::AnySource | RankCode::ProcNull => None,
        };
        let wildcard = |src: Option<RankCode>, tag: Option<i64>| {
            !matches!(src, Some(RankCode::ProcNull))
                && (matches!(src, Some(RankCode::AnySource)) || tag == Some(ANY_TAG))
        };
        let match_event = |st: Option<(RankCode, i64)>| {
            st.and_then(|(code, tag)| {
                delta_of(code).map(|source| NondetEvent::Match { source, tag: tag as i32 })
            })
        };
        let Some(func) = FuncId::from_id(call.func) else { continue };
        // Completion bookkeeping shared by the wait/test family: pop the
        // completed symbol's oldest live entry and, if it was a wildcard
        // irecv, report the match it resolved to at the irecv's index.
        let complete = |fifo: &mut HashMap<u64, Vec<DReq>>,
                        out: &mut BTreeMap<u64, NondetEvent>,
                        sym: u64,
                        st: Option<(RankCode, i64)>| {
            let Some(q) = fifo.get_mut(&sym) else { return };
            if q.is_empty() {
                return;
            }
            if q[0].persistent {
                return;
            }
            let entry = q.remove(0);
            if let (Some(irecv_idx), Some(ev)) = (entry.wildcard, match_event(st)) {
                out.insert(irecv_idx, ev);
            }
        };
        let req_sym = |j: usize| match a.get(j) {
            Some(A::Request(sym)) => Some(*sym),
            _ => None,
        };
        let req_arr = |j: usize| match a.get(j) {
            Some(A::RequestArr(v)) => Some(v.as_slice()),
            _ => None,
        };
        let status_arr = |j: usize| match a.get(j) {
            Some(A::StatusArr(v)) => Some(v.as_slice()),
            _ => None,
        };
        match func {
            FuncId::Recv if wildcard(rank_at(3), tag_at(4)) => {
                if let Some(ev) = match_event(status_at(6)) {
                    out.insert(idx, ev);
                }
            }
            FuncId::Sendrecv if wildcard(rank_at(8), tag_at(9)) => {
                if let Some(ev) = match_event(status_at(11)) {
                    out.insert(idx, ev);
                }
            }
            FuncId::SendrecvReplace if wildcard(rank_at(5), tag_at(6)) => {
                if let Some(ev) = match_event(status_at(8)) {
                    out.insert(idx, ev);
                }
            }
            FuncId::Probe if wildcard(rank_at(0), tag_at(1)) => {
                if let Some(ev) = match_event(status_at(3)) {
                    out.insert(idx, ev);
                }
            }
            FuncId::Iprobe => {
                let hit = if int_at(3) == Some(1) {
                    status_at(4).and_then(|(code, tag)| delta_of(code).map(|d| (d, tag as i32)))
                } else {
                    None
                };
                out.insert(idx, NondetEvent::Iprobe { hit });
            }
            FuncId::Irecv => {
                let wc = wildcard(rank_at(3), tag_at(4));
                if let Some(sym) = req_sym(6) {
                    fifo.entry(sym)
                        .or_default()
                        .push(DReq { wildcard: wc.then_some(idx), persistent: false });
                }
            }
            FuncId::Isend
            | FuncId::Ibsend
            | FuncId::Issend
            | FuncId::Irsend
            | FuncId::Ibarrier
            | FuncId::Iallreduce
            | FuncId::CommIdup => {
                if let Some(A::Request(sym)) = a.iter().rev().find(|x| matches!(x, A::Request(_))) {
                    fifo.entry(*sym).or_default().push(DReq { wildcard: None, persistent: false });
                }
            }
            FuncId::SendInit
            | FuncId::BsendInit
            | FuncId::SsendInit
            | FuncId::RsendInit
            | FuncId::RecvInit => {
                if let Some(A::Request(sym)) = a.iter().rev().find(|x| matches!(x, A::Request(_))) {
                    fifo.entry(*sym).or_default().push(DReq { wildcard: None, persistent: true });
                }
            }
            FuncId::RequestFree => {
                if let Some(sym) = req_sym(0) {
                    if let Some(q) = fifo.get_mut(&sym) {
                        if !q.is_empty() {
                            q.remove(0);
                        }
                    }
                }
            }
            FuncId::Wait => {
                if let Some(sym) = req_sym(0) {
                    complete(&mut fifo, &mut out, sym, status_at(1));
                }
            }
            FuncId::Waitall => {
                let (Some(syms), sts) = (req_arr(1), status_arr(2)) else { continue };
                for (k, sym) in syms.iter().enumerate() {
                    if let Some(sym) = sym {
                        let st = sts.and_then(|s| s.get(k)).copied();
                        complete(&mut fifo, &mut out, *sym, st);
                    }
                }
            }
            FuncId::Waitany => {
                let picked = int_at(2).filter(|&v| v >= 0);
                out.insert(idx, NondetEvent::AnyOf { index: picked.map(|v| v as u32) });
                if let (Some(v), Some(syms)) = (picked, req_arr(1)) {
                    if let Some(Some(sym)) = syms.get(v as usize) {
                        complete(&mut fifo, &mut out, *sym, status_at(3));
                    }
                }
            }
            FuncId::Testany => {
                let picked =
                    (int_at(3) == Some(1)).then(|| int_at(2).filter(|&v| v >= 0)).flatten();
                out.insert(idx, NondetEvent::AnyOf { index: picked.map(|v| v as u32) });
                if let (Some(v), Some(syms)) = (picked, req_arr(1)) {
                    if let Some(Some(sym)) = syms.get(v as usize) {
                        complete(&mut fifo, &mut out, *sym, status_at(4));
                    }
                }
            }
            FuncId::Waitsome | FuncId::Testsome => {
                let indices: Vec<u32> = match a.get(3) {
                    Some(A::IntArr(v)) => v.iter().map(|&x| x as u32).collect(),
                    _ => Vec::new(),
                };
                out.insert(idx, NondetEvent::SomeOf { indices: indices.clone() });
                if let Some(syms) = req_arr(1) {
                    let sts = status_arr(4);
                    for (k, &j) in indices.iter().enumerate() {
                        if let Some(Some(sym)) = syms.get(j as usize) {
                            let st = sts.and_then(|s| s.get(k)).copied();
                            complete(&mut fifo, &mut out, *sym, st);
                        }
                    }
                }
            }
            FuncId::Test => {
                let flag = int_at(1) == Some(1);
                out.insert(idx, NondetEvent::Flag { flag });
                if flag {
                    if let Some(sym) = req_sym(0) {
                        complete(&mut fifo, &mut out, sym, status_at(2));
                    }
                }
            }
            FuncId::Testall => {
                let flag = int_at(2) == Some(1);
                out.insert(idx, NondetEvent::Flag { flag });
                if flag {
                    let (Some(syms), sts) = (req_arr(1), status_arr(3)) else { continue };
                    for (k, sym) in syms.iter().enumerate() {
                        if let Some(sym) = sym {
                            let st = sts.and_then(|s| s.get(k)).copied();
                            complete(&mut fifo, &mut out, *sym, st);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> NondetLog {
        let mut log = NondetLog::new(3);
        log.insert(0, 4, NondetEvent::Match { source: 2, tag: 7 });
        log.insert(0, 9, NondetEvent::Iprobe { hit: None });
        log.insert(0, 11, NondetEvent::Iprobe { hit: Some((-3, 0)) });
        log.insert(1, 0, NondetEvent::AnyOf { index: Some(5) });
        log.insert(1, 1, NondetEvent::AnyOf { index: None });
        log.insert(1, 2, NondetEvent::SomeOf { indices: vec![3, 1, 2] });
        log.insert(2, 100, NondetEvent::Flag { flag: true });
        log.insert(2, 101, NondetEvent::Flag { flag: false });
        log
    }

    #[test]
    fn roundtrip() {
        let log = sample_log();
        let mut buf = Vec::new();
        log.serialize(&mut buf);
        let back = NondetLog::decode(&buf).expect("roundtrip decodes");
        assert_eq!(log, back);
    }

    #[test]
    fn empty_roundtrip() {
        let log = NondetLog::new(4);
        let mut buf = Vec::new();
        log.serialize(&mut buf);
        assert_eq!(NondetLog::decode(&buf).expect("empty decodes"), log);
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn truncations_and_flips_never_panic() {
        let log = sample_log();
        let mut buf = Vec::new();
        log.serialize(&mut buf);
        for cut in 0..buf.len() {
            let _ = NondetLog::decode(&buf[..cut]);
        }
        for i in 0..buf.len() {
            for bit in 0..8 {
                let mut dam = buf.clone();
                dam[i] ^= 1 << bit;
                let _ = NondetLog::decode(&dam);
            }
        }
    }

    #[test]
    fn directives_map_events() {
        let log = sample_log();
        let d = log.directives(0);
        assert_eq!(d.get(&4), Some(&Directive::MatchSource { source: 2, tag: 7 }));
        assert_eq!(d.get(&9), Some(&Directive::Flag(false)));
        assert_eq!(d.get(&11), Some(&Directive::MatchSource { source: -3, tag: 0 }));
        let d1 = log.directives(1);
        assert_eq!(d1.get(&0), Some(&Directive::CompleteOne { index: Some(5) }));
        assert_eq!(d1.get(&2), Some(&Directive::CompleteSet { indices: vec![3, 1, 2] }));
    }
}
