//! Resource governor: live byte accounting for every compressible
//! component of the tracer, checked against [`PilgrimConfig::memory_budget`]
//! (`crate::tracer::PilgrimConfig`).
//!
//! Pilgrim's compression assumes repetitive MPI programs. On an
//! adversarial call stream (every signature distinct) the CST and the
//! Sequitur grammar grow linearly and the tracer — not the application —
//! becomes the OOM risk. The governor turns unbounded growth into an
//! explicit, ordered degradation ladder:
//!
//! 1. **Freeze** ([`DegradationStage::FreezeGrammar`], at ½ budget): the
//!    call grammar drops its digram index and stops forming rules
//!    (`Grammar::freeze` in `pilgrim_sequitur`); per-call growth becomes
//!    strictly bounded.
//! 2. **Aggregate timing** ([`DegradationStage::AggregateTiming`], at ¾
//!    budget): per-call duration/interval recording collapses to the
//!    per-signature aggregates the CST already keeps.
//! 3. **Seal** ([`DegradationStage::SealSegment`], at budget): the current
//!    CST + grammar are sealed into a checkpoint-format segment (spilled
//!    out of the governed working set) and tracing restarts empty;
//!    segments are concatenated at finalize exactly like the
//!    inter-process `S -> S1 S2` merge rule.
//!
//! Every transition is a [`DegradationEvent`] recorded in the trace's
//! completeness manifest, so consumers can see exactly when and why
//! fidelity was reduced. With no budget configured the governor is inert
//! and the tracer's behavior is byte-identical to an ungoverned run.

use pilgrim_sequitur::{decode_varint, varint_len, write_varint, DecodeError};

use crate::metrics::MetricsRegistry;

/// One rung of the degradation ladder, in the order the governor applies
/// them under memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationStage {
    /// Sequitur rule creation frozen; symbols append raw.
    FreezeGrammar,
    /// Per-call timing dropped; per-signature aggregates remain.
    AggregateTiming,
    /// Current grammar sealed as a segment; tracing restarted empty.
    SealSegment,
    /// Streamed delivery over the network degraded to a local spill file
    /// after the reconnect budget ran out ([`crate::net`]). Call data is
    /// intact on the client's disk; only the collection path degraded.
    /// This rung sits *outside* the memory ladder above — it neither
    /// implies nor is implied by the memory rungs.
    LocalSpill,
}

impl DegradationStage {
    /// Stable wire code (also the ladder order, 1-based).
    pub fn code(self) -> u8 {
        match self {
            DegradationStage::FreezeGrammar => 1,
            DegradationStage::AggregateTiming => 2,
            DegradationStage::SealSegment => 3,
            DegradationStage::LocalSpill => 4,
        }
    }

    /// Inverse of [`DegradationStage::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(DegradationStage::FreezeGrammar),
            2 => Some(DegradationStage::AggregateTiming),
            3 => Some(DegradationStage::SealSegment),
            4 => Some(DegradationStage::LocalSpill),
            _ => None,
        }
    }

    /// Human-readable name, used in reports and `trace_tool fidelity`.
    pub fn name(self) -> &'static str {
        match self {
            DegradationStage::FreezeGrammar => "freeze-grammar",
            DegradationStage::AggregateTiming => "aggregate-timing",
            DegradationStage::SealSegment => "seal-segment",
            DegradationStage::LocalSpill => "local-spill",
        }
    }

    /// True for the memory-pressure rungs the governor applies in order;
    /// false for out-of-band degradations like [`Self::LocalSpill`].
    pub fn is_memory_rung(self) -> bool {
        !matches!(self, DegradationStage::LocalSpill)
    }
}

/// A governed component of the tracer's working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Call signature table.
    Cst,
    /// The per-rank Sequitur call grammar.
    CallGrammar,
    /// Duration/interval timing grammars.
    Timing,
    /// Live memory segments tracked for pointer encoding.
    Memory,
    /// Reference capture buffer (verification runs only).
    Capture,
    /// The wire transport to a remote collector ([`crate::net`]).
    Network,
}

impl Component {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            Component::Cst => 0,
            Component::CallGrammar => 1,
            Component::Timing => 2,
            Component::Memory => 3,
            Component::Capture => 4,
            Component::Network => 5,
        }
    }

    /// Inverse of [`Component::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Component::Cst),
            1 => Some(Component::CallGrammar),
            2 => Some(Component::Timing),
            3 => Some(Component::Memory),
            4 => Some(Component::Capture),
            5 => Some(Component::Network),
            _ => None,
        }
    }

    /// Human-readable name, used in metrics keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Component::Cst => "cst",
            Component::CallGrammar => "grammar",
            Component::Timing => "timing",
            Component::Memory => "memory",
            Component::Capture => "capture",
            Component::Network => "network",
        }
    }
}

/// One governor transition, recorded in the completeness manifest: at
/// `call_index`, `stage` was applied while the working set held `bytes`,
/// with `component` the largest contributor at that moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationEvent {
    /// 1-based index of the traced call that triggered the transition.
    pub call_index: u64,
    /// Which rung of the ladder was applied.
    pub stage: DegradationStage,
    /// Largest component of the working set when the transition fired.
    pub component: Component,
    /// Total governed bytes when the transition fired.
    pub bytes: u64,
}

impl DegradationEvent {
    pub(crate) fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.call_index);
        write_varint(out, self.stage.code() as u64);
        write_varint(out, self.component.code() as u64);
        write_varint(out, self.bytes);
    }

    pub(crate) fn byte_size(&self) -> usize {
        varint_len(self.call_index)
            + varint_len(self.stage.code() as u64)
            + varint_len(self.component.code() as u64)
            + varint_len(self.bytes)
    }

    pub(crate) fn decode(buf: &[u8], pos: &mut usize) -> Result<Self, DecodeError> {
        let call_index = decode_varint(buf, pos)?;
        let stage_off = *pos;
        let stage = DegradationStage::from_code(decode_varint(buf, pos)? as u8)
            .ok_or(DecodeError::Corrupt { what: "degradation stage", offset: stage_off })?;
        let comp_off = *pos;
        let component = Component::from_code(decode_varint(buf, pos)? as u8)
            .ok_or(DecodeError::Corrupt { what: "degradation component", offset: comp_off })?;
        let bytes = decode_varint(buf, pos)?;
        Ok(DegradationEvent { call_index, stage, component, bytes })
    }
}

/// A point-in-time byte snapshot of the governed components, built by the
/// tracer from O(1) per-component counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentBytes {
    pub cst: usize,
    pub grammar: usize,
    pub timing: usize,
    pub memory: usize,
    pub capture: usize,
}

impl ComponentBytes {
    /// Total governed working-set bytes.
    pub fn total(&self) -> usize {
        self.cst + self.grammar + self.timing + self.memory + self.capture
    }

    /// The largest component (ties broken in ladder-relevant order).
    pub fn dominant(&self) -> Component {
        let parts = [
            (self.grammar, Component::CallGrammar),
            (self.cst, Component::Cst),
            (self.timing, Component::Timing),
            (self.memory, Component::Memory),
            (self.capture, Component::Capture),
        ];
        let mut best = parts[0];
        for &p in &parts[1..] {
            if p.0 > best.0 {
                best = p;
            }
        }
        best.1
    }
}

/// Live byte accounting against a memory budget, with staged degradation.
///
/// The tracer feeds it a [`ComponentBytes`] snapshot after every call via
/// [`Governor::check`]; the governor tracks peaks and answers with the
/// next [`DegradationStage`] to apply, if any. Stages 1 and 2 fire once,
/// at ½ and ¾ of the budget; stage 3 (seal) fires every time usage
/// reaches the budget, so a hostile stream produces a chain of segments
/// while the working set stays ≤ budget + one call's worst-case growth.
#[derive(Debug, Clone)]
pub struct Governor {
    budget: Option<u64>,
    /// Highest stage code applied so far (0 = none).
    stage: u8,
    events: Vec<DegradationEvent>,
    peak: ComponentBytes,
    peak_total: u64,
    transitions: u64,
    seals: u64,
    frozen_calls: u64,
}

impl Governor {
    /// A governor enforcing `budget` bytes; `None` disables it entirely.
    pub fn new(budget: Option<usize>) -> Self {
        Governor {
            budget: budget.map(|b| b as u64),
            stage: 0,
            events: Vec::new(),
            peak: ComponentBytes::default(),
            peak_total: 0,
            transitions: 0,
            seals: 0,
            frozen_calls: 0,
        }
    }

    /// True when a budget is configured; an inactive governor must never
    /// be consulted on the hot path (zero-behavior-change guarantee).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.budget.is_some()
    }

    /// The configured budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Highest ladder stage applied so far, if any.
    pub fn stage(&self) -> Option<DegradationStage> {
        DegradationStage::from_code(self.stage)
    }

    /// Updates peak accounting and returns the next degradation stage the
    /// tracer must apply, or `None` while under pressure thresholds.
    /// `can_seal` is false when the current segment is empty (sealing
    /// would shed nothing); the caller loops until `None`.
    pub fn check(
        &mut self,
        usage: &ComponentBytes,
        call_index: u64,
        can_seal: bool,
    ) -> Option<DegradationStage> {
        let total = usage.total() as u64;
        self.peak.cst = self.peak.cst.max(usage.cst);
        self.peak.grammar = self.peak.grammar.max(usage.grammar);
        self.peak.timing = self.peak.timing.max(usage.timing);
        self.peak.memory = self.peak.memory.max(usage.memory);
        self.peak.capture = self.peak.capture.max(usage.capture);
        self.peak_total = self.peak_total.max(total);
        let budget = self.budget?;
        let stage = if self.stage < 1 && total >= budget / 2 {
            DegradationStage::FreezeGrammar
        } else if self.stage < 2 && total >= budget - budget / 4 {
            DegradationStage::AggregateTiming
        } else if can_seal && total >= budget {
            DegradationStage::SealSegment
        } else {
            return None;
        };
        self.stage = self.stage.max(stage.code());
        self.transitions += 1;
        if stage == DegradationStage::SealSegment {
            self.seals += 1;
        }
        self.events.push(DegradationEvent {
            call_index,
            stage,
            component: usage.dominant(),
            bytes: total,
        });
        Some(stage)
    }

    /// Counts a call appended while the grammar was frozen.
    #[inline]
    pub fn note_frozen_call(&mut self) {
        self.frozen_calls += 1;
    }

    /// Transitions recorded so far, in order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Peak governed bytes observed, total and per component.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_total
    }

    /// Publishes the `governor.*` gauges into a metrics registry.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.set_gauge("governor.peak_bytes", self.peak_total);
        metrics.set_gauge("governor.peak_bytes.cst", self.peak.cst as u64);
        metrics.set_gauge("governor.peak_bytes.grammar", self.peak.grammar as u64);
        metrics.set_gauge("governor.peak_bytes.timing", self.peak.timing as u64);
        metrics.set_gauge("governor.peak_bytes.memory", self.peak.memory as u64);
        metrics.set_gauge("governor.peak_bytes.capture", self.peak.capture as u64);
        metrics.set_gauge("governor.transitions", self.transitions);
        metrics.set_gauge("governor.seals", self.seals);
        metrics.set_gauge("governor.frozen_calls", self.frozen_calls);
        if let Some(b) = self.budget {
            metrics.set_gauge("governor.budget_bytes", b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(grammar: usize) -> ComponentBytes {
        ComponentBytes { grammar, cst: 10, ..Default::default() }
    }

    #[test]
    fn inactive_governor_never_degrades() {
        let mut g = Governor::new(None);
        assert!(!g.is_active());
        assert_eq!(g.check(&usage(usize::MAX / 2), 1, true), None);
        assert!(g.events().is_empty());
        // Peaks still track (harmless; only consulted when active).
        assert!(g.peak_bytes() > 0);
    }

    #[test]
    fn ladder_fires_in_order_and_seal_repeats() {
        let mut g = Governor::new(Some(1000));
        assert_eq!(g.check(&usage(100), 1, true), None);
        assert_eq!(g.check(&usage(500), 2, true), Some(DegradationStage::FreezeGrammar));
        // Freeze fired; next threshold is 3/4.
        assert_eq!(g.check(&usage(600), 3, true), None);
        assert_eq!(g.check(&usage(800), 4, true), Some(DegradationStage::AggregateTiming));
        assert_eq!(g.check(&usage(990), 5, true), Some(DegradationStage::SealSegment));
        // Usage dropped after a seal, then climbs back: seal again.
        assert_eq!(g.check(&usage(50), 6, true), None);
        assert_eq!(g.check(&usage(1200), 7, true), Some(DegradationStage::SealSegment));
        // An empty segment cannot be sealed.
        assert_eq!(g.check(&usage(1200), 8, false), None);
        assert_eq!(g.events().len(), 4);
        assert_eq!(g.peak_bytes(), 1210);
        assert_eq!(g.stage(), Some(DegradationStage::SealSegment));
    }

    #[test]
    fn jumping_straight_past_budget_cascades_through_all_stages() {
        let mut g = Governor::new(Some(100));
        let u = usage(5000);
        assert_eq!(g.check(&u, 1, true), Some(DegradationStage::FreezeGrammar));
        assert_eq!(g.check(&u, 1, true), Some(DegradationStage::AggregateTiming));
        assert_eq!(g.check(&u, 1, true), Some(DegradationStage::SealSegment));
        let stages: Vec<_> = g.events().iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                DegradationStage::FreezeGrammar,
                DegradationStage::AggregateTiming,
                DegradationStage::SealSegment
            ]
        );
    }

    #[test]
    fn event_wire_roundtrip() {
        let e = DegradationEvent {
            call_index: 123_456,
            stage: DegradationStage::AggregateTiming,
            component: Component::Timing,
            bytes: 1 << 33,
        };
        let mut buf = Vec::new();
        e.serialize(&mut buf);
        assert_eq!(buf.len(), e.byte_size());
        let mut pos = 0;
        assert_eq!(DegradationEvent::decode(&buf, &mut pos).unwrap(), e);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn bad_event_codes_are_corrupt_not_panic() {
        let mut buf = Vec::new();
        DegradationEvent {
            call_index: 1,
            stage: DegradationStage::FreezeGrammar,
            component: Component::Cst,
            bytes: 0,
        }
        .serialize(&mut buf);
        buf[1] = 9; // invalid stage code
        let mut pos = 0;
        assert!(matches!(
            DegradationEvent::decode(&buf, &mut pos),
            Err(DecodeError::Corrupt { what: "degradation stage", .. })
        ));
    }
}
