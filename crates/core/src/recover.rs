//! Crash recovery for interrupted ingest sessions.
//!
//! [`recover_dir`] rebuilds what a crashed collector left under its
//! `spill_dir`:
//!
//! 1. every shard WAL (`wal/shard-<k>.wal`) is replayed — torn tails
//!    tolerated — and its records grouped per job;
//! 2. jobs whose WAL says `Finished` are re-read from their spilled
//!    container (strict decode first, [`GlobalTrace::decode_salvage`]
//!    as fallback);
//! 3. every other WAL job is replayed into a fresh
//!    [`IncrementalMerger`] exactly as the shard worker would have fed
//!    it, then finalized;
//! 4. spill containers with no WAL coverage (a bare session, or a WAL
//!    lost whole) are decoded directly, and torn `.pilgrim.tmp` orphans
//!    are salvaged.
//!
//! Each job is classified [`RecoveryState::Recovered`] (every rank
//! merged, `validate()` clean), [`RecoveryState::Partial`] (a usable
//! trace with a [`TraceCompleteness`](crate::trace::TraceCompleteness)
//! manifest naming what is missing), or [`RecoveryState::Lost`]
//! (nothing usable). A job is *never* reported `Recovered` unless its
//! trace validates clean and its completeness manifest is complete —
//! the classifier downgrades rather than overclaim. Recovered and
//! partial traces are rewritten as containers under
//! `<dir>/recovered/`, tmp+sync+rename like every other durable write.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::export::write_container;
use crate::merge::IncrementalMerger;
use crate::trace::GlobalTrace;
use crate::wal::{read_wal, WalRecord};

/// How much of a job survived the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryState {
    /// Every rank merged and the trace validates clean — byte-for-byte
    /// what a crash-free run would have delivered.
    Recovered,
    /// A usable trace with losses named in its completeness manifest
    /// (ranks lost, segments quarantined, sections salvaged).
    Partial,
    /// Nothing usable survived for this job.
    Lost,
}

impl RecoveryState {
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryState::Recovered => "recovered",
            RecoveryState::Partial => "partial",
            RecoveryState::Lost => "lost",
        }
    }
}

/// Which artifact the job was rebuilt from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// Replayed from the shard write-ahead log.
    Wal,
    /// Read back from an intact spilled container.
    Spill,
    /// Best-effort salvage of a torn or corrupt container.
    Salvage,
}

impl RecoverySource {
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoverySource::Wal => "wal",
            RecoverySource::Spill => "spill",
            RecoverySource::Salvage => "salvage",
        }
    }
}

/// One job's recovery verdict.
#[derive(Debug)]
pub struct RecoveredJob {
    pub job: u64,
    pub state: RecoveryState,
    pub source: RecoverySource,
    /// The rebuilt trace (`None` only for [`RecoveryState::Lost`]).
    pub trace: Option<GlobalTrace>,
    /// Traced calls in the rebuilt trace.
    pub calls: u64,
    /// Where the rebuilt container was written (under `recovered/`),
    /// or the original spill for jobs read back intact.
    pub output: Option<PathBuf>,
    /// Everything that went wrong for this job, in detection order.
    pub problems: Vec<String>,
}

/// What [`recover_dir`] found under one session directory.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    pub dir: PathBuf,
    /// Per-job verdicts, ascending job id.
    pub jobs: Vec<RecoveredJob>,
    /// Shard WAL files replayed.
    pub wal_files: usize,
    /// WAL files that ended in a torn or corrupt tail.
    pub torn_wals: usize,
    /// Segments found in `quarantine/`.
    pub quarantined: usize,
    /// Directory-level problems (unreadable WALs, bad filenames, ...).
    pub problems: Vec<String>,
}

impl RecoveryReport {
    pub fn count(&self, state: RecoveryState) -> usize {
        self.jobs.iter().filter(|j| j.state == state).count()
    }

    pub fn recovered(&self) -> usize {
        self.count(RecoveryState::Recovered)
    }

    pub fn partial(&self) -> usize {
        self.count(RecoveryState::Partial)
    }

    pub fn lost(&self) -> usize {
        self.count(RecoveryState::Lost)
    }
}

/// Everything the WALs said about one job.
#[derive(Debug, Default)]
struct JobLog {
    nranks: Option<usize>,
    identity_check: bool,
    records: Vec<WalRecord>,
    quarantines: Vec<(usize, u32)>,
    finished: bool,
}

/// Rebuilds every job a crashed session left under `dir`. Errors only
/// when the directory itself is unreadable; per-job and per-file damage
/// is classified, never propagated.
pub fn recover_dir(dir: &Path) -> std::io::Result<RecoveryReport> {
    // Surface an unreadable/missing session dir as the one hard error.
    fs::read_dir(dir)?;
    let mut report = RecoveryReport { dir: dir.to_path_buf(), ..Default::default() };
    let mut logs: BTreeMap<u64, JobLog> = BTreeMap::new();

    scan_wals(dir, &mut report, &mut logs);
    let spills = scan_spills(dir, &mut report);
    report.quarantined = count_files(&dir.join("quarantine"));

    // Jobs the WAL knows about.
    let mut claimed: Vec<u64> = Vec::new();
    let log_jobs = std::mem::take(&mut logs);
    for (job, log) in log_jobs {
        claimed.push(job);
        let spill = spills.get(&job).map(PathBuf::as_path);
        report.jobs.push(recover_wal_job(dir, job, log, spill));
    }
    // Spills (intact or torn) with no WAL coverage: a bare session.
    for (job, path) in &spills {
        if !claimed.contains(job) {
            report.jobs.push(recover_bare_spill(dir, *job, path));
        }
    }
    report.jobs.sort_by_key(|j| j.job);
    Ok(report)
}

fn scan_wals(dir: &Path, report: &mut RecoveryReport, logs: &mut BTreeMap<u64, JobLog>) {
    let wal_dir = dir.join("wal");
    let Ok(entries) = fs::read_dir(&wal_dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths.iter().filter(|p| p.extension().is_some_and(|e| e == "wal")) {
        let replay = match read_wal(path) {
            Ok(Ok(replay)) => replay,
            Ok(Err(e)) => {
                report.problems.push(format!("{}: {e}", path.display()));
                continue;
            }
            Err(e) => {
                report.problems.push(format!("{}: {e}", path.display()));
                continue;
            }
        };
        report.wal_files += 1;
        if let Some(torn) = replay.torn {
            report.torn_wals += 1;
            report.problems.push(format!("{}: {torn}", path.display()));
        }
        for rec in replay.records {
            let log = logs.entry(rec.job()).or_default();
            match rec {
                WalRecord::JobOpen { nranks, identity_check, .. } => {
                    log.nranks = Some(nranks);
                    log.identity_check = identity_check;
                }
                WalRecord::Finished { .. } => log.finished = true,
                WalRecord::Quarantine { rank, seq, .. } => log.quarantines.push((rank, seq)),
                rec @ (WalRecord::Segment { .. } | WalRecord::Complete { .. }) => {
                    log.records.push(rec);
                }
            }
        }
    }
}

/// Maps job id → container path, preferring an intact `job-<id>.pilgrim`
/// over its torn `.tmp` orphan when both exist.
fn scan_spills(dir: &Path, report: &mut RecoveryReport) -> BTreeMap<u64, PathBuf> {
    let mut spills: BTreeMap<u64, PathBuf> = BTreeMap::new();
    let Ok(entries) = fs::read_dir(dir) else { return spills };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        let (stem, torn) = match name.strip_suffix(".pilgrim.tmp") {
            Some(stem) => (stem, true),
            None => match name.strip_suffix(".pilgrim") {
                Some(stem) => (stem, false),
                None => continue,
            },
        };
        let Some(job) = stem.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) else {
            report.problems.push(format!("{}: unrecognized container name", path.display()));
            continue;
        };
        match spills.entry(job) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(path);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                // The sorted scan sees `.pilgrim` before `.pilgrim.tmp`;
                // keep the intact container.
                if !torn {
                    o.insert(path);
                }
            }
        }
    }
    spills
}

fn count_files(dir: &Path) -> usize {
    fs::read_dir(dir).map_or(0, |entries| entries.filter_map(|e| e.ok()).count())
}

/// Recovers one WAL-covered job: finished jobs read back from their
/// container, in-flight jobs replayed through a fresh merger.
fn recover_wal_job(dir: &Path, job: u64, log: JobLog, spill: Option<&Path>) -> RecoveredJob {
    let mut from_spill: Option<RecoveredJob> = None;
    if log.finished {
        // The outcome was already delivered; the container is the
        // durable artifact and the WAL is just its receipt.
        if let Some(path) = spill {
            if let Some(done) = read_spill(job, path) {
                if done.state == RecoveryState::Recovered {
                    return done;
                }
                // Finished, but the container reads back less than
                // clean — e.g. a restarted collector re-finished the
                // job from a partial view and overwrote the good
                // container. The WAL union still holds every acked
                // stream message, so replay it too and keep whichever
                // result recovered more.
                from_spill = Some(done);
            }
        }
        // Finished but the container is gone or unreadable: fall through
        // to the WAL replay, which still holds every stream message.
    }
    let replayed = replay_wal_job(dir, job, log);
    match from_spill {
        Some(spill) if state_rank(spill.state) >= state_rank(replayed.state) => spill,
        _ => replayed,
    }
}

/// Ordering for "keep the better recovery" comparisons.
fn state_rank(state: RecoveryState) -> u8 {
    match state {
        RecoveryState::Recovered => 2,
        RecoveryState::Partial => 1,
        RecoveryState::Lost => 0,
    }
}

/// Replays one job's WAL record union through a fresh merger.
fn replay_wal_job(dir: &Path, job: u64, log: JobLog) -> RecoveredJob {
    let mut problems: Vec<String> = Vec::new();
    let Some(nranks) = log.nranks else {
        // Segments without an open: the open frame was torn away.
        problems.push("WAL never recorded the job open (torn head)".into());
        return lost_job(job, RecoverySource::Wal, problems);
    };
    for &(rank, seq) in &log.quarantines {
        problems.push(format!("segment {rank}/{seq} was quarantined before the crash"));
    }
    // A job's records may be spread over several WAL files (shards,
    // per-connection logs, logs from before and after a collector
    // restart) and may contain duplicates (a retransmit whose first
    // delivery was logged but whose ack was lost). Replay must not
    // depend on file-scan order: sort segments by (rank, seq), keep the
    // first copy of any duplicate, and apply completions after every
    // segment — the merger demands in-order sequences per rank, and
    // `finalize` canonicalizes, so any union of logs covering the same
    // stream rebuilds the same bytes.
    let mut segs: BTreeMap<(usize, u32), crate::merge::TraceSegment> = BTreeMap::new();
    let mut completes: BTreeMap<usize, crate::merge::RankCompletion> = BTreeMap::new();
    for rec in log.records {
        match rec {
            WalRecord::Segment { seg, .. } => match segs.entry((seg.rank, seg.seq)) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(seg);
                }
                std::collections::btree_map::Entry::Occupied(o) => {
                    if o.get().bytes != seg.bytes {
                        problems.push(format!(
                            "segment {}/{} logged twice with different payloads; kept the first",
                            seg.rank, seg.seq
                        ));
                    }
                }
            },
            WalRecord::Complete { done, .. } => match completes.entry(done.rank) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(done);
                }
                std::collections::btree_map::Entry::Occupied(o) => {
                    let first = o.get();
                    if (first.call_count, first.segments) != (done.call_count, done.segments) {
                        problems.push(format!(
                            "rank {} completed twice with conflicting counts; kept the first",
                            done.rank
                        ));
                    }
                }
            },
            _ => {}
        }
    }
    let mut merger = IncrementalMerger::new(nranks).identity_check(log.identity_check);
    for seg in segs.values() {
        if let Err(e) = merger.accept_segment(seg) {
            problems.push(format!("replay segment {}/{}: {e}", seg.rank, seg.seq));
        }
    }
    for (rank, done) in completes {
        if let Err(e) = merger.complete_rank(done) {
            problems.push(format!("replay complete {rank}: {e}"));
        }
    }
    // A WAL can hold a rank's segments without its completion (the
    // client was cut off mid-stream, or the completion frame was never
    // acked durable): salvage the accepted prefix as a checkpoint rank
    // so the job classifies Partial with real calls, not Lost.
    for (rank, calls) in merger.salvage_open_ranks() {
        problems.push(format!(
            "rank {rank}: stream incomplete; salvaged {calls} calls from its logged prefix"
        ));
    }
    let complete = merger.is_complete();
    let trace = merger.finalize();
    let calls = trace.rank_lengths.iter().sum();
    classify(dir, job, RecoverySource::Wal, trace, calls, complete, problems)
}

/// Reads a finished job's container back; `None` means unreadable (the
/// caller falls back to the WAL replay).
fn read_spill(job: u64, path: &Path) -> Option<RecoveredJob> {
    let bytes = fs::read(path).ok()?;
    let trace = GlobalTrace::decode_container(&bytes).ok()?;
    let calls = trace.rank_lengths.iter().sum();
    let complete = trace.completeness.is_complete();
    let mut done = classify_trace(job, RecoverySource::Spill, trace, calls, complete, Vec::new());
    done.output = Some(path.to_path_buf());
    Some(done)
}

/// Recovers a container that no WAL claims: strict decode, then salvage.
fn recover_bare_spill(dir: &Path, job: u64, path: &Path) -> RecoveredJob {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            return lost_job(job, RecoverySource::Spill, vec![format!("{}: {e}", path.display())])
        }
    };
    if let Ok(trace) = GlobalTrace::decode_container(&bytes) {
        let calls = trace.rank_lengths.iter().sum();
        let complete = trace.completeness.is_complete();
        let mut done =
            classify_trace(job, RecoverySource::Spill, trace, calls, complete, Vec::new());
        done.output = Some(path.to_path_buf());
        return done;
    }
    match GlobalTrace::decode_salvage(&bytes) {
        Ok((trace, salvage)) => {
            let problems = vec![format!(
                "container salvaged: {} ranks skipped, {} timing-stripped, {} timing grammars lost",
                salvage.skipped_ranks.len(),
                salvage.timing_stripped_ranks.len(),
                salvage.skipped_duration_grammars.len() + salvage.skipped_interval_grammars.len()
            )];
            let calls = trace.rank_lengths.iter().sum();
            // Salvage output is by definition not a clean full trace.
            classify(dir, job, RecoverySource::Salvage, trace, calls, false, problems)
        }
        Err(e) => lost_job(job, RecoverySource::Salvage, vec![format!("{}: {e}", path.display())]),
    }
}

/// Classifies a rebuilt trace and writes it under `recovered/`.
fn classify(
    dir: &Path,
    job: u64,
    source: RecoverySource,
    trace: GlobalTrace,
    calls: u64,
    complete: bool,
    problems: Vec<String>,
) -> RecoveredJob {
    let mut done = classify_trace(job, source, trace, calls, complete, problems);
    if done.state != RecoveryState::Lost {
        match write_recovered(dir, job, done.trace.as_ref()) {
            Ok(path) => done.output = Some(path),
            Err(e) => {
                done.problems.push(format!("writing recovered container: {e}"));
                // A recovery we cannot make durable is not a recovery.
                if done.state == RecoveryState::Recovered {
                    done.state = RecoveryState::Partial;
                }
            }
        }
    }
    done
}

/// The classification gate. `Recovered` requires *all* of: every rank
/// merged (`complete`), no replay problems, `validate()` clean, and a
/// complete [`TraceCompleteness`] manifest — anything less downgrades to
/// `Partial`, and a trace with no merged calls at all is `Lost`.
fn classify_trace(
    job: u64,
    source: RecoverySource,
    trace: GlobalTrace,
    calls: u64,
    complete: bool,
    mut problems: Vec<String>,
) -> RecoveredJob {
    let validation = trace.validate();
    let clean = validation.is_empty();
    problems.extend(validation.into_iter().map(|p| format!("validate: {p}")));
    let manifest_complete = trace.completeness.is_complete();
    let state = if complete && clean && manifest_complete && problems.is_empty() {
        RecoveryState::Recovered
    } else if calls > 0 && clean {
        RecoveryState::Partial
    } else if calls > 0 {
        // Structurally suspect but non-empty: keep it, loudly.
        problems.push("trace kept despite validation problems".into());
        RecoveryState::Partial
    } else {
        return lost_job(job, source, problems);
    };
    RecoveredJob { job, state, source, trace: Some(trace), calls, output: None, problems }
}

fn lost_job(job: u64, source: RecoverySource, mut problems: Vec<String>) -> RecoveredJob {
    if problems.is_empty() {
        problems.push("no usable data survived".into());
    }
    RecoveredJob {
        job,
        state: RecoveryState::Lost,
        source,
        trace: None,
        calls: 0,
        output: None,
        problems,
    }
}

/// Writes a rebuilt trace to `<dir>/recovered/job-<id>.pilgrim` with the
/// same tmp+sync+rename discipline as the live spill path.
fn write_recovered(dir: &Path, job: u64, trace: Option<&GlobalTrace>) -> std::io::Result<PathBuf> {
    let trace = trace.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "no trace to write")
    })?;
    let out_dir = dir.join("recovered");
    fs::create_dir_all(&out_dir)?;
    let path = out_dir.join(format!("job-{job}.pilgrim"));
    let tmp = path.with_extension("pilgrim.tmp");
    {
        use std::io::Write as _;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&write_container(trace))?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pilgrim-recover-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recovering_an_absent_directory_is_the_one_hard_error() {
        let dir = temp_dir("absent");
        assert!(recover_dir(&dir).is_err(), "missing session dir must error");
    }

    #[test]
    fn recovering_a_session_dir_without_a_wal_subdir_reports_nothing() {
        let dir = temp_dir("no-wal");
        fs::create_dir_all(&dir).expect("mkdir");
        let report = recover_dir(&dir).expect("readable dir");
        assert!(report.jobs.is_empty());
        assert_eq!(report.wal_files, 0);
        assert!(report.problems.is_empty(), "problems: {:?}", report.problems);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovering_an_empty_wal_directory_reports_nothing() {
        let dir = temp_dir("empty-wal");
        fs::create_dir_all(dir.join("wal")).expect("mkdir");
        let report = recover_dir(&dir).expect("readable dir");
        assert!(report.jobs.is_empty());
        assert_eq!(report.wal_files, 0);
        assert_eq!(report.torn_wals, 0);
        assert!(report.problems.is_empty(), "problems: {:?}", report.problems);
        let _ = fs::remove_dir_all(&dir);
    }
}
