//! Pull-based streaming decode: walk the grammar with an explicit rule
//! stack instead of materializing the expansion.
//!
//! [`TermCursor`] yields raw terminals; [`CallIterator`] decodes them into
//! [`EncodedCall`]s one at a time, so a window query over a billion-call
//! rank holds O(grammar depth) state plus a single decoded call — never a
//! `Vec<EncodedCall>` of the whole rank.

use pilgrim_sequitur::{Symbol, TOP_RULE};

use crate::encode::EncodedCall;
use crate::trace::GlobalTrace;

use super::index::TraceIndex;

/// One level of the descent: the cursor is inside `rule`, at RHS slot
/// `idx`, with `reps_left` instances of `symbols[idx]` not yet started.
#[derive(Debug, Clone, Copy)]
struct Frame {
    rule: usize,
    idx: usize,
    reps_left: u64,
}

/// Streaming cursor over the terminals a trace's grammar generates,
/// holding only an explicit rule stack (O(grammar depth) memory).
///
/// Created positioned at a global offset; [`TermCursor::next`] advances
/// one terminal at a time, and [`TermCursor::seek`] re-positions in
/// O(depth · log body) using the index — no expansion either way.
#[derive(Debug, Clone)]
pub struct TermCursor<'a> {
    trace: &'a GlobalTrace,
    index: &'a TraceIndex,
    stack: Vec<Frame>,
    /// Global offset of the next terminal `next` will yield.
    pos: u64,
}

impl<'a> TermCursor<'a> {
    /// A cursor positioned at global offset `start`.
    pub fn new(trace: &'a GlobalTrace, index: &'a TraceIndex, start: u64) -> Self {
        let mut c = TermCursor { trace, index, stack: Vec::new(), pos: 0 };
        c.seek(start);
        c
    }

    /// Global offset of the next terminal to be yielded.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Re-positions the cursor at global offset `off` by descending from
    /// the start rule, binary-searching each rule body's cumulative
    /// spans. Seeking at or past the end leaves the cursor exhausted.
    pub fn seek(&mut self, off: u64) {
        self.stack.clear();
        self.pos = off;
        let total = self.index.rule_len(TOP_RULE as usize);
        if off >= total || self.trace.grammar.rules.len() != self.index.rule_lens().len() {
            return;
        }
        let rules = &self.trace.grammar.rules;
        let mut rid = TOP_RULE as usize;
        let mut off = off;
        loop {
            let cum = self.index.cum(rid);
            let slot = cum.partition_point(|&c| c <= off) - 1;
            let (sym, exp) = rules[rid].symbols[slot];
            let within = off - cum[slot];
            match sym {
                Symbol::Terminal(_) => {
                    // `within` instances of the terminal are already
                    // consumed; the next `next()` yields instance `within`.
                    self.stack.push(Frame { rule: rid, idx: slot, reps_left: exp - within });
                    return;
                }
                Symbol::Rule(r) => {
                    let unit = self.index.rule_len(r as usize);
                    let inst = within / unit;
                    // The instance we descend into is already "started".
                    self.stack.push(Frame { rule: rid, idx: slot, reps_left: exp - inst - 1 });
                    rid = r as usize;
                    off = within % unit;
                }
            }
        }
    }
}

impl Iterator for TermCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let rules = &self.trace.grammar.rules;
        loop {
            let frame = self.stack.last_mut()?;
            let body = &rules[frame.rule].symbols;
            if frame.idx >= body.len() {
                self.stack.pop();
                continue;
            }
            if frame.reps_left == 0 {
                frame.idx += 1;
                if let Some(&(_, exp)) = body.get(frame.idx) {
                    frame.reps_left = exp;
                }
                continue;
            }
            frame.reps_left -= 1;
            match body[frame.idx].0 {
                Symbol::Terminal(t) => {
                    self.pos += 1;
                    return Some(t);
                }
                Symbol::Rule(r) => {
                    let r = r as usize;
                    let first_exp = rules[r].symbols.first().map_or(0, |&(_, e)| e);
                    self.stack.push(Frame { rule: r, idx: 0, reps_left: first_exp });
                }
            }
        }
    }

    /// Constant-memory skip: seeks directly instead of stepping `n` times.
    fn nth(&mut self, n: usize) -> Option<u32> {
        self.seek(self.pos + n as u64);
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.index.rule_len(TOP_RULE as usize).saturating_sub(self.pos) as usize;
        (left, Some(left))
    }
}

/// Pull-based call decoder over one rank's window of the trace.
///
/// Wraps a [`TermCursor`] clamped to the rank's span and decodes each
/// terminal's CST signature on demand. `skip(n)` is constant-time (it
/// routes through [`TermCursor::nth`]'s seek) and `take(n)` bounds the
/// window, so `iter.skip(a).take(b)` scans an arbitrary slice of a rank
/// in O(depth + b) with O(depth) memory.
#[derive(Debug, Clone)]
pub struct CallIterator<'a> {
    cursor: TermCursor<'a>,
    /// Global offset of the rank's first call.
    start: u64,
    /// Global offset one past the rank's last call.
    end: u64,
}

impl<'a> CallIterator<'a> {
    /// An iterator over all of rank `rank`'s calls.
    pub fn new(trace: &'a GlobalTrace, index: &'a TraceIndex, rank: usize) -> Self {
        let (start, end) = index.rank_span(rank);
        CallIterator { cursor: TermCursor::new(trace, index, start), start, end }
    }

    /// Rank-local index of the next call to be yielded.
    pub fn position(&self) -> u64 {
        self.cursor.position().min(self.end) - self.start
    }

    /// Remaining calls in the window.
    pub fn remaining(&self) -> u64 {
        self.end.saturating_sub(self.cursor.position())
    }

    /// The next raw terminal without decoding it.
    fn next_term(&mut self) -> Option<u32> {
        if self.cursor.position() >= self.end {
            return None;
        }
        self.cursor.next()
    }
}

impl Iterator for CallIterator<'_> {
    type Item = Result<EncodedCall, pilgrim_sequitur::DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        let term = self.next_term()?;
        Some(crate::decode::decode_term_call(self.cursor.trace, term))
    }

    fn nth(&mut self, n: usize) -> Option<Self::Item> {
        let target = self.cursor.position() + n as u64;
        if target >= self.end {
            self.cursor.seek(self.end);
            return None;
        }
        self.cursor.seek(target);
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.remaining() as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CallIterator<'_> {}

#[cfg(test)]
mod tests {
    use super::super::index::tests::repeat_trace;
    use super::*;

    #[test]
    fn cursor_streams_the_full_expansion() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let full = t.grammar.expand();
        let got: Vec<u32> = TermCursor::new(&t, &idx, 0).collect();
        assert_eq!(got, full);
    }

    #[test]
    fn seek_lands_anywhere_including_repeat_boundaries() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let full = t.grammar.expand();
        let mut cur = TermCursor::new(&t, &idx, 0);
        for start in 0..=full.len() {
            cur.seek(start as u64);
            let got: Vec<u32> = cur.clone().collect();
            assert_eq!(got, full[start..], "suffix from {start}");
        }
    }

    #[test]
    fn nth_skips_in_constant_memory_and_matches_indexing() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let full = t.grammar.expand();
        for n in [0usize, 1, 5, 11, 12, 13, 18] {
            let mut cur = TermCursor::new(&t, &idx, 0);
            assert_eq!(cur.nth(n), full.get(n).copied(), "nth({n})");
        }
        let mut cur = TermCursor::new(&t, &idx, 0);
        assert_eq!(cur.nth(full.len()), None);
    }

    #[test]
    fn call_iterator_respects_rank_windows() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let ranks = t.decode_all_ranks();
        for (rank, rank_terms) in ranks.iter().enumerate() {
            let terms: Vec<u32> = CallIterator::new(&t, &idx, rank)
                .map(|c| {
                    let call = c.expect("decodable");
                    // repeat_trace signatures are one func byte + one arg
                    // byte; the func id distinguishes them.
                    call.func as u32
                })
                .collect();
            let want: Vec<u32> = rank_terms
                .iter()
                .map(|&term| {
                    crate::decode::decode_term_call(&t, term).expect("decodable").func as u32
                })
                .collect();
            assert_eq!(terms, want, "rank {rank}");
            assert_eq!(CallIterator::new(&t, &idx, rank).len(), rank_terms.len());
        }
    }

    #[test]
    fn call_iterator_skip_take_window() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let all: Vec<EncodedCall> =
            CallIterator::new(&t, &idx, 0).map(|c| c.expect("decodable")).collect();
        let window: Vec<EncodedCall> =
            CallIterator::new(&t, &idx, 0).skip(4).take(6).map(|c| c.expect("decodable")).collect();
        assert_eq!(window, all[4..10]);
        // Windows clamped past the end are empty, not panics.
        assert_eq!(CallIterator::new(&t, &idx, 0).skip(1000).count(), 0);
    }
}
