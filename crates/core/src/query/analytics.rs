//! Grammar-aware analytics: answers computed in time proportional to
//! *grammar* size, not trace length.
//!
//! Every query here follows the same scheme: evaluate each rule body
//! exactly once into a sparse per-signature histogram, then combine child
//! histograms through reference sites weighted by the `A -> B^k` repeat
//! exponents. A rule shared by a million loop iterations is therefore
//! aggregated a single time, and the grammar is never expanded —
//! [`pilgrim_sequitur::expansions`] stays flat across any query, which the
//! tests assert.

use std::collections::HashMap;

use mpi_sim::FuncId;
use pilgrim_sequitur::{read_varint, Symbol, TOP_RULE};

use crate::encode::{decode_signature, EncodedArg, RankCode};
use crate::metrics::{MetricsRegistry, Stage};
use crate::trace::GlobalTrace;

use super::index::TraceIndex;

/// Sparse per-signature call counts (terminal -> occurrences).
pub type SigCounts = HashMap<u32, u64>;

/// Per-signature summary row: occurrence count plus estimated aggregate
/// time, apportioned from the CST's aggregate timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureSummary {
    /// Grammar terminal / CST index.
    pub term: u32,
    /// MPI function id of the signature.
    pub func: u16,
    /// Calls with this signature in the queried window.
    pub count: u64,
    /// Estimated time spent in those calls (simulated ns): the CST's
    /// `dur_sum` scaled by `count / total_count` in integer math.
    pub time_ns: u64,
}

/// Point-to-point communication matrix. `sends[src * nranks + dst]`
/// counts messages src sent to dst; `recvs[dst * nranks + src]` counts
/// receives dst posted naming src. Wildcard receives (`MPI_ANY_SOURCE`)
/// are tallied separately since they name no peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    pub nranks: usize,
    pub sends: Vec<u64>,
    pub recvs: Vec<u64>,
    /// Receives posted with `MPI_ANY_SOURCE`, per destination rank.
    pub wildcard_recvs: Vec<u64>,
    /// Send/recv endpoints that named `MPI_PROC_NULL` or a rank outside
    /// the world (e.g. a relative peer of an edge rank in an open-chain
    /// pattern); these transfer nothing and join no matrix cell.
    pub dropped: u64,
}

impl CommMatrix {
    /// Total messages sent (sum of the send matrix).
    pub fn total_sends(&self) -> u64 {
        self.sends.iter().sum()
    }

    /// Total posted receives, wildcards included.
    pub fn total_recvs(&self) -> u64 {
        self.recvs.iter().sum::<u64>() + self.wildcard_recvs.iter().sum::<u64>()
    }
}

/// The analytics engine: per-rule histograms memoized once, ready to
/// answer window and whole-trace queries without expansion.
///
/// Construction evaluates each rule body exactly once (the expensive
/// part); every query after that prunes its descent to the window
/// boundaries and reuses the memoized histograms for fully covered
/// subtrees.
#[derive(Debug)]
pub struct QueryEngine<'a> {
    trace: &'a GlobalTrace,
    index: &'a TraceIndex,
    metrics: Option<&'a MetricsRegistry>,
    /// Per-rule sparse histogram of the signatures the rule generates.
    rule_hists: Vec<SigCounts>,
}

impl<'a> QueryEngine<'a> {
    /// Builds the engine, evaluating every rule body once.
    pub fn new(trace: &'a GlobalTrace, index: &'a TraceIndex) -> Self {
        Self::build(trace, index, None)
    }

    /// [`QueryEngine::new`], with queries timed under [`Stage::Query`].
    pub fn with_metrics(
        trace: &'a GlobalTrace,
        index: &'a TraceIndex,
        metrics: &'a MetricsRegistry,
    ) -> Self {
        Self::build(trace, index, Some(metrics))
    }

    fn build(
        trace: &'a GlobalTrace,
        index: &'a TraceIndex,
        metrics: Option<&'a MetricsRegistry>,
    ) -> Self {
        let _t = metrics.map(|m| m.time_stage(Stage::Query));
        let nrules = trace.grammar.rules.len();
        let mut rule_hists: Vec<Option<SigCounts>> = vec![None; nrules];
        for rid in 0..nrules {
            Self::fill_hist(trace, rid, &mut rule_hists);
        }
        let rule_hists = rule_hists.into_iter().map(Option::unwrap_or_default).collect();
        QueryEngine { trace, index, metrics, rule_hists }
    }

    /// Memoized per-rule histogram (each body evaluated exactly once;
    /// the grammar is acyclic, so the recursion terminates).
    fn fill_hist(trace: &GlobalTrace, rid: usize, memo: &mut Vec<Option<SigCounts>>) {
        if memo[rid].is_some() {
            return;
        }
        for &(sym, _) in &trace.grammar.rules[rid].symbols {
            if let Symbol::Rule(r) = sym {
                Self::fill_hist(trace, r as usize, memo);
            }
        }
        let mut hist = SigCounts::new();
        for &(sym, exp) in &trace.grammar.rules[rid].symbols {
            match sym {
                Symbol::Terminal(t) => *hist.entry(t).or_insert(0) += exp,
                Symbol::Rule(r) => {
                    if let Some(child) = &memo[r as usize] {
                        for (&t, &c) in child {
                            *hist.entry(t).or_insert(0) += c * exp;
                        }
                    }
                }
            }
        }
        memo[rid] = Some(hist);
    }

    fn timed(&self) -> Option<crate::metrics::StageGuard<'a>> {
        self.metrics.map(|m| m.time_stage(Stage::Query))
    }

    /// Fidelity of the trace behind the answers: a query over a degraded
    /// trace (governed run, degraded merge, or salvage recovery) is
    /// answering from partial or structurally coarsened data, and callers
    /// presenting results should surface that.
    pub fn fidelity(&self) -> crate::trace::FidelityReport {
        self.trace.fidelity()
    }

    /// True when any rank's data is less than fully lossless (see
    /// [`GlobalTrace::is_degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.trace.is_degraded()
    }

    /// Signature counts for the whole trace (the start rule's histogram).
    pub fn signature_counts(&self) -> &SigCounts {
        &self.rule_hists[TOP_RULE as usize]
    }

    /// Signature counts for one rank (a window query over its span).
    pub fn rank_signature_counts(&self, rank: usize) -> SigCounts {
        let (lo, hi) = self.index.rank_span(rank);
        self.window_counts(lo, hi)
    }

    /// Signature counts for the global offset window `[lo, hi)`. The
    /// descent prunes to the window boundaries: any RHS slot (or run of
    /// repeated instances) fully inside the window contributes its
    /// memoized histogram scaled by the instance count.
    pub fn window_counts(&self, lo: u64, hi: u64) -> SigCounts {
        let _t = self.timed();
        let mut out = SigCounts::new();
        let total = self.index.rule_len(TOP_RULE as usize);
        let (lo, hi) = (lo.min(total), hi.min(total));
        if lo < hi {
            self.add_range(TOP_RULE as usize, lo, hi, &mut out);
        }
        if let Some(m) = self.metrics {
            m.incr("query.windows", 1);
        }
        out
    }

    /// Adds rule `rid`'s contribution over its local offsets `[lo, hi)`.
    fn add_range(&self, rid: usize, lo: u64, hi: u64, out: &mut SigCounts) {
        let cum = self.index.cum(rid);
        let rule = &self.trace.grammar.rules[rid];
        // Slots overlapping [lo, hi): from the slot containing lo on.
        let first = cum.partition_point(|&c| c <= lo) - 1;
        for slot in first..rule.symbols.len() {
            let (s0, s1) = (cum[slot], cum[slot + 1]);
            if s0 >= hi {
                break;
            }
            let (a, b) = (lo.max(s0) - s0, hi.min(s1) - s0);
            let (sym, _) = rule.symbols[slot];
            match sym {
                Symbol::Terminal(t) => *out.entry(t).or_insert(0) += b - a,
                Symbol::Rule(r) => {
                    let r = r as usize;
                    let unit = self.index.rule_len(r);
                    let first_inst = a / unit;
                    let last_inst = (b - 1) / unit;
                    if first_inst == last_inst {
                        self.add_range(r, a - first_inst * unit, b - first_inst * unit, out);
                        continue;
                    }
                    // Head-partial instance.
                    let head_end = (first_inst + 1) * unit;
                    if a < head_end {
                        self.add_range(r, a - first_inst * unit, unit, out);
                    }
                    // Fully covered instances use the memoized histogram.
                    let full = last_inst - first_inst - 1;
                    if full > 0 {
                        for (&t, &c) in &self.rule_hists[r] {
                            *out.entry(t).or_insert(0) += c * full;
                        }
                    }
                    // Tail-partial instance.
                    let tail_start = last_inst * unit;
                    if b > tail_start {
                        self.add_range(r, 0, b - tail_start, out);
                    }
                }
            }
        }
    }

    /// Expands a count histogram into per-signature summary rows (sorted
    /// by terminal), apportioning each signature's aggregate CST time by
    /// the fraction of its occurrences inside the window.
    pub fn summarize(&self, counts: &SigCounts) -> Vec<SignatureSummary> {
        let _t = self.timed();
        let mut rows: Vec<SignatureSummary> = counts
            .iter()
            .map(|(&term, &count)| {
                let stats = self.trace.cst.stats(term);
                let time_ns = if stats.count == 0 {
                    0
                } else {
                    (stats.dur_sum as u128 * count as u128 / stats.count as u128) as u64
                };
                SignatureSummary { term, func: sig_func(self.trace, term), count, time_ns }
            })
            .collect();
        rows.sort_by_key(|r| r.term);
        rows
    }

    /// Computes the point-to-point communication matrix. Each distinct
    /// (rank, signature) pair is classified once — the per-rank
    /// histograms supply the multiplicities — so the cost is
    /// O(ranks × distinct signatures), independent of trace length, and
    /// the grammar is never expanded.
    pub fn comm_matrix(&self) -> CommMatrix {
        let _t = self.timed();
        let n = self.trace.nranks;
        let mut m = CommMatrix {
            nranks: n,
            sends: vec![0; n * n],
            recvs: vec![0; n * n],
            wildcard_recvs: vec![0; n],
            dropped: 0,
        };
        // Decode + classify each distinct signature once.
        let mut roles: HashMap<u32, Vec<(PeerRole, RankCode)>> = HashMap::new();
        for rank in 0..n {
            let counts = self.rank_signature_counts(rank);
            for (&term, &count) in &counts {
                let role =
                    roles.entry(term).or_insert_with(|| classify_peers(self.trace, term)).clone();
                for (kind, code) in role {
                    let peer = code.absolutize(rank as i64);
                    match kind {
                        PeerRole::SendDst => {
                            if (0..n as i64).contains(&peer) {
                                m.sends[rank * n + peer as usize] += count;
                            } else {
                                m.dropped += count;
                            }
                        }
                        PeerRole::RecvSrc => {
                            if code == RankCode::AnySource {
                                m.wildcard_recvs[rank] += count;
                            } else if (0..n as i64).contains(&peer) {
                                m.recvs[rank * n + peer as usize] += count;
                            } else {
                                m.dropped += count;
                            }
                        }
                    }
                }
            }
        }
        if let Some(metrics) = self.metrics {
            metrics.incr("query.matrix", 1);
            metrics.set_gauge("query.matrix.sends", m.total_sends());
        }
        m
    }
}

/// Which peer a rank argument names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerRole {
    SendDst,
    RecvSrc,
}

/// The function id of a signature, read without a full decode.
fn sig_func(trace: &GlobalTrace, term: u32) -> u16 {
    let sig = trace.cst.signature(term);
    let mut pos = 0usize;
    read_varint(sig, &mut pos).unwrap_or(0) as u16
}

/// Classifies a signature's rank arguments into message endpoints.
/// Persistent-request inits and probes are skipped — they move no data at
/// the call site — matching how communication matrices are conventionally
/// attributed.
fn classify_peers(trace: &GlobalTrace, term: u32) -> Vec<(PeerRole, RankCode)> {
    let sig = trace.cst.signature(term);
    let Some(call) = decode_signature(sig) else {
        return Vec::new();
    };
    let Some(func) = FuncId::from_id(call.func) else {
        return Vec::new();
    };
    let rank_args: Vec<RankCode> = call
        .args
        .iter()
        .filter_map(|a| match a {
            EncodedArg::Rank(code) => Some(*code),
            _ => None,
        })
        .collect();
    use FuncId::*;
    match func {
        Send | Bsend | Ssend | Rsend | Isend | Ibsend | Issend | Irsend => {
            rank_args.first().map(|&c| (PeerRole::SendDst, c)).into_iter().collect()
        }
        Recv | Irecv => rank_args.first().map(|&c| (PeerRole::RecvSrc, c)).into_iter().collect(),
        Sendrecv | SendrecvReplace => {
            let mut v = Vec::new();
            if let Some(&dst) = rank_args.first() {
                v.push((PeerRole::SendDst, dst));
            }
            if let Some(&src) = rank_args.get(1) {
                v.push((PeerRole::RecvSrc, src));
            }
            v
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::index::tests::repeat_trace;
    use super::*;
    use crate::cst::Cst;
    use crate::encode::{EncoderConfig, SigWriter};
    use crate::trace::TraceCompleteness;
    use pilgrim_sequitur::Grammar;

    /// Three ranks running a ring: send to rank+1, recv from rank-1, one
    /// wildcard recv each, repeated 4 times. Relative encoding collapses
    /// all ranks onto the same three signatures.
    fn ring_trace() -> GlobalTrace {
        let cfg = EncoderConfig::default();
        let mut cst = Cst::new();
        let mut send = SigWriter::new(FuncId::Send.id());
        send.rank(1, 0, &cfg); // Relative(+1)
        let mut recv = SigWriter::new(FuncId::Recv.id());
        recv.rank(2, 3, &cfg); // Relative(-1)
        let mut any = SigWriter::new(FuncId::Recv.id());
        any.rank(-1, 0, &cfg); // ANY_SOURCE
                               // Each signature occurs 4 times on each of the 3 ranks.
        let stats = |dur: u64| crate::cst::SigStats { count: 12, dur_sum: 12 * dur };
        let s = cst.intern(send.bytes(), stats(100));
        let r = cst.intern(recv.bytes(), stats(200));
        let w = cst.intern(any.bytes(), stats(50));
        let mut g = Grammar::new();
        for _rank in 0..3 {
            for _ in 0..4 {
                g.push(s);
                g.push(r);
                g.push(w);
            }
        }
        GlobalTrace {
            nranks: 3,
            encoder_cfg: cfg,
            cst,
            grammar: g.to_flat(),
            rank_lengths: vec![12, 12, 12],
            unique_grammars: 1,
            duration_grammars: vec![],
            interval_grammars: vec![],
            duration_rank_map: vec![],
            interval_rank_map: vec![],
            completeness: TraceCompleteness::complete(),
            nondet: None,
        }
    }

    #[test]
    fn whole_trace_counts_match_cst_stats() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let q = QueryEngine::new(&t, &idx);
        for (term, _, stats) in t.cst.iter() {
            assert_eq!(
                q.signature_counts().get(&term).copied().unwrap_or(0),
                stats.count,
                "term {term}"
            );
        }
    }

    #[test]
    fn window_counts_match_brute_force() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let q = QueryEngine::new(&t, &idx);
        let full = t.grammar.expand();
        for lo in 0..full.len() {
            for hi in lo..=full.len() {
                let mut want = SigCounts::new();
                for &term in &full[lo..hi] {
                    *want.entry(term).or_insert(0) += 1;
                }
                assert_eq!(q.window_counts(lo as u64, hi as u64), want, "[{lo}, {hi})");
            }
        }
    }

    #[test]
    fn comm_matrix_counts_ring_messages_without_expansion() {
        let t = ring_trace();
        let idx = TraceIndex::build(&t);
        let q = QueryEngine::new(&t, &idx);
        let before = pilgrim_sequitur::expansions();
        let m = q.comm_matrix();
        assert_eq!(
            pilgrim_sequitur::expansions(),
            before,
            "matrix query must not expand the grammar"
        );
        assert_eq!(m.nranks, 3);
        // Each rank sends 4 messages to rank+1; rank 2's +1 is out of
        // range and dropped.
        assert_eq!(m.sends[1], 4); // 0 -> 1
        assert_eq!(m.sends[3 + 2], 4); // 1 -> 2
        assert_eq!(m.total_sends(), 8);
        // Each rank posts 4 recvs from rank-1 (rank 0's is dropped) and
        // 4 wildcard recvs.
        assert_eq!(m.recvs[3], 4); // 1 <- 0
        assert_eq!(m.recvs[2 * 3 + 1], 4); // 2 <- 1
        assert_eq!(m.wildcard_recvs, vec![4, 4, 4]);
        assert_eq!(m.dropped, 8);
        assert_eq!(m.total_recvs(), 8 + 12);
    }

    #[test]
    fn summaries_apportion_time_by_count() {
        let t = ring_trace();
        let idx = TraceIndex::build(&t);
        let q = QueryEngine::new(&t, &idx);
        // Rank 0's window holds a third of each signature's occurrences.
        let rows = q.summarize(&q.rank_signature_counts(0));
        assert_eq!(rows.len(), 3);
        for row in &rows {
            let stats = t.cst.stats(row.term);
            assert_eq!(row.count, stats.count / 3);
            assert_eq!(row.time_ns, stats.dur_sum / 3);
            assert!(FuncId::from_id(row.func).is_some());
        }
    }

    #[test]
    fn metrics_thread_through_queries() {
        let t = ring_trace();
        let idx = TraceIndex::build(&t);
        let m = MetricsRegistry::new(true);
        let q = QueryEngine::with_metrics(&t, &idx, &m);
        let _ = q.comm_matrix();
        let _ = q.window_counts(0, 5);
        let snap = m.snapshot();
        assert_eq!(snap.counters["query.matrix"], 1);
        // comm_matrix runs one window per rank, plus the explicit window.
        assert_eq!(snap.counters["query.windows"], 4);
        assert!(snap.counters.contains_key("query.matrix.sends"));
    }
}
