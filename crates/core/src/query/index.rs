//! The trace index: per-rule expanded lengths and cumulative RHS spans.
//!
//! Annotating every grammar rule with its expanded length (respecting the
//! `A -> B^k` repeat exponents) turns the compressed grammar into a
//! positional data structure: the i-th call of any rank is found by
//! descending from the start rule, binary-searching each rule body's
//! cumulative spans — O(depth · log body) per probe, never expanding
//! anything. The index is built once per trace (O(grammar size)) and can
//! be serialized alongside it, so later analysis sessions skip the
//! length computation entirely.

use pilgrim_sequitur::{decode_varint, varint_len, write_varint, DecodeError, Symbol, TOP_RULE};

use crate::encode::EncodedCall;
use crate::metrics::{MetricsRegistry, Stage};
use crate::trace::GlobalTrace;

/// Serialized-index magic bytes (`PGIX`).
const INDEX_MAGIC: [u8; 4] = *b"PGIX";
/// Serialized-index format version.
const INDEX_VERSION: u8 = 1;

/// Positional index over a [`GlobalTrace`]'s grammar: per-rule expanded
/// lengths, per-rule cumulative right-hand-side spans, and per-rank call
/// offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceIndex {
    /// Expanded length of each rule.
    rule_lens: Vec<u64>,
    /// Per rule: cumulative expanded span before each RHS slot, with the
    /// rule's total length appended (`symbols.len() + 1` entries), so a
    /// slot covering offset `o` is found by binary search.
    rule_cum: Vec<Vec<u64>>,
    /// Rank `r`'s calls occupy global offsets
    /// `[rank_offsets[r], rank_offsets[r + 1])`.
    rank_offsets: Vec<u64>,
}

impl TraceIndex {
    /// Builds the index for a trace: one pass over the grammar for the
    /// rule lengths, one for the cumulative spans, one over the rank
    /// lengths for the offsets.
    pub fn build(trace: &GlobalTrace) -> Self {
        Self::build_with_metrics(trace, &MetricsRegistry::default())
    }

    /// [`TraceIndex::build`], timed under [`Stage::IndexBuild`] with
    /// `index.rules` / `index.bytes` gauges recorded.
    pub fn build_with_metrics(trace: &GlobalTrace, metrics: &MetricsRegistry) -> Self {
        let _t = metrics.time_stage(Stage::IndexBuild);
        let rule_lens = trace.grammar.rule_lengths();
        let rule_cum = cum_spans(&trace.grammar.rules, &rule_lens);
        let mut rank_offsets = Vec::with_capacity(trace.nranks + 1);
        let mut acc = 0u64;
        rank_offsets.push(0);
        for &l in &trace.rank_lengths {
            acc += l;
            rank_offsets.push(acc);
        }
        let index = TraceIndex { rule_lens, rule_cum, rank_offsets };
        metrics.set_gauge("index.rules", index.rule_lens.len() as u64);
        metrics.set_gauge("index.bytes", index.byte_size() as u64);
        index
    }

    /// Total number of calls the grammar generates.
    pub fn total_calls(&self) -> u64 {
        self.rule_lens.first().copied().unwrap_or(0)
    }

    /// Number of ranks covered by the rank offsets.
    pub fn nranks(&self) -> usize {
        self.rank_offsets.len().saturating_sub(1)
    }

    /// Global offset range `[start, end)` of one rank's calls.
    pub fn rank_span(&self, rank: usize) -> (u64, u64) {
        let start = self.rank_offsets.get(rank).copied().unwrap_or(0);
        let end = self.rank_offsets.get(rank + 1).copied().unwrap_or(start);
        (start, end)
    }

    /// Number of calls rank `rank` contributes.
    pub fn rank_len(&self, rank: usize) -> u64 {
        let (s, e) = self.rank_span(rank);
        e - s
    }

    /// Expanded length of rule `rule`.
    pub fn rule_len(&self, rule: usize) -> u64 {
        self.rule_lens.get(rule).copied().unwrap_or(0)
    }

    /// Per-rule expanded lengths, indexed by rule id.
    pub fn rule_lens(&self) -> &[u64] {
        &self.rule_lens
    }

    /// Cumulative spans of a rule body (see [`TraceIndex`] field docs).
    pub(crate) fn cum(&self, rule: usize) -> &[u64] {
        &self.rule_cum[rule]
    }

    /// The terminal at global offset `off`, in O(depth · log body) with
    /// no expansion. `None` when `off` is past the end of the trace or
    /// the grammar is malformed in a way decoding did not reject.
    pub fn term_at(&self, trace: &GlobalTrace, off: u64) -> Option<u32> {
        let rules = &trace.grammar.rules;
        if rules.len() != self.rule_lens.len() {
            return None;
        }
        let mut rid = TOP_RULE as usize;
        let mut off = off;
        if off >= self.rule_len(rid) {
            return None;
        }
        loop {
            let cum = &self.rule_cum[rid];
            // Last slot whose cumulative start is <= off.
            let slot = cum.partition_point(|&c| c <= off) - 1;
            let (sym, _) = rules[rid].symbols[slot];
            let rem = off - cum[slot];
            match sym {
                Symbol::Terminal(t) => return Some(t),
                Symbol::Rule(r) => {
                    // Offset within one instance of the repeated rule.
                    let unit = self.rule_len(r as usize);
                    rid = r as usize;
                    off = rem % unit;
                }
            }
        }
    }

    /// The terminal of rank `rank`'s `i`-th call.
    pub fn rank_term(&self, trace: &GlobalTrace, rank: usize, i: u64) -> Option<u32> {
        let (start, end) = self.rank_span(rank);
        if start + i >= end {
            return None;
        }
        self.term_at(trace, start + i)
    }

    /// Indexed random access: decodes rank `rank`'s `i`-th call without
    /// expanding the grammar.
    pub fn call_at(&self, trace: &GlobalTrace, rank: usize, i: u64) -> Option<EncodedCall> {
        self.rank_term(trace, rank, i)
            .and_then(|term| crate::decode::decode_term_call(trace, term).ok())
    }

    /// Serializes the index (magic, version, rule lengths, rank lengths).
    /// The cumulative spans are rebuilt from the grammar on decode, so
    /// the on-disk form stays proportional to the rule count.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&INDEX_MAGIC);
        out.push(INDEX_VERSION);
        write_varint(out, self.rule_lens.len() as u64);
        for &l in &self.rule_lens {
            write_varint(out, l);
        }
        write_varint(out, self.nranks() as u64);
        for w in self.rank_offsets.windows(2) {
            write_varint(out, w[1] - w[0]);
        }
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        let mut n = INDEX_MAGIC.len() + 1 + varint_len(self.rule_lens.len() as u64);
        n += self.rule_lens.iter().map(|&l| varint_len(l)).sum::<usize>();
        n += varint_len(self.nranks() as u64);
        n += self.rank_offsets.windows(2).map(|w| varint_len(w[1] - w[0])).sum::<usize>();
        n
    }

    /// Decodes an index written by [`TraceIndex::serialize`] and verifies
    /// it against `trace`: the rule count must match the grammar, every
    /// stored rule length must agree with the rule's body under the
    /// stored lengths, and the rank offsets must match the trace's rank
    /// lengths. Returns the index and the bytes consumed.
    pub fn decode(buf: &[u8], trace: &GlobalTrace) -> Result<(Self, usize), DecodeError> {
        let mut pos = 0usize;
        if buf.len() < 5 || buf[..4] != INDEX_MAGIC {
            return Err(DecodeError::Corrupt { what: "index magic", offset: 0 });
        }
        pos += 4;
        if buf[pos] != INDEX_VERSION {
            return Err(DecodeError::Corrupt { what: "index version", offset: pos });
        }
        pos += 1;
        let nrules_off = pos;
        let nrules = decode_varint(buf, &mut pos)? as usize;
        if nrules != trace.grammar.num_rules() {
            return Err(DecodeError::Corrupt { what: "index rule count", offset: nrules_off });
        }
        let mut rule_lens = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            rule_lens.push(decode_varint(buf, &mut pos)?);
        }
        // Cross-check: each rule's stored length must be the sum of its
        // body's spans under the stored lengths (one non-recursive pass).
        for (rid, rule) in trace.grammar.rules.iter().enumerate() {
            let mut total = 0u64;
            for &(sym, exp) in &rule.symbols {
                let unit = match sym {
                    Symbol::Terminal(_) => 1,
                    Symbol::Rule(r) => rule_lens.get(r as usize).copied().unwrap_or(0),
                };
                total = total.saturating_add(unit.saturating_mul(exp));
            }
            if total != rule_lens[rid] {
                return Err(DecodeError::Corrupt { what: "index rule length", offset: nrules_off });
            }
        }
        let nranks_off = pos;
        let nranks = decode_varint(buf, &mut pos)? as usize;
        if nranks != trace.nranks {
            return Err(DecodeError::Corrupt { what: "index rank count", offset: nranks_off });
        }
        let mut rank_offsets = Vec::with_capacity(nranks + 1);
        let mut acc = 0u64;
        rank_offsets.push(0);
        for r in 0..nranks {
            let off = pos;
            let len = decode_varint(buf, &mut pos)?;
            if trace.rank_lengths.get(r).copied().unwrap_or(0) != len {
                return Err(DecodeError::Corrupt { what: "index rank length", offset: off });
            }
            acc += len;
            rank_offsets.push(acc);
        }
        let rule_cum = cum_spans(&trace.grammar.rules, &rule_lens);
        Ok((TraceIndex { rule_lens, rule_cum, rank_offsets }, pos))
    }
}

/// Cumulative expanded spans for every rule body.
fn cum_spans(rules: &[pilgrim_sequitur::FlatRule], rule_lens: &[u64]) -> Vec<Vec<u64>> {
    rules
        .iter()
        .map(|rule| {
            let mut cum = Vec::with_capacity(rule.symbols.len() + 1);
            let mut acc = 0u64;
            cum.push(0);
            for &(sym, exp) in &rule.symbols {
                let unit = match sym {
                    Symbol::Terminal(_) => 1,
                    Symbol::Rule(r) => rule_lens.get(r as usize).copied().unwrap_or(0),
                };
                acc += unit * exp;
                cum.push(acc);
            }
            cum
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::cst::Cst;
    use crate::encode::{EncoderConfig, SigWriter};
    use crate::trace::TraceCompleteness;
    use pilgrim_sequitur::Grammar;

    /// Two ranks over a repetitive sequence: the grammar carries `B^k`
    /// exponents, which is exactly what the spans must respect. Terminal
    /// `t` maps to a real signature for func id `t + 1`.
    pub(crate) fn repeat_trace() -> GlobalTrace {
        let sig = |func: u16, v: i64| {
            let mut w = SigWriter::new(func);
            w.int(v);
            w.into_bytes()
        };
        // Stats mirror the grammar below: terms 0/1 occur 9 times
        // (6 + 3 loop iterations across the two ranks), term 2 once.
        let mut cst = Cst::new();
        cst.intern(&sig(1, 0), crate::cst::SigStats { count: 9, dur_sum: 90 });
        cst.intern(&sig(2, 1), crate::cst::SigStats { count: 9, dur_sum: 180 });
        cst.intern(&sig(3, 2), crate::cst::SigStats { count: 1, dur_sum: 30 });
        let mut g = Grammar::new();
        // Rank 0: (0 1)^6 2  -> 13 calls. Rank 1: (0 1)^3 -> 6 calls.
        for _ in 0..6 {
            g.push(0);
            g.push(1);
        }
        g.push(2);
        for _ in 0..3 {
            g.push(0);
            g.push(1);
        }
        GlobalTrace {
            nranks: 2,
            encoder_cfg: EncoderConfig::default(),
            cst,
            grammar: g.to_flat(),
            rank_lengths: vec![13, 6],
            unique_grammars: 2,
            duration_grammars: vec![],
            interval_grammars: vec![],
            duration_rank_map: vec![],
            interval_rank_map: vec![],
            completeness: TraceCompleteness::complete(),
            nondet: None,
        }
    }

    #[test]
    fn term_at_agrees_with_expansion_everywhere() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let full = t.grammar.expand();
        assert_eq!(idx.total_calls(), full.len() as u64);
        for (i, &want) in full.iter().enumerate() {
            assert_eq!(idx.term_at(&t, i as u64), Some(want), "offset {i}");
        }
        assert_eq!(idx.term_at(&t, full.len() as u64), None);
    }

    #[test]
    fn rank_spans_partition_the_trace() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        assert_eq!(idx.rank_span(0), (0, 13));
        assert_eq!(idx.rank_span(1), (13, 19));
        assert_eq!(idx.rank_len(1), 6);
        // Rank-local access crosses the repeat boundary correctly.
        let ranks = t.decode_all_ranks();
        for (rank, terms) in ranks.iter().enumerate() {
            for (i, &want) in terms.iter().enumerate() {
                assert_eq!(idx.rank_term(&t, rank, i as u64), Some(want), "rank {rank} call {i}");
            }
            assert_eq!(idx.rank_term(&t, rank, terms.len() as u64), None);
        }
    }

    #[test]
    fn serialize_roundtrip_and_corruption_detection() {
        let t = repeat_trace();
        let idx = TraceIndex::build(&t);
        let mut buf = Vec::new();
        idx.serialize(&mut buf);
        assert_eq!(buf.len(), idx.byte_size());
        let (back, used) = TraceIndex::decode(&buf, &t).expect("roundtrip");
        assert_eq!(used, buf.len());
        assert_eq!(back, idx);
        // Flip a stored rule length: the body cross-check must reject it.
        let mut bad = buf.clone();
        let p = INDEX_MAGIC.len() + 1 + 1; // first rule length varint
        bad[p] = bad[p].wrapping_add(1);
        assert!(TraceIndex::decode(&bad, &t).is_err());
        assert!(TraceIndex::decode(b"nope", &t).is_err());
    }

    #[test]
    fn build_records_metrics() {
        let t = repeat_trace();
        let m = MetricsRegistry::new(true);
        let idx = TraceIndex::build_with_metrics(&t, &m);
        let snap = m.snapshot();
        assert_eq!(snap.counters["index.rules"], idx.rule_lens().len() as u64);
        assert_eq!(snap.counters["index.bytes"], idx.byte_size() as u64);
    }
}
