//! The compressed-trace query engine.
//!
//! Pilgrim's decoder answers every question by fully expanding the
//! grammar, so analysis cost is O(trace length) even when the grammar is
//! exponentially smaller. This module turns the archive format into a
//! queryable store with three layers:
//!
//! * [`TraceIndex`] — annotates every grammar rule with its expanded
//!   length (respecting `A -> B^k` repeat exponents), giving O(depth)
//!   random access to the i-th call of any rank and O(depth · log body)
//!   seek-to-offset. Built once per trace, serializable alongside it.
//! * [`TermCursor`] / [`CallIterator`] — pull-based streaming decode
//!   that walks the grammar with an explicit rule stack; `skip`/`take`
//!   windows run in constant memory, never materializing the expansion.
//! * [`QueryEngine`] — grammar-aware analytics (per-signature call
//!   counts, the send/recv communication matrix, per-signature aggregate
//!   time) computed by evaluating each rule body once and weighting by
//!   repeat counts, without ever expanding shared rules twice.
//!
//! Index construction is timed under
//! [`Stage::IndexBuild`](crate::metrics::Stage::IndexBuild) and query
//! execution under [`Stage::Query`](crate::metrics::Stage::Query) when a
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) is supplied, so
//! benchmarks can report query-vs-full-decode speedups.

mod analytics;
mod index;
mod stream;

pub use analytics::{CommMatrix, QueryEngine, SigCounts, SignatureSummary};
pub use index::TraceIndex;
pub use stream::{CallIterator, TermCursor};
