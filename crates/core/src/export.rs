//! Trace export: a human-readable OTF-inspired text format, and the
//! corruption-hardened `PGC1` container.
//!
//! The paper notes that Pilgrim's own format keeps existing post-
//! processing tools from reading its traces, and lists a converter "into
//! some existing trace formats (e.g., OTF)" as future work. This module
//! implements that direction: a line-oriented event format in the spirit
//! of OTF's ASCII representation — a definitions preamble (functions,
//! signatures) followed by per-rank event records — which downstream
//! text tooling can consume directly.
//!
//! [`write_container`] wraps the same trace content in a sectioned
//! container where every section carries a CRC32 of its payload, so a
//! flipped bit on disk is detected at the section that holds it instead
//! of surfacing as a confusing structural decode error — and so
//! [`GlobalTrace::decode_salvage`](crate::decode) can recover every rank
//! whose sections still checksum clean.

use std::fmt::Write;

use mpi_sim::FuncId;
use pilgrim_sequitur::write_varint;

use crate::encode::{decode_signature, EncodedArg, RankCode};
use crate::trace::{GlobalTrace, RankStatus, RANK_MAP_NONE};

fn fmt_rank(code: RankCode) -> String {
    match code {
        RankCode::Relative(d) => format!("rel({d:+})"),
        RankCode::Absolute(r) => format!("{r}"),
        RankCode::AnySource => "ANY_SOURCE".into(),
        RankCode::ProcNull => "PROC_NULL".into(),
    }
}

/// Formats one decoded argument in the export's compact notation
/// (`rel(+1)`, `comm=2`, `buf=seg5+128`, …). Shared with `trace_tool`'s
/// JSON slice output so both surfaces print arguments identically.
pub fn format_arg(arg: &EncodedArg) -> String {
    match arg {
        EncodedArg::Int(v) => format!("{v}"),
        EncodedArg::Rank(c) => fmt_rank(*c),
        EncodedArg::Tag(t) => format!("tag={t}"),
        EncodedArg::Comm(c) => {
            if *c == u64::MAX {
                "comm=UNDEFINED".into()
            } else if *c == u64::MAX - 2 {
                "comm=<deferred>".into()
            } else {
                format!("comm={c}")
            }
        }
        EncodedArg::Datatype(d) => format!("dtype={d}"),
        EncodedArg::Op(o) => format!("op={o}"),
        EncodedArg::Group(g) => format!("group={g}"),
        EncodedArg::Request(r) => {
            if *r == u64::MAX {
                "req=NULL".into()
            } else {
                format!("req={r}")
            }
        }
        EncodedArg::RequestArr(v) => {
            let items: Vec<String> =
                v.iter().map(|r| r.map_or("NULL".into(), |x| x.to_string())).collect();
            format!("reqs=[{}]", items.join(","))
        }
        EncodedArg::Ptr { segment, offset } => format!("buf=seg{segment}+{offset}"),
        EncodedArg::Status { source, tag } => {
            format!("status=({},{})", fmt_rank(*source), tag)
        }
        EncodedArg::StatusArr(v) => {
            let items: Vec<String> =
                v.iter().map(|(s, t)| format!("({},{t})", fmt_rank(*s))).collect();
            format!("statuses=[{}]", items.join(","))
        }
        EncodedArg::IntArr(v) => format!("{v:?}"),
        EncodedArg::Color(c) => format!("color={c}"),
        EncodedArg::Key(k) => format!("key={k}"),
        EncodedArg::Str(s) => format!("{s:?}"),
    }
}

/// Exports the whole trace as text: a `DEF` section mapping signature ids
/// to decoded calls, then one `EVT <rank> <signature-id>` line per call.
/// Event bodies live in the definition table, so the export stays compact
/// for repetitive traces.
pub fn to_text(trace: &GlobalTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# pilgrim trace export (OTF-style text)");
    let _ = writeln!(out, "# ranks {}", trace.nranks);
    let _ = writeln!(out, "# calls {}", trace.rank_lengths.iter().sum::<u64>());
    let _ = writeln!(out, "# signatures {}", trace.cst.len());
    for (term, sig, stats) in trace.cst.iter() {
        let call = decode_signature(sig).expect("stored signatures decode");
        let name = FuncId::from_id(call.func).map_or("MPI_<unknown>", |f| f.name());
        let args: Vec<String> = call.args.iter().map(format_arg).collect();
        let _ = writeln!(
            out,
            "DEF {term} {name}({}) count={} avg_ns={:.0}",
            args.join(", "),
            stats.count,
            stats.avg_duration()
        );
    }
    for (rank, terms) in trace.decode_all_ranks().into_iter().enumerate() {
        for t in terms {
            let _ = writeln!(out, "EVT {rank} {t}");
        }
    }
    out
}

/// Exports only the definitions (the per-signature view of the program).
pub fn to_signature_listing(trace: &GlobalTrace) -> String {
    let mut out = String::new();
    for (term, sig, stats) in trace.cst.iter() {
        let call = decode_signature(sig).expect("stored signatures decode");
        let name = FuncId::from_id(call.func).map_or("MPI_<unknown>", |f| f.name());
        let args: Vec<String> = call.args.iter().map(format_arg).collect();
        let _ = writeln!(out, "{term:>6}  {name}({})  x{}", args.join(", "), stats.count);
    }
    out
}

// ---------------------------------------------------------------------
// The PGC1 checksummed container.
// ---------------------------------------------------------------------

/// Magic prefix identifying the checksummed container format.
pub const CONTAINER_MAGIC: [u8; 4] = *b"PGC1";
/// Container format version written after the magic.
pub const CONTAINER_VERSION: u8 = 1;

/// Section kinds, in their mandatory on-disk order: META, CST, GRAMMAR,
/// one DURATION section per duration grammar, one INTERVAL section per
/// interval grammar, then one RANK section per rank.
pub(crate) const SEC_META: u8 = 1;
pub(crate) const SEC_CST: u8 = 2;
pub(crate) const SEC_GRAMMAR: u8 = 3;
pub(crate) const SEC_DURATION: u8 = 4;
pub(crate) const SEC_INTERVAL: u8 = 5;
pub(crate) const SEC_RANK: u8 = 6;
/// Optional trailing section: the `PGND` nondeterminism log of a
/// record/replay recording ([`crate::NondetLog`]). Absent from ordinary
/// traces, so pre-existing containers decode unchanged.
pub(crate) const SEC_NONDET: u8 = 7;

/// Human-readable section name, used in checksum error reports.
pub(crate) fn section_name(kind: u8) -> &'static str {
    match kind {
        SEC_META => "meta",
        SEC_CST => "cst",
        SEC_GRAMMAR => "grammar",
        SEC_DURATION => "duration",
        SEC_INTERVAL => "interval",
        SEC_RANK => "rank",
        SEC_NONDET => "nondet",
        _ => "unknown",
    }
}

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// IEEE CRC-32 (the zlib/gzip polynomial), table-driven, no dependencies.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// True when `buf` starts with the container magic (regardless of
/// version). Lets tools sniff container vs. legacy flat traces.
pub fn is_container(buf: &[u8]) -> bool {
    buf.len() >= CONTAINER_MAGIC.len() && buf[..CONTAINER_MAGIC.len()] == CONTAINER_MAGIC
}

fn push_section(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.push(kind);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// A timing rank-map entry in its on-disk +1 form (0 = no grammar, which
/// also covers traces whose maps are empty because timing is aggregated).
fn map_entry(map: &[u32], rank: usize) -> u64 {
    match map.get(rank) {
        Some(&m) if m != RANK_MAP_NONE => m as u64 + 1,
        _ => 0,
    }
}

/// Serializes a trace into the `PGC1` container: magic + version, then a
/// sequence of `(kind, length, payload, CRC32)` sections. Content is
/// identical to [`GlobalTrace::serialize`] but regrouped so each
/// independently recoverable piece — the merged CST, the call grammar,
/// each timing grammar, and each rank's metadata — is checksummed on its
/// own. Decode with [`GlobalTrace::decode_container`] (strict) or
/// [`GlobalTrace::decode_salvage`] (best effort).
pub fn write_container(trace: &GlobalTrace) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);

    let mut payload = Vec::new();
    payload.push(trace.encoder_cfg.to_byte());
    write_varint(&mut payload, trace.nranks as u64);
    write_varint(&mut payload, trace.unique_grammars as u64);
    write_varint(&mut payload, trace.duration_grammars.len() as u64);
    write_varint(&mut payload, trace.interval_grammars.len() as u64);
    push_section(&mut out, SEC_META, &payload);

    payload.clear();
    trace.cst.serialize(&mut payload);
    push_section(&mut out, SEC_CST, &payload);

    payload.clear();
    trace.grammar.serialize(&mut payload);
    push_section(&mut out, SEC_GRAMMAR, &payload);

    for (kind, grammars) in
        [(SEC_DURATION, &trace.duration_grammars), (SEC_INTERVAL, &trace.interval_grammars)]
    {
        for g in grammars {
            payload.clear();
            g.serialize(&mut payload);
            push_section(&mut out, kind, &payload);
        }
    }

    for rank in 0..trace.nranks {
        payload.clear();
        write_varint(&mut payload, trace.rank_lengths.get(rank).copied().unwrap_or(0));
        write_varint(&mut payload, map_entry(&trace.duration_rank_map, rank));
        write_varint(&mut payload, map_entry(&trace.interval_rank_map, rank));
        match trace.completeness.status(rank) {
            RankStatus::Merged => write_varint(&mut payload, 0),
            RankStatus::Lost { round } => {
                write_varint(&mut payload, 1);
                write_varint(&mut payload, round as u64);
            }
            RankStatus::Checkpoint { calls } => {
                write_varint(&mut payload, 2);
                write_varint(&mut payload, calls);
            }
            RankStatus::Salvaged { calls } => {
                write_varint(&mut payload, 3);
                write_varint(&mut payload, calls);
            }
        }
        let events: Vec<_> = trace.completeness.events_for(rank).collect();
        write_varint(&mut payload, events.len() as u64);
        for e in events {
            e.serialize(&mut payload);
        }
        push_section(&mut out, SEC_RANK, &payload);
    }

    if let Some(nondet) = &trace.nondet {
        payload.clear();
        nondet.serialize(&mut payload);
        push_section(&mut out, SEC_NONDET, &payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::PilgrimTracer;
    use mpi_sim::datatype::BasicType;
    use mpi_sim::{World, WorldConfig};

    fn sample_trace() -> GlobalTrace {
        let mut tracers = World::run(&WorldConfig::new(2), PilgrimTracer::with_defaults, |env| {
            let me = env.world_rank();
            let world = env.comm_world();
            let dt = env.basic(BasicType::LongLong);
            let buf = env.malloc(8);
            for _ in 0..5 {
                if me == 0 {
                    env.send(buf, 1, dt, 1, 9, world);
                } else {
                    env.recv(buf, 1, dt, 0, 9, world);
                }
                env.barrier(world);
            }
        });
        tracers[0].take_output().trace.unwrap()
    }

    #[test]
    fn export_contains_defs_and_events() {
        let trace = sample_trace();
        let text = to_text(&trace);
        assert!(text.contains("DEF"));
        assert!(text.contains("MPI_Send"));
        assert!(text.contains("MPI_Recv"));
        assert!(text.contains("MPI_Barrier"));
        assert!(text.contains("tag=9"));
        // One EVT line per call.
        let evts = text.lines().filter(|l| l.starts_with("EVT ")).count() as u64;
        assert_eq!(evts, trace.rank_lengths.iter().sum::<u64>());
    }

    #[test]
    fn events_reference_defined_signatures() {
        let trace = sample_trace();
        let text = to_text(&trace);
        let defs: std::collections::HashSet<&str> = text
            .lines()
            .filter(|l| l.starts_with("DEF "))
            .map(|l| l.split_whitespace().nth(1).unwrap())
            .collect();
        for l in text.lines().filter(|l| l.starts_with("EVT ")) {
            let term = l.split_whitespace().nth(2).unwrap();
            assert!(defs.contains(term), "event references undefined signature {term}");
        }
    }

    #[test]
    fn signature_listing_is_compact() {
        let trace = sample_trace();
        let listing = to_signature_listing(&trace);
        assert_eq!(listing.lines().count(), trace.cst.len());
        assert!(listing.contains("x5"), "counts are shown");
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn container_starts_with_magic_and_sniffs() {
        let trace = sample_trace();
        let bytes = write_container(&trace);
        assert!(is_container(&bytes));
        assert_eq!(&bytes[..4], b"PGC1");
        assert_eq!(bytes[4], CONTAINER_VERSION);
        // The legacy flat serialization is not mistaken for a container.
        assert!(!is_container(&trace.serialize()));
        assert!(!is_container(b"PG"));
    }

    #[test]
    fn container_sections_appear_in_order() {
        let trace = sample_trace();
        let bytes = write_container(&trace);
        // Walk the framing by hand: kind, payload-length varint, payload,
        // 4-byte CRC — and collect the kinds.
        let mut pos = 5;
        let mut kinds = Vec::new();
        while pos < bytes.len() {
            kinds.push(bytes[pos]);
            pos += 1;
            let mut len = 0u64;
            let mut shift = 0;
            loop {
                let b = bytes[pos];
                pos += 1;
                len |= u64::from(b & 0x7F) << shift;
                shift += 7;
                if b & 0x80 == 0 {
                    break;
                }
            }
            let payload = &bytes[pos..pos + len as usize];
            pos += len as usize;
            let stored =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            assert_eq!(crc32(payload), stored, "section checksum is valid as written");
            pos += 4;
        }
        let mut expect = vec![SEC_META, SEC_CST, SEC_GRAMMAR];
        expect.extend(std::iter::repeat_n(SEC_DURATION, trace.duration_grammars.len()));
        expect.extend(std::iter::repeat_n(SEC_INTERVAL, trace.interval_grammars.len()));
        expect.extend(std::iter::repeat_n(SEC_RANK, trace.nranks));
        assert_eq!(kinds, expect);
    }
}
