//! Trace export to a human-readable, OTF-inspired text format.
//!
//! The paper notes that Pilgrim's own format keeps existing post-
//! processing tools from reading its traces, and lists a converter "into
//! some existing trace formats (e.g., OTF)" as future work. This module
//! implements that direction: a line-oriented event format in the spirit
//! of OTF's ASCII representation — a definitions preamble (functions,
//! signatures) followed by per-rank event records — which downstream
//! text tooling can consume directly.

use std::fmt::Write;

use mpi_sim::FuncId;

use crate::encode::{decode_signature, EncodedArg, RankCode};
use crate::trace::GlobalTrace;

fn fmt_rank(code: RankCode) -> String {
    match code {
        RankCode::Relative(d) => format!("rel({d:+})"),
        RankCode::Absolute(r) => format!("{r}"),
        RankCode::AnySource => "ANY_SOURCE".into(),
        RankCode::ProcNull => "PROC_NULL".into(),
    }
}

/// Formats one decoded argument in the export's compact notation
/// (`rel(+1)`, `comm=2`, `buf=seg5+128`, …). Shared with `trace_tool`'s
/// JSON slice output so both surfaces print arguments identically.
pub fn format_arg(arg: &EncodedArg) -> String {
    match arg {
        EncodedArg::Int(v) => format!("{v}"),
        EncodedArg::Rank(c) => fmt_rank(*c),
        EncodedArg::Tag(t) => format!("tag={t}"),
        EncodedArg::Comm(c) => {
            if *c == u64::MAX {
                "comm=UNDEFINED".into()
            } else if *c == u64::MAX - 2 {
                "comm=<deferred>".into()
            } else {
                format!("comm={c}")
            }
        }
        EncodedArg::Datatype(d) => format!("dtype={d}"),
        EncodedArg::Op(o) => format!("op={o}"),
        EncodedArg::Group(g) => format!("group={g}"),
        EncodedArg::Request(r) => {
            if *r == u64::MAX {
                "req=NULL".into()
            } else {
                format!("req={r}")
            }
        }
        EncodedArg::RequestArr(v) => {
            let items: Vec<String> =
                v.iter().map(|r| r.map_or("NULL".into(), |x| x.to_string())).collect();
            format!("reqs=[{}]", items.join(","))
        }
        EncodedArg::Ptr { segment, offset } => format!("buf=seg{segment}+{offset}"),
        EncodedArg::Status { source, tag } => {
            format!("status=({},{})", fmt_rank(*source), tag)
        }
        EncodedArg::StatusArr(v) => {
            let items: Vec<String> =
                v.iter().map(|(s, t)| format!("({},{t})", fmt_rank(*s))).collect();
            format!("statuses=[{}]", items.join(","))
        }
        EncodedArg::IntArr(v) => format!("{v:?}"),
        EncodedArg::Color(c) => format!("color={c}"),
        EncodedArg::Key(k) => format!("key={k}"),
        EncodedArg::Str(s) => format!("{s:?}"),
    }
}

/// Exports the whole trace as text: a `DEF` section mapping signature ids
/// to decoded calls, then one `EVT <rank> <signature-id>` line per call.
/// Event bodies live in the definition table, so the export stays compact
/// for repetitive traces.
pub fn to_text(trace: &GlobalTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# pilgrim trace export (OTF-style text)");
    let _ = writeln!(out, "# ranks {}", trace.nranks);
    let _ = writeln!(out, "# calls {}", trace.rank_lengths.iter().sum::<u64>());
    let _ = writeln!(out, "# signatures {}", trace.cst.len());
    for (term, sig, stats) in trace.cst.iter() {
        let call = decode_signature(sig).expect("stored signatures decode");
        let name = FuncId::from_id(call.func).map_or("MPI_<unknown>", |f| f.name());
        let args: Vec<String> = call.args.iter().map(format_arg).collect();
        let _ = writeln!(
            out,
            "DEF {term} {name}({}) count={} avg_ns={:.0}",
            args.join(", "),
            stats.count,
            stats.avg_duration()
        );
    }
    for (rank, terms) in trace.decode_all_ranks().into_iter().enumerate() {
        for t in terms {
            let _ = writeln!(out, "EVT {rank} {t}");
        }
    }
    out
}

/// Exports only the definitions (the per-signature view of the program).
pub fn to_signature_listing(trace: &GlobalTrace) -> String {
    let mut out = String::new();
    for (term, sig, stats) in trace.cst.iter() {
        let call = decode_signature(sig).expect("stored signatures decode");
        let name = FuncId::from_id(call.func).map_or("MPI_<unknown>", |f| f.name());
        let args: Vec<String> = call.args.iter().map(format_arg).collect();
        let _ = writeln!(out, "{term:>6}  {name}({})  x{}", args.join(", "), stats.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::PilgrimTracer;
    use mpi_sim::datatype::BasicType;
    use mpi_sim::{World, WorldConfig};

    fn sample_trace() -> GlobalTrace {
        let mut tracers = World::run(&WorldConfig::new(2), PilgrimTracer::with_defaults, |env| {
            let me = env.world_rank();
            let world = env.comm_world();
            let dt = env.basic(BasicType::LongLong);
            let buf = env.malloc(8);
            for _ in 0..5 {
                if me == 0 {
                    env.send(buf, 1, dt, 1, 9, world);
                } else {
                    env.recv(buf, 1, dt, 0, 9, world);
                }
                env.barrier(world);
            }
        });
        tracers[0].take_global_trace().unwrap()
    }

    #[test]
    fn export_contains_defs_and_events() {
        let trace = sample_trace();
        let text = to_text(&trace);
        assert!(text.contains("DEF"));
        assert!(text.contains("MPI_Send"));
        assert!(text.contains("MPI_Recv"));
        assert!(text.contains("MPI_Barrier"));
        assert!(text.contains("tag=9"));
        // One EVT line per call.
        let evts = text.lines().filter(|l| l.starts_with("EVT ")).count() as u64;
        assert_eq!(evts, trace.rank_lengths.iter().sum::<u64>());
    }

    #[test]
    fn events_reference_defined_signatures() {
        let trace = sample_trace();
        let text = to_text(&trace);
        let defs: std::collections::HashSet<&str> = text
            .lines()
            .filter(|l| l.starts_with("DEF "))
            .map(|l| l.split_whitespace().nth(1).unwrap())
            .collect();
        for l in text.lines().filter(|l| l.starts_with("EVT ")) {
            let term = l.split_whitespace().nth(2).unwrap();
            assert!(defs.contains(term), "event references undefined signature {term}");
        }
    }

    #[test]
    fn signature_listing_is_compact() {
        let trace = sample_trace();
        let listing = to_signature_listing(&trace);
        assert_eq!(listing.lines().count(), trace.cst.len());
        assert!(listing.contains("x5"), "counts are shown");
    }
}
