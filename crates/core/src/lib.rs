//! # Pilgrim: scalable and (near) lossless MPI tracing
//!
//! A Rust reproduction of *Pilgrim: Scalable and (near) Lossless MPI
//! Tracing* (Wang, Balaji, Snir — SC '21), built on the `mpi-sim`
//! substrate's PMPI-equivalent tracing seam.
//!
//! Pilgrim records **every** MPI call with **all** of its arguments and
//! still produces tiny traces by exploiting the regularity of MPI
//! programs at three levels:
//!
//! 1. **Call signature table (CST)** — each distinct
//!    `(function, encoded arguments)` tuple is stored once and becomes a
//!    grammar terminal. Opaque handles are replaced by symbolic ids
//!    ([`memtracker`], [`idpool`]); src/dst ranks may be stored relative
//!    to the caller so stencil exchanges collapse to one signature.
//! 2. **Context-free grammar (CFG)** — the per-rank terminal sequence is
//!    compressed online by the optimized Sequitur algorithm
//!    (`pilgrim_sequitur`), whose repetition counts store a loop of `N`
//!    identical iterations in O(1) space.
//! 3. **Inter-process merge** — at finalize, CSTs are globally
//!    deduplicated and per-rank grammars merged pairwise with an identity
//!    check; SPMD programs commonly produce only a handful of unique
//!    grammars, making the merged trace near constant in the rank count.
//!
//! ## Quick start
//!
//! ```
//! use mpi_sim::{World, WorldConfig};
//! use mpi_sim::datatype::BasicType;
//! use pilgrim::{PilgrimTracer, PilgrimConfig};
//!
//! let cfg = WorldConfig::new(4);
//! let mut tracers = World::run(
//!     &cfg,
//!     |rank| PilgrimTracer::new(rank, PilgrimConfig::default()),
//!     |env| {
//!         let world = env.comm_world();
//!         let dt = env.basic(BasicType::Double);
//!         let buf = env.malloc(80);
//!         for _ in 0..100 {
//!             env.bcast(buf, 10, dt, 0, world);
//!         }
//!     },
//! );
//! let trace = tracers[0].take_output().trace.expect("rank 0 holds the trace");
//! assert_eq!(trace.nranks, 4);
//! // 400+ calls compress into a few hundred bytes.
//! assert!(trace.size_bytes() < 1000);
//! let calls = trace.decode_rank(2);
//! assert_eq!(calls.len() as u64, trace.rank_lengths[2]);
//! ```
//!
//! ## Observability
//!
//! Enabling [`PilgrimConfig::metrics`] turns on a per-rank
//! [`MetricsRegistry`] ([`metrics`]): monotonic timers for the six
//! pipeline stages (`intercept`, `encode`, `grammar`, `cst-merge`,
//! `cfg-merge`, `final-sequitur`), named counters (`calls`, …) and byte
//! gauges (`cst.signatures`, `cfg.rules`, `local.bytes`, …). The stage
//! timers partition [`OverheadStats`] exactly: the three intra-process
//! stages sum to `intra`, `cst-merge` equals `inter_cst`, and
//! `cfg-merge` + `final-sequitur` equal `inter_cfg`. When metrics are
//! off (the default) every registry operation is a single branch.
//!
//! At finalize, [`PilgrimTracer::take_output`] returns a
//! [`FinalizeOutput`] bundling the merged trace (rank 0), the rank's
//! [`MetricsReport`] snapshot — with the [`SizeReport`] byte
//! decomposition attached on the rank holding the trace — and its
//! [`OverheadStats`]. Reports from all ranks [`MetricsReport::merge`]
//! into one and export as JSON via [`MetricsReport::to_json`]
//! (`{"size":{...},"timers_ns":{...},"counters":{...}}`, sorted keys, no
//! external dependencies). The `trace_tool stats <trace>` subcommand and
//! the `--metrics-out <path>` flag on the figure binaries emit the same
//! schema from the command line.
//!
//! ## Querying
//!
//! The [`query`] module answers questions about a finished trace without
//! fully expanding its grammar: [`TraceIndex`] gives O(depth) random
//! access to the i-th call of any rank, [`CallIterator`] streams
//! `skip`/`take` windows in constant memory, and [`QueryEngine`] computes
//! per-signature call counts, the send/recv communication matrix, and
//! per-signature aggregate time by evaluating each grammar rule once.
//! Query work is timed under two dedicated metric stages (`index-build`,
//! `query`), and `trace_tool` exposes it as the `query`, `slice`, and
//! `matrix` subcommands.
//!
//! ## Streaming ingest
//!
//! The batch pipeline above holds every rank's piece until a
//! finalize-time binomial merge. The [`ingest`] module inverts that:
//! an [`IncrementalMerger`](merge::IncrementalMerger) folds grammar
//! segments into one merged state *as they arrive* (canonically
//! renumbering at finalize so the result is byte-identical to the batch
//! merge), and an [`IngestSession`](ingest::IngestSession) multiplexes
//! many concurrent jobs over sharded worker threads with bounded,
//! backpressured queues and crash-safe container spill. Attach a rank
//! to a session with [`PilgrimTracer::with_segment_sink`]: the governor's
//! sealed segments then stream out mid-run instead of accumulating, and
//! finalize pushes the final segment plus a
//! [`RankCompletion`](merge::RankCompletion) instead of merging. The
//! `pilgrimd` binary in `pilgrim-bench` is the collector built on this
//! API.
//!
//! ## Errors
//!
//! Every fallible decoder returns `Result<_, `[`DecodeError`]`>` —
//! [`GlobalTrace::decode`], [`Cst::decode`](cst::Cst::decode), and
//! `FlatGrammar::decode` in `pilgrim_sequitur` — reporting *why* and at
//! which byte offset a malformed buffer was rejected (truncation, bad
//! rule references, cyclic rule graphs, trailing bytes, impossible
//! counts). The old `Option`-returning `deserialize` entry points have
//! been removed, as have the one-release `#[deprecated]` batch-merge
//! wrappers — the batch merge has a single entry point,
//! [`merge::merge`]`(ctx, piece, &MergeOptions) -> MergeOutcome`.
//!
//! ## Crash recovery
//!
//! With [`IngestConfig::wal`](ingest::IngestConfig) enabled the session
//! write-ahead-logs every stream message per shard ([`wal`]), workers run
//! under panic isolation with bounded retry and poison-segment
//! quarantine, and [`IngestSession::recover`](ingest::IngestSession)
//! ([`recover`]) rebuilds interrupted jobs after a crash — replaying WALs
//! into fresh [`IncrementalMerger`](merge::IncrementalMerger)s and
//! salvaging torn spill containers — classifying each job as
//! `Recovered` / `Partial` / `Lost`. Faults (worker panics, torn spill
//! and WAL writes, disk-full, stalled ranks) are injected
//! deterministically through a seeded
//! [`IngestFaultPlan`](ingest_fault::IngestFaultPlan).

pub mod auth;
pub mod avl;
pub mod checkpoint;
pub mod cst;
pub mod decode;
pub mod encode;
pub mod error;
pub mod export;
pub mod governor;
pub mod idpool;
pub mod ingest;
pub mod ingest_fault;
pub mod memtracker;
pub mod merge;
pub mod metrics;
pub mod net;
pub mod net_fault;
pub mod nondet;
pub mod query;
pub mod recover;
pub mod replay;
pub mod rr;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod tracer;
pub mod wal;

pub use auth::{challenge_response, session_key, AuthKey, MacState, MAC_LEN, NONCE_LEN};
pub use checkpoint::{decode_checkpoint, encode_checkpoint, Checkpoint};
pub use cst::{Cst, SigStats};
pub use decode::{
    decode_rank_calls, verify_lossless, verify_lossless_with, SalvageReport, VerifyReport,
};
pub use encode::{decode_signature, EncodedArg, EncodedCall, EncoderConfig, RankCode};
pub use error::DecodeError;
pub use export::{
    format_arg, is_container, to_signature_listing, to_text, write_container, CONTAINER_MAGIC,
    CONTAINER_VERSION,
};
pub use governor::{Component, ComponentBytes, DegradationEvent, DegradationStage, Governor};
pub use ingest::{
    IngestConfig, IngestError, IngestSession, IngestStats, JobDesc, JobHandle, JobId, JobOutcome,
    RetryPolicy, SegmentSink,
};
pub use ingest_fault::IngestFaultPlan;
pub use merge::{
    merge, IncrementalMerger, LocalPiece, MergeError, MergeOptions, MergeOutcome, MergePolicy,
    RankCompletion, SegmentError, TraceSegment,
};
pub use metrics::{MetricsRegistry, MetricsReport, Stage, StageGuard};
pub use net::{
    serve, NetClient, NetClientConfig, NetClientStats, NetJobHandle, NetJobOutcome,
    NetServerConfig, NetServerStats, ServeHandle, NET_MAGIC, NET_VERSION,
};
pub use net_fault::{stable_job_id, AdversaryKind, AdversaryPlan, NetFaultPlan, ADVERSARY_KINDS};
pub use nondet::{NondetEvent, NondetLog};
pub use query::{
    CallIterator, CommMatrix, QueryEngine, SigCounts, SignatureSummary, TermCursor, TraceIndex,
};
pub use recover::{RecoveredJob, RecoveryReport, RecoverySource, RecoveryState};
pub use replay::{partial_replay_report, replay, replay_and_retrace, PartialReplayReport};
pub use rr::{
    first_divergence, minimize, record, record_faulty, replay_directed, replay_strict, Divergence,
    MinimizeError, MinimizeResult, StrictReplay,
};
pub use stats::OverheadStats;
pub use timing::TimingCompressor;
pub use trace::{
    FidelityReport, GlobalTrace, RankStatus, SizeReport, TraceCompleteness, RANK_MAP_NONE,
};
pub use tracer::{CapturedCall, FinalizeOutput, PilgrimConfig, PilgrimTracer, TimingMode};
