//! # Pilgrim: scalable and (near) lossless MPI tracing
//!
//! A Rust reproduction of *Pilgrim: Scalable and (near) Lossless MPI
//! Tracing* (Wang, Balaji, Snir — SC '21), built on the `mpi-sim`
//! substrate's PMPI-equivalent tracing seam.
//!
//! Pilgrim records **every** MPI call with **all** of its arguments and
//! still produces tiny traces by exploiting the regularity of MPI
//! programs at three levels:
//!
//! 1. **Call signature table (CST)** — each distinct
//!    `(function, encoded arguments)` tuple is stored once and becomes a
//!    grammar terminal. Opaque handles are replaced by symbolic ids
//!    ([`memtracker`], [`idpool`]); src/dst ranks may be stored relative
//!    to the caller so stencil exchanges collapse to one signature.
//! 2. **Context-free grammar (CFG)** — the per-rank terminal sequence is
//!    compressed online by the optimized Sequitur algorithm
//!    (`pilgrim_sequitur`), whose repetition counts store a loop of `N`
//!    identical iterations in O(1) space.
//! 3. **Inter-process merge** — at finalize, CSTs are globally
//!    deduplicated and per-rank grammars merged pairwise with an identity
//!    check; SPMD programs commonly produce only a handful of unique
//!    grammars, making the merged trace near constant in the rank count.
//!
//! ## Quick start
//!
//! ```
//! use mpi_sim::{World, WorldConfig};
//! use mpi_sim::datatype::BasicType;
//! use pilgrim::{PilgrimTracer, PilgrimConfig};
//!
//! let cfg = WorldConfig::new(4);
//! let mut tracers = World::run(
//!     &cfg,
//!     |rank| PilgrimTracer::new(rank, PilgrimConfig::default()),
//!     |env| {
//!         let world = env.comm_world();
//!         let dt = env.basic(BasicType::Double);
//!         let buf = env.malloc(80);
//!         for _ in 0..100 {
//!             env.bcast(buf, 10, dt, 0, world);
//!         }
//!     },
//! );
//! let trace = tracers[0].take_global_trace().expect("rank 0 holds the trace");
//! assert_eq!(trace.nranks, 4);
//! // 400+ calls compress into a few hundred bytes.
//! assert!(trace.size_bytes() < 1000);
//! let calls = trace.decode_rank(2);
//! assert_eq!(calls.len() as u64, trace.rank_lengths[2]);
//! ```

pub mod avl;
pub mod cst;
pub mod decode;
pub mod encode;
pub mod export;
pub mod idpool;
pub mod memtracker;
pub mod merge;
pub mod replay;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod tracer;

pub use cst::{Cst, SigStats};
pub use decode::{decode_rank_calls, verify_lossless, VerifyReport};
pub use encode::{decode_signature, EncodedArg, EncodedCall, EncoderConfig, RankCode};
pub use export::{to_signature_listing, to_text};
pub use merge::LocalPiece;
pub use replay::{replay, replay_and_retrace};
pub use stats::OverheadStats;
pub use timing::TimingCompressor;
pub use trace::{GlobalTrace, SizeReport};
pub use tracer::{CapturedCall, PilgrimConfig, PilgrimTracer, TimingMode};
