//! Trace decoding, lossless verification, and the checksummed-container
//! readers.
//!
//! The paper validates Pilgrim by decompressing traces and comparing them
//! against the uncompressed record stream ("we can check correctness by
//! comparing uncompressed traces to compressed next decompressed traces",
//! §4). [`decode_rank_calls`] expands a merged trace back into per-call
//! argument lists; [`verify_lossless`] checks a trace against a reference
//! capture taken during tracing.
//!
//! [`GlobalTrace::decode_container`] reads the `PGC1` container written
//! by [`crate::export::write_container`], verifying every section's CRC32
//! before trusting its payload. [`GlobalTrace::decode_salvage`] reads the
//! same format best-effort: any rank or timing grammar whose section
//! fails its checksum is dropped (and recorded in the returned
//! [`SalvageReport`] and the trace's completeness manifest) while every
//! clean section is recovered intact.

use std::collections::{HashMap, HashSet};

use mpi_sim::hooks::Arg;
use mpi_sim::FuncId;
use pilgrim_sequitur::{decode_varint, DecodeError, FlatGrammar};

use crate::cst::Cst;
use crate::encode::{decode_signature, EncodedArg, EncodedCall, EncoderConfig};
use crate::export::{
    crc32, is_container, section_name, CONTAINER_MAGIC, CONTAINER_VERSION, SEC_CST, SEC_DURATION,
    SEC_GRAMMAR, SEC_INTERVAL, SEC_META, SEC_NONDET, SEC_RANK,
};
use crate::governor::DegradationEvent;
use crate::metrics::MetricsRegistry;
use crate::nondet::NondetLog;
use crate::query::{CallIterator, TraceIndex};
use crate::trace::{GlobalTrace, RankStatus, TraceCompleteness, RANK_MAP_NONE};
use crate::tracer::CapturedCall;

/// Decodes the call behind one grammar terminal. A terminal beyond the
/// CST or a signature whose bytes do not parse is
/// [`DecodeError::BadSignature`] — a corrupted table surfaces as `Err`,
/// never a panic.
pub fn decode_term_call(trace: &GlobalTrace, term: u32) -> Result<EncodedCall, DecodeError> {
    if term as usize >= trace.cst.len() {
        return Err(DecodeError::BadSignature { term });
    }
    decode_signature(trace.cst.signature(term)).ok_or(DecodeError::BadSignature { term })
}

/// Decodes one rank's full call sequence from a merged trace.
pub fn decode_rank_calls(
    trace: &GlobalTrace,
    rank: usize,
) -> Result<Vec<EncodedCall>, DecodeError> {
    trace.decode_rank(rank).into_iter().map(|term| decode_term_call(trace, term)).collect()
}

/// Verification statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct VerifyReport {
    pub calls_checked: u64,
    pub args_checked: u64,
}

/// Verifies that the merged trace reproduces the reference capture for
/// every rank: same call sequence, same function ids, and every
/// non-opaque argument recoverable exactly (ranks via relative decoding);
/// opaque communicator references must be referentially consistent.
pub fn verify_lossless(
    trace: &GlobalTrace,
    refs: &[Vec<CapturedCall>],
) -> Result<VerifyReport, String> {
    verify_lossless_with(trace, refs, &MetricsRegistry::default())
}

/// [`verify_lossless`] with metrics: verification streams calls through a
/// [`CallIterator`] — one decoded call live at a time instead of the old
/// full `decode_all_ranks` materialization — and records the
/// `verify.peak_materialized_calls` gauge as proof of the memory win.
pub fn verify_lossless_with(
    trace: &GlobalTrace,
    refs: &[Vec<CapturedCall>],
    metrics: &MetricsRegistry,
) -> Result<VerifyReport, String> {
    if refs.len() != trace.nranks {
        return Err(format!("trace has {} ranks, reference has {}", trace.nranks, refs.len()));
    }
    let index = TraceIndex::build_with_metrics(trace, metrics);
    let mut report = VerifyReport::default();
    let mut peak_calls = 0u64;
    for (rank, reference) in refs.iter().enumerate() {
        let decoded_len = trace.rank_lengths.get(rank).copied().unwrap_or(0);
        if decoded_len != reference.len() as u64 {
            return Err(format!(
                "rank {rank}: decoded {decoded_len} calls, reference has {}",
                reference.len()
            ));
        }
        // Referential consistency for communicator symbols, plus the
        // per-request relative bases the tracer used for statuses.
        let mut comm_map: HashMap<u64, u32> = HashMap::new();
        let mut freed_comms: HashSet<u32> = HashSet::new();
        let mut req_base: HashMap<u64, i64> = HashMap::new();
        let calls = CallIterator::new(trace, &index, rank);
        for (i, (decoded, cap)) in calls.zip(reference).enumerate() {
            let call =
                decoded.map_err(|_| format!("rank {rank} call {i}: undecodable signature"))?;
            peak_calls = peak_calls.max(1);
            if call.func != cap.rec.func.id() {
                return Err(format!(
                    "rank {rank} call {i}: func {} != expected {}",
                    call.func,
                    cap.rec.func.id()
                ));
            }
            if call.args.len() != cap.rec.args.len() {
                return Err(format!(
                    "rank {rank} call {i} ({:?}): {} args decoded, {} expected",
                    cap.rec.func,
                    call.args.len(),
                    cap.rec.args.len()
                ));
            }
            let bases = status_bases(&cap.rec, cap.caller_rank, &req_base);
            let mut status_idx = 0usize;
            for (j, (dec, raw)) in call.args.iter().zip(&cap.rec.args).enumerate() {
                check_arg(
                    dec,
                    raw,
                    cap,
                    rank,
                    i,
                    j,
                    &mut comm_map,
                    &mut freed_comms,
                    &cap.rec.func,
                    &bases,
                    &mut status_idx,
                )?;
                report.args_checked += 1;
            }
            track_requests(&cap.rec, cap.caller_rank, &mut req_base);
            report.calls_checked += 1;
        }
    }
    // Streaming holds at most one decoded call; the old path's peak was
    // the whole trace (`calls_checked`).
    metrics.set_gauge("verify.peak_materialized_calls", peak_calls);
    Ok(report)
}

/// Mirrors the tracer's per-request status bases using the reference
/// capture's raw request ids.
fn status_bases(
    rec: &mpi_sim::CallRec,
    caller_rank: i64,
    req_base: &HashMap<u64, i64>,
) -> Vec<i64> {
    let look = |raw: u64| -> i64 { req_base.get(&raw).copied().unwrap_or(caller_rank) };
    let arr = |a: &Arg| -> Vec<u64> {
        match a {
            Arg::RequestArr(v) => v.clone(),
            _ => Vec::new(),
        }
    };
    let int = |a: &Arg| -> i64 {
        match a {
            Arg::Int(v) => *v,
            _ => 0,
        }
    };
    match rec.func {
        FuncId::Wait | FuncId::Test => match rec.args.first() {
            Some(Arg::Request(r)) if *r != u64::MAX => vec![look(*r)],
            _ => vec![caller_rank],
        },
        FuncId::Waitall | FuncId::Testall => arr(&rec.args[1])
            .into_iter()
            .map(|r| if r == u64::MAX { caller_rank } else { look(r) })
            .collect(),
        FuncId::Waitany => {
            let idx = int(&rec.args[2]);
            if idx >= 0 {
                vec![look(arr(&rec.args[1])[idx as usize])]
            } else {
                vec![caller_rank]
            }
        }
        FuncId::Testany => {
            let idx = int(&rec.args[2]);
            if int(&rec.args[3]) == 1 && idx >= 0 {
                vec![look(arr(&rec.args[1])[idx as usize])]
            } else {
                vec![caller_rank]
            }
        }
        FuncId::Waitsome | FuncId::Testsome => {
            let reqs = arr(&rec.args[1]);
            match &rec.args[3] {
                Arg::IntArr(idx) => idx.iter().map(|&i| look(reqs[i as usize])).collect(),
                _ => vec![],
            }
        }
        _ => vec![],
    }
}

/// Tracks request creation so later statuses use the right base.
fn track_requests(rec: &mpi_sim::CallRec, caller_rank: i64, req_base: &mut HashMap<u64, i64>) {
    let creates = matches!(
        rec.func,
        FuncId::Isend
            | FuncId::Ibsend
            | FuncId::Issend
            | FuncId::Irsend
            | FuncId::Irecv
            | FuncId::Ibarrier
            | FuncId::Iallreduce
            | FuncId::CommIdup
    );
    if creates {
        if let Some(Arg::Request(raw)) =
            rec.args.iter().rev().find(|a| matches!(a, Arg::Request(_)))
        {
            req_base.insert(*raw, caller_rank);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_arg(
    dec: &EncodedArg,
    raw: &Arg,
    cap: &CapturedCall,
    rank: usize,
    call: usize,
    argi: usize,
    comm_map: &mut HashMap<u64, u32>,
    freed_comms: &mut HashSet<u32>,
    func: &FuncId,
    bases: &[i64],
    status_idx: &mut usize,
) -> Result<(), String> {
    let fail = |msg: String| Err(format!("rank {rank} call {call} ({func:?}) arg {argi}: {msg}"));
    match (dec, raw) {
        (EncodedArg::Int(d), Arg::Int(r)) => {
            if d != r {
                return fail(format!("int {d} != {r}"));
            }
        }
        (EncodedArg::Rank(code), Arg::Rank(r)) => {
            let abs = code.absolutize(cap.caller_rank);
            if abs != *r as i64 {
                return fail(format!("rank {abs} != {r}"));
            }
        }
        (EncodedArg::Tag(d), Arg::Tag(r)) => {
            // Relative-aux tags decode back through the caller rank.
            if *d != *r as i64 && *d + cap.caller_rank != *r as i64 {
                return fail(format!("tag {d} != {r}"));
            }
        }
        (EncodedArg::Comm(sym), Arg::Comm(h)) => {
            // Deferred (idup) and undefined markers are exempt.
            if *sym == u64::MAX || *sym == u64::MAX - 2 {
                return Ok(());
            }
            match comm_map.get(sym) {
                Some(&prev) if prev == *h => {}
                Some(&prev) if freed_comms.contains(&prev) => {
                    comm_map.insert(*sym, *h);
                }
                Some(&prev) => {
                    return fail(format!("comm sym {sym} maps to {prev} and {h}"));
                }
                None => {
                    comm_map.insert(*sym, *h);
                }
            }
            if *func == FuncId::CommFree {
                freed_comms.insert(*h);
            }
        }
        (EncodedArg::Datatype(_), Arg::Datatype(_)) => {}
        (EncodedArg::Op(d), Arg::Op(r)) => {
            if d != r {
                return fail(format!("op {d} != {r}"));
            }
        }
        (EncodedArg::Group(_), Arg::Group(_)) => {}
        (EncodedArg::Request(_), Arg::Request(_)) => {}
        (EncodedArg::RequestArr(d), Arg::RequestArr(r)) => {
            if d.len() != r.len() {
                return fail(format!("request array {} != {}", d.len(), r.len()));
            }
            for (ds, rs) in d.iter().zip(r) {
                if ds.is_none() != (*rs == u64::MAX) {
                    return fail("request-null pattern mismatch".into());
                }
            }
        }
        (EncodedArg::Ptr { .. }, Arg::Ptr(_)) => {}
        (EncodedArg::Status { source, tag }, Arg::Status { source: rs, tag: rt }) => {
            let base = bases.get(*status_idx).copied().unwrap_or(cap.caller_rank);
            *status_idx += 1;
            if source.absolutize(base) != *rs as i64 {
                return fail(format!("status source {source:?} != {rs}"));
            }
            if *tag != *rt as i64 {
                return fail(format!("status tag {tag} != {rt}"));
            }
        }
        (EncodedArg::StatusArr(d), Arg::StatusArr(r)) => {
            if d.len() != r.len() {
                return fail(format!("status array {} != {}", d.len(), r.len()));
            }
            for ((src, tag), (rs, rt)) in d.iter().zip(r) {
                let base = bases.get(*status_idx).copied().unwrap_or(cap.caller_rank);
                *status_idx += 1;
                if src.absolutize(base) != *rs as i64 || *tag != *rt as i64 {
                    return fail("status array entry mismatch".into());
                }
            }
        }
        (EncodedArg::IntArr(d), Arg::IntArr(r)) => {
            if d != r {
                return fail(format!("int array {d:?} != {r:?}"));
            }
        }
        (EncodedArg::Color(d), Arg::Color(r)) => {
            if *d != *r as i64 && *d + cap.caller_rank != *r as i64 {
                return fail(format!("color {d} != {r}"));
            }
        }
        (EncodedArg::Key(d), Arg::Key(r)) => {
            if *d != *r as i64 && *d + cap.caller_rank != *r as i64 {
                return fail(format!("key {d} != {r}"));
            }
        }
        (EncodedArg::Str(d), Arg::Str(r)) => {
            if d != r {
                return fail(format!("string {d:?} != {r:?}"));
            }
        }
        (d, r) => return fail(format!("kind mismatch: decoded {d:?}, raw {r:?}")),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// PGC1 container readers (strict and salvage).
// ---------------------------------------------------------------------

/// What [`GlobalTrace::decode_salvage`] had to give up on: indices of
/// timing grammars and ranks whose container sections failed their
/// checksum, plus ranks that kept their call data but lost their timing
/// grammar to a corrupt DURATION/INTERVAL section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Duration grammars replaced by empty placeholders.
    pub skipped_duration_grammars: Vec<usize>,
    /// Interval grammars replaced by empty placeholders.
    pub skipped_interval_grammars: Vec<usize>,
    /// Ranks whose RANK section was corrupt: call span inferred, timing
    /// maps and degradation events lost.
    pub skipped_ranks: Vec<usize>,
    /// Ranks whose own section was clean but whose timing grammar was in
    /// a corrupt section.
    pub timing_stripped_ranks: Vec<usize>,
    /// The trailing `PGND` nondeterminism log was present but corrupt and
    /// had to be dropped: the calls replay, but no longer deterministically.
    pub nondet_dropped: bool,
}

impl SalvageReport {
    /// True when nothing was skipped (the container decoded losslessly).
    pub fn is_clean(&self) -> bool {
        self.skipped_duration_grammars.is_empty()
            && self.skipped_interval_grammars.is_empty()
            && self.skipped_ranks.is_empty()
            && self.timing_stripped_ranks.is_empty()
            && !self.nondet_dropped
    }
}

/// One framed section: `kind`, payload-length varint, payload, CRC32-LE.
struct RawSection<'a> {
    kind: u8,
    kind_off: usize,
    payload_off: usize,
    payload: &'a [u8],
    crc_ok: bool,
}

fn read_section<'a>(buf: &'a [u8], pos: &mut usize) -> Result<RawSection<'a>, DecodeError> {
    let kind_off = *pos;
    let kind =
        *buf.get(*pos).ok_or(DecodeError::Truncated { what: "section kind", offset: kind_off })?;
    *pos += 1;
    let len_off = *pos;
    let len = decode_varint(buf, pos)? as usize;
    // The payload plus its 4 checksum bytes must fit in the buffer; a
    // flipped length bit that claims more is corruption, not a section.
    if len.saturating_add(4) > buf.len().saturating_sub(*pos) {
        return Err(DecodeError::Corrupt { what: "section length", offset: len_off });
    }
    let payload_off = *pos;
    let payload = &buf[*pos..*pos + len];
    *pos += len;
    let stored = u32::from_le_bytes([buf[*pos], buf[*pos + 1], buf[*pos + 2], buf[*pos + 3]]);
    *pos += 4;
    Ok(RawSection { kind, kind_off, payload_off, payload, crc_ok: crc32(payload) == stored })
}

/// Checks a section's kind and checksum, for sections that must be intact
/// even under salvage (META, CST, GRAMMAR) and for every section when
/// decoding strictly.
fn require_clean(s: &RawSection<'_>, want: u8) -> Result<(), DecodeError> {
    if s.kind != want {
        return Err(DecodeError::Corrupt { what: "section kind", offset: s.kind_off });
    }
    if !s.crc_ok {
        return Err(DecodeError::BadChecksum {
            section: section_name(want),
            offset: s.payload_off,
        });
    }
    Ok(())
}

/// A fully parsed RANK section.
struct RankRecord {
    length: u64,
    dur_map: u32,
    int_map: u32,
    status: RankStatus,
    events: Vec<DegradationEvent>,
}

/// Decodes a rank-map entry from its +1 on-disk form, bounds-checking
/// non-sentinel indices against the grammar pool.
fn parse_map_entry(
    payload: &[u8],
    pos: &mut usize,
    pool: usize,
    what: &'static str,
) -> Result<u32, DecodeError> {
    let off = *pos;
    match decode_varint(payload, pos)?.checked_sub(1) {
        None => Ok(RANK_MAP_NONE),
        Some(idx) if idx >= pool as u64 => Err(DecodeError::Corrupt { what, offset: off }),
        Some(idx) => Ok(idx as u32),
    }
}

/// Parses a RANK section payload; offsets in errors are relative to the
/// payload (the caller rebases them with [`DecodeError::offset_by`]).
fn parse_rank_payload(payload: &[u8], nd: usize, ni: usize) -> Result<RankRecord, DecodeError> {
    let mut pos = 0usize;
    let length = decode_varint(payload, &mut pos)?;
    let dur_map = parse_map_entry(payload, &mut pos, nd, "duration rank map")?;
    let int_map = parse_map_entry(payload, &mut pos, ni, "interval rank map")?;
    let tag_off = pos;
    let status = match decode_varint(payload, &mut pos)? {
        0 => RankStatus::Merged,
        1 => RankStatus::Lost { round: decode_varint(payload, &mut pos)? as u32 },
        2 => RankStatus::Checkpoint { calls: decode_varint(payload, &mut pos)? },
        3 => RankStatus::Salvaged { calls: decode_varint(payload, &mut pos)? },
        _ => return Err(DecodeError::Corrupt { what: "rank status", offset: tag_off }),
    };
    let count_off = pos;
    let count = decode_varint(payload, &mut pos)? as usize;
    // Each event costs at least four varint bytes.
    if count > payload.len().saturating_sub(pos) / 4 + 1 {
        return Err(DecodeError::Corrupt { what: "event count", offset: count_off });
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(DegradationEvent::decode(payload, &mut pos)?);
    }
    if pos != payload.len() {
        return Err(DecodeError::TrailingBytes { consumed: pos, len: payload.len() });
    }
    Ok(RankRecord { length, dur_map, int_map, status, events })
}

/// Parses the META payload: encoder config byte and four count varints.
fn parse_meta(payload: &[u8]) -> Result<(EncoderConfig, usize, usize, usize, usize), DecodeError> {
    let cfg = EncoderConfig::from_byte(
        *payload.first().ok_or(DecodeError::Truncated { what: "encoder config", offset: 0 })?,
    );
    let mut pos = 1usize;
    let nranks = decode_varint(payload, &mut pos)? as usize;
    let unique = decode_varint(payload, &mut pos)? as usize;
    let nd = decode_varint(payload, &mut pos)? as usize;
    let ni = decode_varint(payload, &mut pos)? as usize;
    if pos != payload.len() {
        return Err(DecodeError::TrailingBytes { consumed: pos, len: payload.len() });
    }
    Ok((cfg, nranks, unique, nd, ni))
}

fn decode_container_inner(
    buf: &[u8],
    salvage: bool,
) -> Result<(GlobalTrace, SalvageReport), DecodeError> {
    if buf.len() < CONTAINER_MAGIC.len() + 1 {
        return Err(DecodeError::Truncated { what: "container header", offset: 0 });
    }
    if !is_container(buf) {
        return Err(DecodeError::Corrupt { what: "container magic", offset: 0 });
    }
    if buf[CONTAINER_MAGIC.len()] != CONTAINER_VERSION {
        return Err(DecodeError::Corrupt {
            what: "container version",
            offset: CONTAINER_MAGIC.len(),
        });
    }
    let mut pos = CONTAINER_MAGIC.len() + 1;
    let mut report = SalvageReport::default();

    // The first three sections must be intact even when salvaging: without
    // the meta counts, the CST, or the merged grammar there is no trace.
    let meta = read_section(buf, &mut pos)?;
    require_clean(&meta, SEC_META)?;
    let (encoder_cfg, nranks, unique_grammars, nd, ni) =
        parse_meta(meta.payload).map_err(|e| e.offset_by(meta.payload_off))?;
    // Every declared section costs at least six framing bytes; counts the
    // buffer cannot hold are corruption (and would over-reserve below).
    let budget = buf.len() / 6 + 1;
    if nranks > budget || nd > budget || ni > budget {
        return Err(DecodeError::Corrupt { what: "meta counts", offset: meta.payload_off });
    }

    let sec = read_section(buf, &mut pos)?;
    require_clean(&sec, SEC_CST)?;
    let mut p = 0usize;
    let cst = Cst::decode(sec.payload, &mut p).map_err(|e| e.offset_by(sec.payload_off))?;
    if p != sec.payload.len() {
        return Err(DecodeError::Corrupt { what: "cst section", offset: sec.payload_off });
    }

    let sec = read_section(buf, &mut pos)?;
    require_clean(&sec, SEC_GRAMMAR)?;
    let (grammar, used) =
        FlatGrammar::decode(sec.payload).map_err(|e| e.offset_by(sec.payload_off))?;
    if used != sec.payload.len() {
        return Err(DecodeError::Corrupt { what: "grammar section", offset: sec.payload_off });
    }

    // Timing grammars: under salvage a corrupt section becomes an empty
    // placeholder (keeping later indices stable); strict mode errors out.
    let mut duration_grammars = Vec::with_capacity(nd);
    let mut interval_grammars = Vec::with_capacity(ni);
    for (kind, pool, out, skipped) in [
        (SEC_DURATION, nd, &mut duration_grammars, &mut report.skipped_duration_grammars),
        (SEC_INTERVAL, ni, &mut interval_grammars, &mut report.skipped_interval_grammars),
    ] {
        for k in 0..pool {
            let sec = read_section(buf, &mut pos)?;
            let parsed = require_clean(&sec, kind).and_then(|()| {
                let (g, used) =
                    FlatGrammar::decode(sec.payload).map_err(|e| e.offset_by(sec.payload_off))?;
                if used != sec.payload.len() {
                    return Err(DecodeError::Corrupt {
                        what: "timing grammar section",
                        offset: sec.payload_off,
                    });
                }
                Ok(g)
            });
            match parsed {
                Ok(g) => out.push(g),
                Err(e) if !salvage => return Err(e),
                Err(_) => {
                    out.push(FlatGrammar::empty());
                    skipped.push(k);
                }
            }
        }
    }

    let mut records: Vec<Option<RankRecord>> = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let sec = read_section(buf, &mut pos)?;
        let parsed = require_clean(&sec, SEC_RANK).and_then(|()| {
            parse_rank_payload(sec.payload, nd, ni).map_err(|e| e.offset_by(sec.payload_off))
        });
        match parsed {
            Ok(rec) => records.push(Some(rec)),
            Err(e) if !salvage => return Err(e),
            Err(_) => {
                records.push(None);
                report.skipped_ranks.push(rank);
            }
        }
    }

    // Optional trailing PGND section: the nondeterminism side-channel of
    // a record/replay recording ([`crate::NondetLog`]). Ordinary traces
    // end at the last RANK section, so pre-existing containers decode
    // unchanged; anything after this point that is not a PGND section is
    // still trailing garbage.
    let mut nondet = None;
    if pos < buf.len() && buf[pos] == SEC_NONDET {
        let parsed = read_section(buf, &mut pos).and_then(|sec| {
            require_clean(&sec, SEC_NONDET)?;
            let log = NondetLog::decode(sec.payload).map_err(|e| e.offset_by(sec.payload_off))?;
            if log.ranks.len() != nranks {
                return Err(DecodeError::Corrupt {
                    what: "nondet rank count",
                    offset: sec.payload_off,
                });
            }
            Ok(log)
        });
        match parsed {
            Ok(log) => nondet = Some(log),
            Err(e) if !salvage => return Err(e),
            Err(_) => {
                // The call data is already recovered; drop the log and
                // record the loss instead of failing the whole salvage.
                report.nondet_dropped = true;
                pos = buf.len();
            }
        }
    }
    if pos != buf.len() {
        return Err(DecodeError::TrailingBytes { consumed: pos, len: buf.len() });
    }

    // A corrupt RANK section lost its call-count varint, but the grammar
    // knows the total: whatever the clean ranks do not account for belongs
    // to the skipped ranks (attributed to the first; the split between
    // several skipped ranks is unknowable).
    let clean_sum: u64 = records.iter().flatten().map(|r| r.length).sum();
    let mut remainder = grammar.expanded_len().saturating_sub(clean_sum);

    let mut rank_lengths = Vec::with_capacity(nranks);
    let mut statuses = Vec::with_capacity(nranks);
    let mut duration_rank_map = Vec::with_capacity(nranks);
    let mut interval_rank_map = Vec::with_capacity(nranks);
    let mut events: Vec<(u32, DegradationEvent)> = Vec::new();
    for (rank, rec) in records.iter().enumerate() {
        match rec {
            Some(rec) => {
                rank_lengths.push(rec.length);
                let mut status = rec.status;
                let mut dur = rec.dur_map;
                let mut int = rec.int_map;
                // A clean rank pointing at a skipped timing grammar loses
                // its timing and is downgraded to Salvaged so the manifest
                // records the loss.
                let dur_gone = dur != RANK_MAP_NONE
                    && report.skipped_duration_grammars.contains(&(dur as usize));
                let int_gone = int != RANK_MAP_NONE
                    && report.skipped_interval_grammars.contains(&(int as usize));
                if dur_gone {
                    dur = RANK_MAP_NONE;
                }
                if int_gone {
                    int = RANK_MAP_NONE;
                }
                if (dur_gone || int_gone) && matches!(status, RankStatus::Merged) {
                    status = RankStatus::Salvaged { calls: rec.length };
                    report.timing_stripped_ranks.push(rank);
                }
                duration_rank_map.push(dur);
                interval_rank_map.push(int);
                statuses.push(status);
                events.extend(rec.events.iter().map(|e| (rank as u32, *e)));
            }
            None => {
                rank_lengths.push(std::mem::take(&mut remainder));
                statuses.push(RankStatus::Salvaged { calls: rank_lengths[rank] });
                duration_rank_map.push(RANK_MAP_NONE);
                interval_rank_map.push(RANK_MAP_NONE);
            }
        }
    }
    // Aggregate-timing traces have no timing grammars and serialize no
    // maps; mirror the flat format so roundtrips compare equal.
    if nd == 0 && ni == 0 {
        duration_rank_map.clear();
        interval_rank_map.clear();
    }
    // Same canonical form the legacy decoder produces: all-Merged
    // collapses to the empty status list even when events are present.
    let all_merged = statuses.iter().all(|s| matches!(s, RankStatus::Merged));
    let completeness = if all_merged && events.is_empty() {
        TraceCompleteness::complete()
    } else {
        TraceCompleteness { ranks: if all_merged { Vec::new() } else { statuses }, events }
    };
    Ok((
        GlobalTrace {
            nranks,
            encoder_cfg,
            cst,
            grammar,
            rank_lengths,
            unique_grammars,
            duration_grammars,
            interval_grammars,
            duration_rank_map,
            interval_rank_map,
            completeness,
            nondet,
        },
        report,
    ))
}

impl GlobalTrace {
    /// Strictly decodes a `PGC1` container written by
    /// [`crate::export::write_container`]: every section's CRC32 must
    /// match ([`DecodeError::BadChecksum`] names the first section that
    /// does not) and every payload must parse completely.
    pub fn decode_container(buf: &[u8]) -> Result<GlobalTrace, DecodeError> {
        decode_container_inner(buf, false).map(|(trace, _)| trace)
    }

    /// Best-effort decode of a `PGC1` container: recovers every rank and
    /// timing grammar whose sections checksum clean, replaces corrupt
    /// timing grammars with empty placeholders, marks ranks with corrupt
    /// sections [`RankStatus::Salvaged`] (their call span inferred from
    /// the merged grammar), and reports what was skipped. Fails only when
    /// the framing, META, CST, or merged-grammar sections are themselves
    /// damaged — without those there is no trace to salvage.
    pub fn decode_salvage(buf: &[u8]) -> Result<(GlobalTrace, SalvageReport), DecodeError> {
        decode_container_inner(buf, true)
    }

    /// Decodes either trace format, sniffing the container magic:
    /// containers go through [`GlobalTrace::decode_container`], anything
    /// else through the legacy flat [`GlobalTrace::decode`].
    pub fn decode_auto(buf: &[u8]) -> Result<GlobalTrace, DecodeError> {
        if is_container(buf) {
            GlobalTrace::decode_container(buf)
        } else {
            GlobalTrace::decode(buf)
        }
    }
}
