//! Trace decoding and lossless verification.
//!
//! The paper validates Pilgrim by decompressing traces and comparing them
//! against the uncompressed record stream ("we can check correctness by
//! comparing uncompressed traces to compressed next decompressed traces",
//! §4). [`decode_rank_calls`] expands a merged trace back into per-call
//! argument lists; [`verify_lossless`] checks a trace against a reference
//! capture taken during tracing.

use std::collections::{HashMap, HashSet};

use mpi_sim::hooks::Arg;
use mpi_sim::FuncId;
use pilgrim_sequitur::DecodeError;

use crate::encode::{decode_signature, EncodedArg, EncodedCall};
use crate::metrics::MetricsRegistry;
use crate::query::{CallIterator, TraceIndex};
use crate::trace::GlobalTrace;
use crate::tracer::CapturedCall;

/// Decodes the call behind one grammar terminal. A terminal beyond the
/// CST or a signature whose bytes do not parse is
/// [`DecodeError::BadSignature`] — a corrupted table surfaces as `Err`,
/// never a panic.
pub fn decode_term_call(trace: &GlobalTrace, term: u32) -> Result<EncodedCall, DecodeError> {
    if term as usize >= trace.cst.len() {
        return Err(DecodeError::BadSignature { term });
    }
    decode_signature(trace.cst.signature(term)).ok_or(DecodeError::BadSignature { term })
}

/// Decodes one rank's full call sequence from a merged trace.
pub fn decode_rank_calls(
    trace: &GlobalTrace,
    rank: usize,
) -> Result<Vec<EncodedCall>, DecodeError> {
    trace.decode_rank(rank).into_iter().map(|term| decode_term_call(trace, term)).collect()
}

/// Verification statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct VerifyReport {
    pub calls_checked: u64,
    pub args_checked: u64,
}

/// Verifies that the merged trace reproduces the reference capture for
/// every rank: same call sequence, same function ids, and every
/// non-opaque argument recoverable exactly (ranks via relative decoding);
/// opaque communicator references must be referentially consistent.
pub fn verify_lossless(
    trace: &GlobalTrace,
    refs: &[Vec<CapturedCall>],
) -> Result<VerifyReport, String> {
    verify_lossless_with(trace, refs, &MetricsRegistry::default())
}

/// [`verify_lossless`] with metrics: verification streams calls through a
/// [`CallIterator`] — one decoded call live at a time instead of the old
/// full `decode_all_ranks` materialization — and records the
/// `verify.peak_materialized_calls` gauge as proof of the memory win.
pub fn verify_lossless_with(
    trace: &GlobalTrace,
    refs: &[Vec<CapturedCall>],
    metrics: &MetricsRegistry,
) -> Result<VerifyReport, String> {
    if refs.len() != trace.nranks {
        return Err(format!("trace has {} ranks, reference has {}", trace.nranks, refs.len()));
    }
    let index = TraceIndex::build_with_metrics(trace, metrics);
    let mut report = VerifyReport::default();
    let mut peak_calls = 0u64;
    for (rank, reference) in refs.iter().enumerate() {
        let decoded_len = trace.rank_lengths.get(rank).copied().unwrap_or(0);
        if decoded_len != reference.len() as u64 {
            return Err(format!(
                "rank {rank}: decoded {decoded_len} calls, reference has {}",
                reference.len()
            ));
        }
        // Referential consistency for communicator symbols, plus the
        // per-request relative bases the tracer used for statuses.
        let mut comm_map: HashMap<u64, u32> = HashMap::new();
        let mut freed_comms: HashSet<u32> = HashSet::new();
        let mut req_base: HashMap<u64, i64> = HashMap::new();
        let calls = CallIterator::new(trace, &index, rank);
        for (i, (decoded, cap)) in calls.zip(reference).enumerate() {
            let call =
                decoded.map_err(|_| format!("rank {rank} call {i}: undecodable signature"))?;
            peak_calls = peak_calls.max(1);
            if call.func != cap.rec.func.id() {
                return Err(format!(
                    "rank {rank} call {i}: func {} != expected {}",
                    call.func,
                    cap.rec.func.id()
                ));
            }
            if call.args.len() != cap.rec.args.len() {
                return Err(format!(
                    "rank {rank} call {i} ({:?}): {} args decoded, {} expected",
                    cap.rec.func,
                    call.args.len(),
                    cap.rec.args.len()
                ));
            }
            let bases = status_bases(&cap.rec, cap.caller_rank, &req_base);
            let mut status_idx = 0usize;
            for (j, (dec, raw)) in call.args.iter().zip(&cap.rec.args).enumerate() {
                check_arg(
                    dec,
                    raw,
                    cap,
                    rank,
                    i,
                    j,
                    &mut comm_map,
                    &mut freed_comms,
                    &cap.rec.func,
                    &bases,
                    &mut status_idx,
                )?;
                report.args_checked += 1;
            }
            track_requests(&cap.rec, cap.caller_rank, &mut req_base);
            report.calls_checked += 1;
        }
    }
    // Streaming holds at most one decoded call; the old path's peak was
    // the whole trace (`calls_checked`).
    metrics.set_gauge("verify.peak_materialized_calls", peak_calls);
    Ok(report)
}

/// Mirrors the tracer's per-request status bases using the reference
/// capture's raw request ids.
fn status_bases(
    rec: &mpi_sim::CallRec,
    caller_rank: i64,
    req_base: &HashMap<u64, i64>,
) -> Vec<i64> {
    let look = |raw: u64| -> i64 { req_base.get(&raw).copied().unwrap_or(caller_rank) };
    let arr = |a: &Arg| -> Vec<u64> {
        match a {
            Arg::RequestArr(v) => v.clone(),
            _ => Vec::new(),
        }
    };
    let int = |a: &Arg| -> i64 {
        match a {
            Arg::Int(v) => *v,
            _ => 0,
        }
    };
    match rec.func {
        FuncId::Wait | FuncId::Test => match rec.args.first() {
            Some(Arg::Request(r)) if *r != u64::MAX => vec![look(*r)],
            _ => vec![caller_rank],
        },
        FuncId::Waitall | FuncId::Testall => arr(&rec.args[1])
            .into_iter()
            .map(|r| if r == u64::MAX { caller_rank } else { look(r) })
            .collect(),
        FuncId::Waitany => {
            let idx = int(&rec.args[2]);
            if idx >= 0 {
                vec![look(arr(&rec.args[1])[idx as usize])]
            } else {
                vec![caller_rank]
            }
        }
        FuncId::Testany => {
            let idx = int(&rec.args[2]);
            if int(&rec.args[3]) == 1 && idx >= 0 {
                vec![look(arr(&rec.args[1])[idx as usize])]
            } else {
                vec![caller_rank]
            }
        }
        FuncId::Waitsome | FuncId::Testsome => {
            let reqs = arr(&rec.args[1]);
            match &rec.args[3] {
                Arg::IntArr(idx) => idx.iter().map(|&i| look(reqs[i as usize])).collect(),
                _ => vec![],
            }
        }
        _ => vec![],
    }
}

/// Tracks request creation so later statuses use the right base.
fn track_requests(rec: &mpi_sim::CallRec, caller_rank: i64, req_base: &mut HashMap<u64, i64>) {
    let creates = matches!(
        rec.func,
        FuncId::Isend
            | FuncId::Ibsend
            | FuncId::Issend
            | FuncId::Irsend
            | FuncId::Irecv
            | FuncId::Ibarrier
            | FuncId::Iallreduce
            | FuncId::CommIdup
    );
    if creates {
        if let Some(Arg::Request(raw)) =
            rec.args.iter().rev().find(|a| matches!(a, Arg::Request(_)))
        {
            req_base.insert(*raw, caller_rank);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_arg(
    dec: &EncodedArg,
    raw: &Arg,
    cap: &CapturedCall,
    rank: usize,
    call: usize,
    argi: usize,
    comm_map: &mut HashMap<u64, u32>,
    freed_comms: &mut HashSet<u32>,
    func: &FuncId,
    bases: &[i64],
    status_idx: &mut usize,
) -> Result<(), String> {
    let fail = |msg: String| Err(format!("rank {rank} call {call} ({func:?}) arg {argi}: {msg}"));
    match (dec, raw) {
        (EncodedArg::Int(d), Arg::Int(r)) => {
            if d != r {
                return fail(format!("int {d} != {r}"));
            }
        }
        (EncodedArg::Rank(code), Arg::Rank(r)) => {
            let abs = code.absolutize(cap.caller_rank);
            if abs != *r as i64 {
                return fail(format!("rank {abs} != {r}"));
            }
        }
        (EncodedArg::Tag(d), Arg::Tag(r)) => {
            // Relative-aux tags decode back through the caller rank.
            if *d != *r as i64 && *d + cap.caller_rank != *r as i64 {
                return fail(format!("tag {d} != {r}"));
            }
        }
        (EncodedArg::Comm(sym), Arg::Comm(h)) => {
            // Deferred (idup) and undefined markers are exempt.
            if *sym == u64::MAX || *sym == u64::MAX - 2 {
                return Ok(());
            }
            match comm_map.get(sym) {
                Some(&prev) if prev == *h => {}
                Some(&prev) if freed_comms.contains(&prev) => {
                    comm_map.insert(*sym, *h);
                }
                Some(&prev) => {
                    return fail(format!("comm sym {sym} maps to {prev} and {h}"));
                }
                None => {
                    comm_map.insert(*sym, *h);
                }
            }
            if *func == FuncId::CommFree {
                freed_comms.insert(*h);
            }
        }
        (EncodedArg::Datatype(_), Arg::Datatype(_)) => {}
        (EncodedArg::Op(d), Arg::Op(r)) => {
            if d != r {
                return fail(format!("op {d} != {r}"));
            }
        }
        (EncodedArg::Group(_), Arg::Group(_)) => {}
        (EncodedArg::Request(_), Arg::Request(_)) => {}
        (EncodedArg::RequestArr(d), Arg::RequestArr(r)) => {
            if d.len() != r.len() {
                return fail(format!("request array {} != {}", d.len(), r.len()));
            }
            for (ds, rs) in d.iter().zip(r) {
                if ds.is_none() != (*rs == u64::MAX) {
                    return fail("request-null pattern mismatch".into());
                }
            }
        }
        (EncodedArg::Ptr { .. }, Arg::Ptr(_)) => {}
        (EncodedArg::Status { source, tag }, Arg::Status { source: rs, tag: rt }) => {
            let base = bases.get(*status_idx).copied().unwrap_or(cap.caller_rank);
            *status_idx += 1;
            if source.absolutize(base) != *rs as i64 {
                return fail(format!("status source {source:?} != {rs}"));
            }
            if *tag != *rt as i64 {
                return fail(format!("status tag {tag} != {rt}"));
            }
        }
        (EncodedArg::StatusArr(d), Arg::StatusArr(r)) => {
            if d.len() != r.len() {
                return fail(format!("status array {} != {}", d.len(), r.len()));
            }
            for ((src, tag), (rs, rt)) in d.iter().zip(r) {
                let base = bases.get(*status_idx).copied().unwrap_or(cap.caller_rank);
                *status_idx += 1;
                if src.absolutize(base) != *rs as i64 || *tag != *rt as i64 {
                    return fail("status array entry mismatch".into());
                }
            }
        }
        (EncodedArg::IntArr(d), Arg::IntArr(r)) => {
            if d != r {
                return fail(format!("int array {d:?} != {r:?}"));
            }
        }
        (EncodedArg::Color(d), Arg::Color(r)) => {
            if *d != *r as i64 && *d + cap.caller_rank != *r as i64 {
                return fail(format!("color {d} != {r}"));
            }
        }
        (EncodedArg::Key(d), Arg::Key(r)) => {
            if *d != *r as i64 && *d + cap.caller_rank != *r as i64 {
                return fail(format!("key {d} != {r}"));
            }
        }
        (EncodedArg::Str(d), Arg::Str(r)) => {
            if d != r {
                return fail(format!("string {d:?} != {r:?}"));
            }
        }
        (d, r) => return fail(format!("kind mismatch: decoded {d:?}, raw {r:?}")),
    }
    Ok(())
}
