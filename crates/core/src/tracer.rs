//! The Pilgrim tracer: the per-rank PMPI-side state machine that encodes
//! every intercepted call into a signature, grows the CST and CFG online,
//! assigns symbolic ids to every MPI object, and runs the inter-process
//! merge at finalize.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use mpi_sim::funcs::FuncId;
use mpi_sim::hooks::{Arg, CallRec, ToolRequest, TraceCtx, Tracer};
use mpi_sim::{ANY_SOURCE, ANY_TAG, PROC_NULL};
use pilgrim_sequitur::{FlatGrammar, FlatRule, Grammar, Symbol};

use crate::checkpoint::{decode_checkpoint, encode_checkpoint};
use crate::cst::Cst;
use crate::encode::{EncoderConfig, SigWriter};
use crate::governor::{ComponentBytes, DegradationStage, Governor};
use crate::idpool::{IdPool, SigPools};
use crate::ingest::SegmentSink;
use crate::memtracker::MemTracker;
use crate::merge::{self, LocalPiece, MergeError, RankCompletion, TraceSegment};
use crate::metrics::{MetricsRegistry, MetricsReport, Stage};
use crate::nondet::NondetEvent;
use crate::stats::OverheadStats;
use crate::timing::TimingCompressor;
use crate::trace::GlobalTrace;

/// Timing collection mode (§3.2).
#[derive(Debug, Clone, Copy)]
pub enum TimingMode {
    /// Keep only per-signature average durations in the CST (default).
    Aggregate,
    /// Additionally keep lossy per-call durations and intervals, binned
    /// exponentially with the given base (relative error `base - 1`).
    Lossy { base: f64 },
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy)]
pub struct PilgrimConfig {
    pub encoder: EncoderConfig,
    pub timing: TimingMode,
    /// Keep raw records and the terminal sequence for lossless
    /// verification (testing only; costs memory).
    pub capture_reference: bool,
    /// Ablation: use one shared request-id pool instead of the paper's
    /// per-signature pools (§3.4.3) — nondeterministic completion order
    /// then churns ids and breaks signature repetition.
    pub shared_request_pool: bool,
    /// Ablation: skip the identity check before grammar merges (§3.5.2).
    pub merge_identity_check: bool,
    /// Record per-stage timers, counters and byte gauges in the tracer's
    /// [`MetricsRegistry`]; off by default (the hot path then pays only a
    /// branch per call).
    pub metrics: bool,
    /// Snapshot the CST + grammar with the runtime every N traced calls
    /// ([`crate::checkpoint`]); a rank killed mid-run then contributes its
    /// last snapshot to the merged trace instead of vanishing. Off by
    /// default.
    pub checkpoint_interval: Option<u64>,
    /// Per-receive wait budget during a degraded merge, in milliseconds
    /// ([`crate::merge::MergePolicy`]). While the world is healthy the
    /// effective budget is 8x this.
    pub merge_timeout_ms: u64,
    /// Record every nondeterministic resolution (wildcard matches,
    /// wait/test completion choices, probe flags) into a per-rank
    /// [`NondetEvent`] side-channel for deterministic replay
    /// ([`crate::rr`]). Off by default; the harness attaches the
    /// collected events to [`GlobalTrace::nondet`] after the run.
    pub record_nondet: bool,
    /// Caps the tracer's compression working set (CST, grammars, timing,
    /// memory segments, reference capture) at this many bytes. Under
    /// pressure the resource governor degrades in stages — freeze rule
    /// creation, collapse per-call timing to aggregates, seal the grammar
    /// as a segment and restart — instead of growing without bound. `None`
    /// (the default) disables the governor entirely; tracing behavior is
    /// then byte-identical to a build without it.
    pub memory_budget: Option<usize>,
}

impl Default for PilgrimConfig {
    fn default() -> Self {
        PilgrimConfig {
            encoder: EncoderConfig::default(),
            timing: TimingMode::Aggregate,
            capture_reference: false,
            shared_request_pool: false,
            merge_identity_check: true,
            metrics: false,
            checkpoint_interval: None,
            merge_timeout_ms: 800,
            record_nondet: false,
            memory_budget: None,
        }
    }
}

impl PilgrimConfig {
    /// Starts from the defaults; chain the builder methods to customize.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the signature encoder configuration.
    pub fn encoder(mut self, encoder: EncoderConfig) -> Self {
        self.encoder = encoder;
        self
    }

    /// Sets the timing collection mode.
    pub fn timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Keeps raw records for lossless verification (testing only).
    pub fn capture_reference(mut self, on: bool) -> Self {
        self.capture_reference = on;
        self
    }

    /// Ablation: one shared request-id pool instead of per-signature pools.
    pub fn shared_request_pool(mut self, on: bool) -> Self {
        self.shared_request_pool = on;
        self
    }

    /// Ablation: toggles the pre-merge grammar identity check.
    pub fn merge_identity_check(mut self, on: bool) -> Self {
        self.merge_identity_check = on;
        self
    }

    /// Enables the per-stage metrics registry.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Snapshots the CST + grammar every `calls` traced calls so a killed
    /// rank contributes a truncated trace instead of nothing.
    pub fn checkpoint_interval(mut self, calls: u64) -> Self {
        self.checkpoint_interval = Some(calls);
        self
    }

    /// Sets the degraded-merge per-receive wait budget in milliseconds.
    pub fn merge_timeout_ms(mut self, ms: u64) -> Self {
        self.merge_timeout_ms = ms;
        self
    }

    /// Records the nondeterminism side-channel for deterministic replay.
    pub fn record_nondet(mut self, on: bool) -> Self {
        self.record_nondet = on;
        self
    }

    /// Caps the tracer's compression working set at `bytes`
    /// ([`PilgrimConfig::memory_budget`]).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

/// Everything a rank produces at finalize: the merged trace (rank 0
/// only), the rank's metrics snapshot, and its overhead decomposition.
#[derive(Debug)]
pub struct FinalizeOutput {
    /// The merged trace; `Some` only on the rank that held it (rank 0).
    pub trace: Option<GlobalTrace>,
    /// Metrics snapshot, with the trace size decomposition attached when
    /// this rank holds the merged trace.
    pub metrics: MetricsReport,
    /// Wall-clock overhead decomposition.
    pub stats: OverheadStats,
}

/// A reference capture entry for verification.
#[derive(Debug, Clone)]
pub struct CapturedCall {
    pub rec: CallRec,
    /// The caller's rank in the call's communicator at encode time.
    pub caller_rank: i64,
    /// The grammar terminal the call was mapped to.
    pub term: u32,
}

/// Bookkeeping for a live request's symbolic id.
#[derive(Debug, Clone)]
struct ReqEntry {
    sym: u64,
    pool_sig: Vec<u8>,
    comm_rank: i64,
    /// Persistent requests keep their id across completions; only
    /// `MPI_Request_free` releases it.
    persistent: bool,
}

/// The Pilgrim tracer for one rank.
pub struct PilgrimTracer {
    cfg: PilgrimConfig,
    rank: usize,
    cst: Cst,
    grammar: Grammar,
    /// Raw comm handle -> globally consistent symbolic id (§3.3.1).
    comm_ids: HashMap<u32, u64>,
    /// Highest comm symbolic id assigned locally (monotonic).
    comm_high_water: u64,
    /// Pending `MPI_Comm_idup` id all-reduces: (new handle, request).
    pending_idups: Vec<(u32, ToolRequest)>,
    dtype_ids: HashMap<u32, u64>,
    dtype_pool: IdPool,
    group_ids: HashMap<u32, u64>,
    group_pool: IdPool,
    /// Raw request id -> symbolic id bookkeeping (§3.4.3).
    reqs: HashMap<u64, ReqEntry>,
    req_pools: SigPools,
    mem: MemTracker,
    timing: Option<TimingCompressor>,
    /// Resource governor (active only with [`PilgrimConfig::memory_budget`]).
    governor: Governor,
    /// Total traced calls across all segments (the grammar restarts at
    /// each seal, so `grammar.input_len()` only covers the live segment).
    calls: u64,
    /// Sealed grammar segments, serialized with the checkpoint codec and
    /// excluded from the governed working set (modeled spill-to-disk).
    /// Stays empty in streaming mode: sealed segments are pushed to the
    /// sink instead of being retained.
    sealed: Vec<Vec<u8>>,
    /// Streaming seam: when set, sealed segments are pushed out as they
    /// are produced and finalize streams the final segment plus a
    /// completion marker instead of running the batch merge.
    sink: Option<Arc<dyn SegmentSink>>,
    /// Next segment sequence number on the stream.
    stream_seq: u32,
    /// The governor collapsed per-call timing to aggregates mid-run.
    timing_dropped: bool,
    /// Recorded nondeterministic resolutions, keyed by 0-based call
    /// index (only with [`PilgrimConfig::record_nondet`]).
    nondet: BTreeMap<u64, NondetEvent>,
    /// Raw request id -> call index of the wildcard `Irecv` that created
    /// it, until its completion reveals the match.
    wildcard_irecvs: HashMap<u64, u64>,
    metrics: MetricsRegistry,
    stats: OverheadStats,
    captured: Vec<CapturedCall>,
    result: Option<GlobalTrace>,
    merge_error: Option<MergeError>,
    local_size: usize,
    finalized: bool,
}

/// Symbolic-id offset for derived datatypes (predefined handles keep
/// their values, matching the paper's "only the size" contrast: we keep
/// identity for built-ins and pool ids for deriveds).
const DERIVED_DTYPE_BASE: u64 = 16;

impl PilgrimTracer {
    pub fn new(rank: usize, cfg: PilgrimConfig) -> Self {
        let timing = match cfg.timing {
            TimingMode::Aggregate => None,
            TimingMode::Lossy { base } => Some(TimingCompressor::new(base)),
        };
        let mut comm_ids = HashMap::new();
        comm_ids.insert(0, 0); // MPI_COMM_WORLD is id 0 everywhere.
        PilgrimTracer {
            cfg,
            rank,
            cst: Cst::new(),
            grammar: Grammar::new(),
            comm_ids,
            comm_high_water: 0,
            pending_idups: Vec::new(),
            dtype_ids: HashMap::new(),
            dtype_pool: IdPool::new(),
            group_ids: HashMap::new(),
            group_pool: IdPool::new(),
            reqs: HashMap::new(),
            req_pools: SigPools::new(),
            mem: MemTracker::new(),
            timing,
            governor: Governor::new(cfg.memory_budget),
            calls: 0,
            sealed: Vec::new(),
            sink: None,
            stream_seq: 0,
            timing_dropped: false,
            nondet: BTreeMap::new(),
            wildcard_irecvs: HashMap::new(),
            metrics: MetricsRegistry::new(cfg.metrics),
            stats: OverheadStats::default(),
            captured: Vec::new(),
            result: None,
            merge_error: None,
            local_size: 0,
            finalized: false,
        }
    }

    /// Default-configured tracer.
    pub fn with_defaults(rank: usize) -> Self {
        PilgrimTracer::new(rank, PilgrimConfig::default())
    }

    /// Attaches a segment stream: sealed segments are pushed to `sink`
    /// mid-run instead of being retained, and finalize streams the final
    /// segment plus a [`RankCompletion`] instead of running the batch
    /// merge (no rank then holds the merged trace — the collector
    /// driving the sink does). See [`crate::ingest`].
    pub fn with_segment_sink(mut self, sink: Arc<dyn SegmentSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    // ------------------------------------------------------------------
    // Accessors (harness / tests)
    // ------------------------------------------------------------------

    /// The merged trace; `Some` only on rank 0 after finalize.
    pub fn global_trace(&self) -> Option<&GlobalTrace> {
        self.result.as_ref()
    }

    /// Takes everything finalize produced: the merged trace (rank 0), the
    /// rank's metrics snapshot (with the trace size decomposition attached
    /// when this rank holds the trace), and its overhead stats.
    pub fn take_output(&mut self) -> FinalizeOutput {
        let trace = self.result.take();
        let mut metrics = self.metrics.snapshot();
        if let Some(t) = &trace {
            metrics.size = Some(t.size_report());
        }
        FinalizeOutput { trace, metrics, stats: self.stats }
    }

    /// The live metrics registry (enabled via [`PilgrimConfig::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This rank's local CST size (signatures).
    pub fn cst_len(&self) -> usize {
        self.cst.len()
    }

    /// This rank's local (pre-merge) trace size in bytes.
    pub fn local_size_bytes(&self) -> usize {
        self.local_size
    }

    /// Overhead decomposition for this rank.
    pub fn stats(&self) -> OverheadStats {
        self.stats
    }

    /// Reference capture (only populated with `capture_reference`).
    pub fn captured(&self) -> &[CapturedCall] {
        &self.captured
    }

    /// Number of calls traced (across every sealed segment).
    pub fn call_count(&self) -> u64 {
        self.calls
    }

    /// Takes this rank's recorded nondeterministic resolutions, keyed by
    /// 0-based call index (populated only with
    /// [`PilgrimConfig::record_nondet`]). The record harness
    /// ([`crate::rr::record`]) assembles these into the trace's
    /// [`crate::NondetLog`].
    pub fn take_nondet(&mut self) -> BTreeMap<u64, NondetEvent> {
        std::mem::take(&mut self.nondet)
    }

    /// The resource governor: peak byte accounting and the degradation
    /// events applied so far (inactive without a
    /// [`PilgrimConfig::memory_budget`]).
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// Why this rank's own trace missed the merge, if it did (degraded
    /// merges only; `None` after a healthy finalize).
    pub fn merge_error(&self) -> Option<MergeError> {
        self.merge_error
    }

    // ------------------------------------------------------------------
    // Symbolic ids
    // ------------------------------------------------------------------

    fn comm_sym(&mut self, handle: u32) -> u64 {
        if let Some(&id) = self.comm_ids.get(&handle) {
            return id;
        }
        // A communicator used before its id arrived can only be a pending
        // idup (§3.3.1); resolve it now, blocking if necessary — by the
        // time the app uses the comm, every member has deposited.
        if let Some(i) = self.pending_idups.iter().position(|&(h, _)| h == handle) {
            let (h, req) = self.pending_idups.remove(i);
            // Abort-aware bounded wait (a member's death unparks this
            // instead of spinning forever).
            let max = req.wait_complete();
            let sym = max + 1;
            self.comm_high_water = self.comm_high_water.max(sym);
            self.comm_ids.insert(h, sym);
            return sym;
        }
        panic!("communicator handle {handle} has no symbolic id (rank {})", self.rank);
    }

    fn poll_pending_idups(&mut self) {
        let mut i = 0;
        while i < self.pending_idups.len() {
            if let Some(max) = self.pending_idups[i].1.try_complete() {
                let (h, _) = self.pending_idups.remove(i);
                let sym = max + 1;
                self.comm_high_water = self.comm_high_water.max(sym);
                self.comm_ids.insert(h, sym);
            } else {
                i += 1;
            }
        }
    }

    fn assign_comm_id(&mut self, ctx: &TraceCtx<'_>, handle: u32) {
        // Paper §3.3.1: all-reduce the local maxima over the new
        // communicator's members; everyone adopts max + 1.
        let max = ctx.tool_allreduce_max(handle, self.comm_high_water);
        let sym = max + 1;
        self.comm_high_water = sym;
        self.comm_ids.insert(handle, sym);
    }

    fn dtype_sym(&mut self, handle: u32) -> u64 {
        if (handle as u64) < DERIVED_DTYPE_BASE {
            return handle as u64;
        }
        match self.dtype_ids.get(&handle) {
            Some(&id) => id,
            None => {
                let id = DERIVED_DTYPE_BASE + self.dtype_pool.acquire();
                self.dtype_ids.insert(handle, id);
                id
            }
        }
    }

    fn group_sym(&mut self, handle: u32) -> u64 {
        match self.group_ids.get(&handle) {
            Some(&id) => id,
            None => {
                let id = self.group_pool.acquire();
                self.group_ids.insert(handle, id);
                id
            }
        }
    }

    // ------------------------------------------------------------------
    // Request completion semantics
    // ------------------------------------------------------------------

    /// Raw request ids whose completion this record reports.
    fn completed_requests(rec: &CallRec) -> Vec<u64> {
        let arr = |a: &Arg| -> Vec<u64> {
            match a {
                Arg::RequestArr(v) => v.clone(),
                _ => Vec::new(),
            }
        };
        let int = |a: &Arg| -> i64 {
            match a {
                Arg::Int(v) => *v,
                _ => 0,
            }
        };
        match rec.func {
            FuncId::Wait | FuncId::RequestFree => match rec.args.first() {
                Some(Arg::Request(r)) if *r != u64::MAX => vec![*r],
                _ => vec![],
            },
            FuncId::Waitall => arr(&rec.args[1]).into_iter().filter(|&r| r != u64::MAX).collect(),
            FuncId::Waitany => {
                let idx = int(&rec.args[2]);
                if idx < 0 {
                    vec![]
                } else {
                    vec![arr(&rec.args[1])[idx as usize]]
                }
            }
            FuncId::Waitsome | FuncId::Testsome => {
                let reqs = arr(&rec.args[1]);
                match &rec.args[3] {
                    Arg::IntArr(idx) => idx.iter().map(|&i| reqs[i as usize]).collect(),
                    _ => vec![],
                }
            }
            FuncId::Test => match (&rec.args[0], int(&rec.args[1])) {
                (Arg::Request(r), 1) if *r != u64::MAX => vec![*r],
                _ => vec![],
            },
            FuncId::Testall => {
                if int(&rec.args[2]) == 1 {
                    arr(&rec.args[1]).into_iter().filter(|&r| r != u64::MAX).collect()
                } else {
                    vec![]
                }
            }
            FuncId::Testany => {
                let idx = int(&rec.args[2]);
                if int(&rec.args[3]) == 1 && idx >= 0 {
                    vec![arr(&rec.args[1])[idx as usize]]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }

    /// Is this a call whose trailing `Request` argument *creates* a request?
    fn creates_request(func: FuncId) -> bool {
        matches!(
            func,
            FuncId::Isend
                | FuncId::Ibsend
                | FuncId::Issend
                | FuncId::Irsend
                | FuncId::Irecv
                | FuncId::Ibarrier
                | FuncId::Iallreduce
                | FuncId::CommIdup
        ) || Self::creates_persistent(func)
    }

    /// Persistent-request constructors (`MPI_*_init`).
    fn creates_persistent(func: FuncId) -> bool {
        matches!(
            func,
            FuncId::SendInit
                | FuncId::BsendInit
                | FuncId::SsendInit
                | FuncId::RsendInit
                | FuncId::RecvInit
        )
    }

    /// Caller ranks to use when encoding the statuses of a completion
    /// record: each status belongs to a specific request, whose creation
    /// communicator determines the relative-rank base. Falls back to
    /// `caller_rank` when the request is unknown.
    fn status_ranks(&self, rec: &CallRec, caller_rank: i64) -> Vec<i64> {
        let look = |raw: u64| -> i64 { self.reqs.get(&raw).map_or(caller_rank, |e| e.comm_rank) };
        let arr = |a: &Arg| -> Vec<u64> {
            match a {
                Arg::RequestArr(v) => v.clone(),
                _ => Vec::new(),
            }
        };
        let int = |a: &Arg| -> i64 {
            match a {
                Arg::Int(v) => *v,
                _ => 0,
            }
        };
        match rec.func {
            FuncId::Wait | FuncId::Test => match rec.args.first() {
                Some(Arg::Request(r)) if *r != u64::MAX => vec![look(*r)],
                _ => vec![caller_rank],
            },
            FuncId::Waitall | FuncId::Testall => arr(&rec.args[1])
                .into_iter()
                .map(|r| if r == u64::MAX { caller_rank } else { look(r) })
                .collect(),
            FuncId::Waitany => {
                let idx = int(&rec.args[2]);
                if idx >= 0 {
                    vec![look(arr(&rec.args[1])[idx as usize])]
                } else {
                    vec![caller_rank]
                }
            }
            FuncId::Testany => {
                let idx = int(&rec.args[2]);
                if int(&rec.args[3]) == 1 && idx >= 0 {
                    vec![look(arr(&rec.args[1])[idx as usize])]
                } else {
                    vec![caller_rank]
                }
            }
            FuncId::Waitsome | FuncId::Testsome => {
                let reqs = arr(&rec.args[1]);
                match &rec.args[3] {
                    Arg::IntArr(idx) => idx.iter().map(|&i| look(reqs[i as usize])).collect(),
                    _ => vec![],
                }
            }
            _ => vec![],
        }
    }

    // ------------------------------------------------------------------
    // Nondeterminism recording (record/replay side-channel)
    // ------------------------------------------------------------------

    /// Mirrors the derive rules in [`crate::nondet`] on the live record:
    /// a faithful recording satisfies `NondetLog::derive(trace) ==
    /// recorded`, which is exactly the pure divergence oracle strict
    /// replay checks first. Must run before completed request ids are
    /// released, so completion statuses can still be attributed to the
    /// communicator rank at the request's creation.
    fn observe_nondet(&mut self, rec: &CallRec, caller_rank: i64) {
        let idx = self.calls;
        let relative = self.cfg.encoder.relative_ranks;
        let world = self.rank as i64;
        // The delta the decoded trace will imply for a resolved status
        // source (`nondet::derive` reads `Relative` codes directly and
        // falls back to a world-rank base for `Absolute` ones).
        let delta = |source: i32, base: i64| -> Option<i32> {
            if source < 0 {
                return None;
            }
            Some((source as i64 - if relative { base } else { world }) as i32)
        };
        let rank_at = |j: usize| match rec.args.get(j) {
            Some(Arg::Rank(r)) => Some(*r),
            _ => None,
        };
        let tag_at = |j: usize| match rec.args.get(j) {
            Some(Arg::Tag(t)) => Some(*t),
            _ => None,
        };
        let int_at = |j: usize| match rec.args.get(j) {
            Some(Arg::Int(v)) => Some(*v),
            _ => None,
        };
        let status_at = |j: usize| match rec.args.get(j) {
            Some(Arg::Status { source, tag }) => Some((*source, *tag)),
            _ => None,
        };
        let req_at = |j: usize| match rec.args.get(j) {
            Some(Arg::Request(r)) if *r != u64::MAX => Some(*r),
            _ => None,
        };
        let arr_at = |j: usize| match rec.args.get(j) {
            Some(Arg::RequestArr(v)) => Some(v.as_slice()),
            _ => None,
        };
        let starr_at = |j: usize| match rec.args.get(j) {
            Some(Arg::StatusArr(v)) => Some(v.as_slice()),
            _ => None,
        };
        let wildcard = |src: Option<i32>, tag: Option<i32>| {
            src != Some(PROC_NULL) && (src == Some(ANY_SOURCE) || tag == Some(ANY_TAG))
        };
        // Completed raw request ids, each with the status that revealed
        // the completion — attributed to pending wildcard irecvs below.
        let mut done: Vec<(u64, Option<(i32, i32)>)> = Vec::new();
        match rec.func {
            FuncId::Recv if wildcard(rank_at(3), tag_at(4)) => {
                if let Some((source, tag)) = status_at(6) {
                    if let Some(source) = delta(source, caller_rank) {
                        self.nondet.insert(idx, NondetEvent::Match { source, tag });
                    }
                }
            }
            FuncId::Sendrecv if wildcard(rank_at(8), tag_at(9)) => {
                if let Some((source, tag)) = status_at(11) {
                    if let Some(source) = delta(source, caller_rank) {
                        self.nondet.insert(idx, NondetEvent::Match { source, tag });
                    }
                }
            }
            FuncId::SendrecvReplace if wildcard(rank_at(5), tag_at(6)) => {
                if let Some((source, tag)) = status_at(8) {
                    if let Some(source) = delta(source, caller_rank) {
                        self.nondet.insert(idx, NondetEvent::Match { source, tag });
                    }
                }
            }
            FuncId::Probe if wildcard(rank_at(0), tag_at(1)) => {
                if let Some((source, tag)) = status_at(3) {
                    if let Some(source) = delta(source, caller_rank) {
                        self.nondet.insert(idx, NondetEvent::Match { source, tag });
                    }
                }
            }
            FuncId::Iprobe => {
                // Recorded unconditionally: the flag outcome is
                // nondeterministic even for concrete (source, tag).
                let hit = if int_at(3) == Some(1) {
                    status_at(4).and_then(|(s, t)| delta(s, caller_rank).map(|d| (d, t)))
                } else {
                    None
                };
                self.nondet.insert(idx, NondetEvent::Iprobe { hit });
            }
            FuncId::Irecv if wildcard(rank_at(3), tag_at(4)) => {
                if let Some(raw) = req_at(6) {
                    self.wildcard_irecvs.insert(raw, idx);
                }
            }
            FuncId::RequestFree => {
                if let Some(raw) = req_at(0) {
                    self.wildcard_irecvs.remove(&raw);
                }
            }
            FuncId::Wait => {
                if let Some(raw) = req_at(0) {
                    done.push((raw, status_at(1)));
                }
            }
            FuncId::Waitall => {
                if let Some(reqs) = arr_at(1) {
                    let sts = starr_at(2);
                    for (k, &raw) in reqs.iter().enumerate() {
                        if raw != u64::MAX {
                            done.push((raw, sts.and_then(|s| s.get(k)).copied()));
                        }
                    }
                }
            }
            FuncId::Waitany => {
                let picked = int_at(2).filter(|&v| v >= 0);
                self.nondet.insert(idx, NondetEvent::AnyOf { index: picked.map(|v| v as u32) });
                if let (Some(v), Some(reqs)) = (picked, arr_at(1)) {
                    if let Some(&raw) = reqs.get(v as usize) {
                        done.push((raw, status_at(3)));
                    }
                }
            }
            FuncId::Testany => {
                let picked =
                    (int_at(3) == Some(1)).then(|| int_at(2).filter(|&v| v >= 0)).flatten();
                self.nondet.insert(idx, NondetEvent::AnyOf { index: picked.map(|v| v as u32) });
                if let (Some(v), Some(reqs)) = (picked, arr_at(1)) {
                    if let Some(&raw) = reqs.get(v as usize) {
                        done.push((raw, status_at(4)));
                    }
                }
            }
            FuncId::Waitsome | FuncId::Testsome => {
                let indices: Vec<u32> = match rec.args.get(3) {
                    Some(Arg::IntArr(v)) => v.iter().map(|&x| x as u32).collect(),
                    _ => Vec::new(),
                };
                self.nondet.insert(idx, NondetEvent::SomeOf { indices: indices.clone() });
                if let Some(reqs) = arr_at(1) {
                    let sts = starr_at(4);
                    for (k, &j) in indices.iter().enumerate() {
                        if let Some(&raw) = reqs.get(j as usize) {
                            done.push((raw, sts.and_then(|s| s.get(k)).copied()));
                        }
                    }
                }
            }
            FuncId::Test => {
                let flag = int_at(1) == Some(1);
                self.nondet.insert(idx, NondetEvent::Flag { flag });
                if flag {
                    if let Some(raw) = req_at(0) {
                        done.push((raw, status_at(2)));
                    }
                }
            }
            FuncId::Testall => {
                let flag = int_at(2) == Some(1);
                self.nondet.insert(idx, NondetEvent::Flag { flag });
                if flag {
                    if let Some(reqs) = arr_at(1) {
                        let sts = starr_at(3);
                        for (k, &raw) in reqs.iter().enumerate() {
                            if raw != u64::MAX {
                                done.push((raw, sts.and_then(|s| s.get(k)).copied()));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        for (raw, st) in done {
            if let Some(irecv_idx) = self.wildcard_irecvs.remove(&raw) {
                let base = self.reqs.get(&raw).map_or(caller_rank, |e| e.comm_rank);
                if let Some((source, tag)) = st {
                    if let Some(source) = delta(source, base) {
                        self.nondet.insert(irecv_idx, NondetEvent::Match { source, tag });
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Signature encoding
    // ------------------------------------------------------------------

    fn encode(&mut self, ctx: &TraceCtx<'_>, rec: &CallRec) -> (Vec<u8>, i64) {
        let mut cfg = self.cfg.encoder;
        // Relative-rank encoding applies to point-to-point src/dst ranks
        // (§3.4.2). Collective roots and leader ranks are the same value on
        // every rank already; encoding them relative would *destroy*
        // cross-rank signature sharing.
        if !matches!(
            rec.func,
            FuncId::Send
                | FuncId::Bsend
                | FuncId::Ssend
                | FuncId::Rsend
                | FuncId::Recv
                | FuncId::Isend
                | FuncId::Ibsend
                | FuncId::Issend
                | FuncId::Irsend
                | FuncId::Irecv
                | FuncId::Sendrecv
                | FuncId::SendrecvReplace
                | FuncId::Probe
                | FuncId::Iprobe
                | FuncId::Wait
                | FuncId::Waitall
                | FuncId::Waitany
                | FuncId::Waitsome
                | FuncId::Test
                | FuncId::Testall
                | FuncId::Testany
                | FuncId::Testsome
        ) {
            cfg.relative_ranks = false;
        }
        // The caller's rank in the call's (first) communicator argument;
        // world rank when the record carries no communicator.
        let caller_rank = rec
            .args
            .iter()
            .find_map(|a| match a {
                Arg::Comm(h) if *h != u32::MAX => ctx.comm_rank(*h).map(|r| r as i64),
                _ => None,
            })
            .unwrap_or(self.rank as i64);
        let creates = Self::creates_request(rec.func);
        let status_ranks = self.status_ranks(rec, caller_rank);
        let mut status_idx = 0usize;
        let next_status_rank =
            |n: usize| -> i64 { status_ranks.get(n).copied().unwrap_or(caller_rank) };
        let mut w = SigWriter::new(rec.func.id());
        for arg in &rec.args {
            match arg {
                Arg::Int(v) => w.int(*v),
                Arg::Rank(r) => w.rank(*r, caller_rank, &cfg),
                Arg::Tag(t) => w.msg_tag(*t, caller_rank, &cfg),
                Arg::Comm(h) => {
                    // The new communicator of MPI_Comm_idup has no id yet —
                    // blocking here could deadlock the application, so its
                    // own record carries a "deferred" marker; the id is
                    // resolved by the time the communicator is used.
                    let sym = if *h == u32::MAX {
                        u64::MAX
                    } else if rec.func == FuncId::CommIdup
                        && self.pending_idups.iter().any(|&(p, _)| p == *h)
                    {
                        u64::MAX - 2
                    } else {
                        self.comm_sym(*h)
                    };
                    w.comm(sym);
                }
                Arg::Datatype(h) => {
                    let sym = self.dtype_sym(*h);
                    w.datatype(sym);
                }
                Arg::Op(o) => w.op(*o),
                Arg::Group(h) => {
                    let sym = self.group_sym(*h);
                    w.group(sym);
                }
                Arg::Request(raw) => {
                    if creates {
                        // The request argument is excluded from the pool
                        // signature (§3.4.3): use the bytes written so far.
                        // (Ablation: one shared pool uses an empty key.)
                        let pool_sig = if self.cfg.shared_request_pool {
                            Vec::new()
                        } else {
                            w.bytes().to_vec()
                        };
                        let sym = self.req_pools.acquire(&pool_sig);
                        self.reqs.insert(
                            *raw,
                            ReqEntry {
                                sym,
                                pool_sig,
                                comm_rank: caller_rank,
                                persistent: Self::creates_persistent(rec.func),
                            },
                        );
                        w.request(sym);
                    } else if *raw == u64::MAX {
                        w.request(u64::MAX);
                    } else {
                        let sym = self.reqs.get(raw).map_or(u64::MAX - 1, |e| e.sym);
                        w.request(sym);
                    }
                }
                Arg::RequestArr(raws) => {
                    let syms: Vec<Option<u64>> = raws
                        .iter()
                        .map(|&r| {
                            if r == u64::MAX {
                                None
                            } else {
                                Some(self.reqs.get(&r).map_or(u64::MAX - 1, |e| e.sym))
                            }
                        })
                        .collect();
                    w.request_arr(&syms);
                }
                Arg::Ptr(addr) => {
                    let code = self.mem.encode_ptr(*addr);
                    w.ptr(code.segment, code.offset, &cfg);
                }
                Arg::Status { source, tag } => {
                    let base = next_status_rank(status_idx);
                    status_idx += 1;
                    w.status(*source, *tag, base, &cfg);
                }
                Arg::StatusArr(sts) => {
                    let bases: Vec<i64> =
                        (0..sts.len()).map(|k| next_status_rank(status_idx + k)).collect();
                    status_idx += sts.len();
                    w.status_arr_with_bases(sts, &bases, &cfg);
                }
                Arg::IntArr(v) => w.int_arr(v),
                Arg::Color(c) => w.color(*c, caller_rank, &cfg),
                Arg::Key(k) => w.key(*k, caller_rank, &cfg),
                Arg::Str(s) => w.str(s),
            }
        }
        (w.into_bytes(), caller_rank)
    }

    // ------------------------------------------------------------------
    // Resource governor
    // ------------------------------------------------------------------

    /// O(1) snapshot of the governed working set.
    fn usage(&self) -> ComponentBytes {
        // Conservative per-entry estimate for a captured call record.
        const CAPTURE_ENTRY_BYTES: usize = 256;
        ComponentBytes {
            cst: self.cst.approx_bytes(),
            grammar: self.grammar.approx_bytes(),
            timing: self.timing.as_ref().map_or(0, |t| t.approx_bytes()),
            memory: self.mem.approx_bytes(),
            capture: self.captured.len() * CAPTURE_ENTRY_BYTES,
        }
    }

    /// Applies governor transitions until the working set is back under
    /// control. Stages 1 and 2 shrink the live structures in place; stage
    /// 3 seals the current grammar as a segment and restarts empty.
    fn govern(&mut self) {
        if self.grammar.is_frozen() {
            self.governor.note_frozen_call();
        }
        loop {
            let usage = self.usage();
            let can_seal = self.grammar.input_len() > 0;
            let Some(stage) = self.governor.check(&usage, self.calls, can_seal) else {
                break;
            };
            match stage {
                DegradationStage::FreezeGrammar => self.grammar.freeze(),
                DegradationStage::AggregateTiming => {
                    // Per-signature aggregates live in the CST; only the
                    // per-call bin grammars are shed. A rank already in
                    // aggregate mode has nothing to drop (and must keep
                    // contributing `None` to the timing gathers).
                    if self.timing.take().is_some() {
                        self.timing_dropped = true;
                    }
                }
                DegradationStage::SealSegment => self.seal_segment(),
                // Not a memory rung; `check` never returns it — the net
                // client records it directly when delivery degrades.
                DegradationStage::LocalSpill => {}
            }
        }
    }

    /// Stage 3: serialize the current CST + grammar as a sealed segment
    /// (checkpoint codec) and restart them empty. The new segment stays
    /// frozen — the ladder never steps back down. Without a sink the
    /// segment is retained (modeled spill, excluded from the governed
    /// set); with one it is streamed out immediately and the rank keeps
    /// nothing.
    fn seal_segment(&mut self) {
        let flat = self.grammar.to_flat();
        let bytes = encode_checkpoint(flat.expanded_len(), &self.cst, &flat);
        match &self.sink {
            Some(sink) => {
                sink.push_segment(TraceSegment {
                    rank: self.rank,
                    seq: self.stream_seq,
                    sealed: true,
                    bytes,
                });
                self.stream_seq += 1;
            }
            None => self.sealed.push(bytes),
        }
        self.cst = Cst::new();
        self.grammar = Grammar::new();
        self.grammar.freeze();
        if self.metrics.is_enabled() {
            self.metrics.incr("governor.sealed_segments", 1);
        }
    }

    /// The rank's full-trace view: the live CST/grammar when nothing was
    /// sealed (the common path), or the concatenation of every sealed
    /// segment plus the live one — per-segment CSTs interned into one
    /// table, terminals remapped, rule ids offset, and a fresh top rule
    /// referencing each segment's top in order (the intra-rank analogue
    /// of the inter-process `S -> S1 S2` merge rule).
    fn assembled(&self) -> (Cst, FlatGrammar) {
        if self.sealed.is_empty() {
            return (self.cst.clone(), self.grammar.to_flat());
        }
        let mut segs: Vec<(Cst, FlatGrammar)> = Vec::with_capacity(self.sealed.len() + 1);
        for bytes in &self.sealed {
            if let Ok(ck) = decode_checkpoint(bytes) {
                segs.push((ck.cst, ck.grammar));
            }
        }
        if self.grammar.input_len() > 0 {
            segs.push((self.cst.clone(), self.grammar.to_flat()));
        }
        let mut cst = Cst::new();
        let mut rules: Vec<FlatRule> = vec![FlatRule { symbols: Vec::new() }];
        let mut tops: Vec<u32> = Vec::with_capacity(segs.len());
        for (scst, sg) in &segs {
            let remap: Vec<u32> = scst.iter().map(|(_, sig, st)| cst.intern(sig, st)).collect();
            let g = merge::map_terminals(sg, &remap);
            let offset = rules.len() as u32;
            tops.push(offset);
            for r in &g.rules {
                rules.push(FlatRule {
                    symbols: r
                        .symbols
                        .iter()
                        .map(|&(s, e)| match s {
                            Symbol::Rule(q) => (Symbol::Rule(q + offset), e),
                            t => (t, e),
                        })
                        .collect(),
                });
            }
        }
        rules[0] = FlatRule { symbols: tops.iter().map(|&t| (Symbol::Rule(t), 1)).collect() };
        (cst, FlatGrammar { rules })
    }

    /// Timing gather payloads: a rank whose governor collapsed per-call
    /// timing still contributes empty placeholders so the merge stays
    /// symmetric across ranks (rank 0 maps them to the no-timing
    /// sentinel using the degradation events).
    fn timing_payload(&self) -> (Option<FlatGrammar>, Option<FlatGrammar>) {
        if self.timing_dropped {
            (Some(FlatGrammar::empty()), Some(FlatGrammar::empty()))
        } else {
            (
                self.timing.as_ref().map(|t| t.duration_grammar()),
                self.timing.as_ref().map(|t| t.interval_grammar()),
            )
        }
    }

    /// This rank's merge input, as the batch finalize builds it: the
    /// assembled CST + grammar, timing payloads, call count, and the
    /// governor's degradation events. Harnesses that drive the merge
    /// entry points themselves (rather than through finalize) start
    /// here. Meaningless on a streaming tracer whose sealed segments
    /// were already pushed away.
    pub fn local_piece(&self) -> LocalPiece {
        let (cst, grammar) = self.assembled();
        let (duration, interval) = self.timing_payload();
        LocalPiece {
            rank: self.rank,
            cst,
            grammar,
            call_count: self.calls,
            duration,
            interval,
            encoder_cfg: self.cfg.encoder,
            events: self.governor.events().to_vec(),
        }
    }

    /// Streaming finalize: push the final (live) segment — unless every
    /// call already went out in sealed segments — then the completion
    /// marker. No batch merge runs; the collector driving the sink holds
    /// the merged state, so `result` stays `None` on every rank.
    fn finalize_streaming(&mut self, sink: &dyn SegmentSink) {
        if self.stream_seq == 0 || self.grammar.input_len() > 0 {
            let flat = self.grammar.to_flat();
            let bytes = encode_checkpoint(flat.expanded_len(), &self.cst, &flat);
            sink.push_segment(TraceSegment {
                rank: self.rank,
                seq: self.stream_seq,
                sealed: false,
                bytes,
            });
            self.stream_seq += 1;
        }
        let (duration, interval) = self.timing_payload();
        sink.complete_rank(RankCompletion {
            rank: self.rank,
            call_count: self.calls,
            // Declared so the collector can tell a complete stream from
            // one with segments dropped in flight or quarantined.
            segments: self.stream_seq,
            duration,
            interval,
            encoder_cfg: self.cfg.encoder,
            events: self.governor.events().to_vec(),
        });
        // Buffering sinks (the net client) push the completed stream
        // toward durability here; in-process sinks no-op.
        sink.flush();
    }
}

impl Tracer for PilgrimTracer {
    fn on_call(&mut self, ctx: &TraceCtx<'_>, rec: &CallRec, t_start: u64, t_end: u64) {
        let timer = Instant::now();
        self.poll_pending_idups();

        // Object lifecycle — communicator creation needs its id assigned
        // before (or as part of) encoding.
        match rec.func {
            FuncId::CommDup
            | FuncId::CommSplit
            | FuncId::CommCreate
            | FuncId::CartCreate
            | FuncId::IntercommCreate
            | FuncId::IntercommMerge => {
                // The new communicator is the last Comm argument.
                if let Some(Arg::Comm(h)) =
                    rec.args.iter().rev().find(|a| matches!(a, Arg::Comm(_)))
                {
                    if *h != u32::MAX {
                        self.assign_comm_id(ctx, *h);
                    }
                }
            }
            FuncId::CommIdup => {
                // Non-blocking: start the tool-lane all-reduce over the
                // parent (same group as the duplicate) and resolve later.
                if let (Some(Arg::Comm(parent)), Some(Arg::Comm(new))) =
                    (rec.args.first(), rec.args.get(1))
                {
                    let req = ctx.tool_iallreduce_max(*parent, self.comm_high_water);
                    self.pending_idups.push((*new, req));
                }
            }
            _ => {}
        }

        // Encode the signature (assigns request/datatype/group ids).
        let t_encode = self.metrics.is_enabled().then(Instant::now);
        let (sig, caller_rank) = self.encode(ctx, rec);
        let encode_dur = t_encode.map(|t| t.elapsed());

        // Record/replay side-channel — before the release loop below so
        // completion statuses still see their request's creation state.
        if self.cfg.record_nondet {
            self.observe_nondet(rec, caller_rank);
        }

        // Post-encoding lifecycle: release ids of completed/freed objects.
        // Persistent requests keep their symbolic id across completions
        // and release it only at MPI_Request_free.
        let freeing = rec.func == FuncId::RequestFree;
        for raw in Self::completed_requests(rec) {
            let persistent = self.reqs.get(&raw).is_some_and(|e| e.persistent);
            if !persistent || freeing {
                if let Some(entry) = self.reqs.remove(&raw) {
                    self.req_pools.release(&entry.pool_sig, entry.sym);
                }
            }
        }
        match rec.func {
            FuncId::TypeFree => {
                if let Some(Arg::Datatype(h)) = rec.args.first() {
                    if let Some(sym) = self.dtype_ids.remove(h) {
                        self.dtype_pool.release(sym - DERIVED_DTYPE_BASE);
                    }
                }
            }
            FuncId::GroupFree => {
                if let Some(Arg::Group(h)) = rec.args.first() {
                    if let Some(sym) = self.group_ids.remove(h) {
                        self.group_pool.release(sym);
                    }
                }
            }
            FuncId::CommFree => {
                if let Some(Arg::Comm(h)) = rec.args.first() {
                    // Comm ids are monotonic (never pooled): global
                    // consistency relies on max+1 assignment.
                    self.comm_ids.remove(h);
                }
            }
            _ => {}
        }

        // CST + CFG growth.
        let duration = t_end - t_start;
        let term = self.cst.observe(&sig, duration);
        let t_grammar = self.metrics.is_enabled().then(Instant::now);
        self.grammar.push(term);
        let grammar_dur = t_grammar.map(|t| t.elapsed());
        if let Some(t) = &mut self.timing {
            t.record(term, t_start, duration);
        }
        if self.cfg.capture_reference {
            self.captured.push(CapturedCall { rec: rec.clone(), caller_rank, term });
        }
        self.calls += 1;
        if self.governor.is_active() || self.metrics.is_enabled() {
            self.govern();
        }
        if let Some(iv) = self.cfg.checkpoint_interval {
            let calls = self.calls;
            if iv > 0 && calls.is_multiple_of(iv) {
                let (ccst, cgram) = self.assembled();
                let bytes = encode_checkpoint(calls, &ccst, &cgram);
                if self.metrics.is_enabled() {
                    self.metrics.incr("checkpoint.snapshots", 1);
                    self.metrics.set_gauge("checkpoint.bytes", bytes.len() as u64);
                }
                ctx.store_checkpoint(calls, bytes);
            }
        }
        let total = timer.elapsed();
        self.stats.intra += total;
        if self.metrics.is_enabled() {
            // Intercept is recorded residually so the three intra-process
            // stages sum exactly to `OverheadStats::intra`.
            let encode_dur = encode_dur.unwrap_or_default();
            let grammar_dur = grammar_dur.unwrap_or_default();
            self.metrics.add_stage(Stage::Encode, encode_dur);
            self.metrics.add_stage(Stage::GrammarInsert, grammar_dur);
            self.metrics
                .add_stage(Stage::Intercept, total.saturating_sub(encode_dur + grammar_dur));
            self.metrics.incr("calls", 1);
        }
    }

    fn on_alloc(&mut self, addr: u64, size: u64) {
        self.mem.on_alloc(addr, size);
    }

    fn on_free(&mut self, addr: u64) {
        self.mem.on_free(addr);
    }

    fn on_finalize(&mut self, ctx: &TraceCtx<'_>) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        if let Some(sink) = self.sink.clone() {
            self.finalize_streaming(&*sink);
            return;
        }
        let piece = self.local_piece();
        self.local_size = piece.local_size_bytes();
        if self.metrics.is_enabled() {
            let gs = self.grammar.stats();
            self.metrics.set_gauge("cst.signatures", self.cst.len() as u64);
            self.metrics.set_gauge("cfg.rules", gs.rules as u64);
            self.metrics.set_gauge("cfg.symbols", gs.symbols as u64);
            self.metrics.set_gauge("cfg.digram_entries", gs.digram_entries as u64);
            self.metrics.set_gauge("cfg.utility_inlines", gs.utility_inlines);
            self.metrics.set_gauge("local.bytes", self.local_size as u64);
            self.governor.publish(&self.metrics);
        }
        let opts = merge::MergeOptions::new()
            .identity_check(self.cfg.merge_identity_check)
            .policy(merge::MergePolicy::with_timeout_ms(self.cfg.merge_timeout_ms))
            .metrics(&self.metrics);
        let outcome = merge::merge(ctx, piece, &opts);
        self.stats.merge(&outcome.stats);
        if let Some(e) = outcome.error {
            // This rank's own trace never entered the merge (its CST
            // broadcast parent vanished, or its gather payload was
            // dropped); rank 0's manifest records it as lost or
            // checkpoint-recovered.
            self.metrics.incr("merge.local_errors", 1);
            self.merge_error = Some(e);
        }
        self.result = outcome.trace;
    }
}
