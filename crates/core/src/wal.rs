//! Per-shard write-ahead log for the ingest session.
//!
//! Every stream message a shard accepts — job opens, segments, rank
//! completions, quarantines, job finishes — is appended to
//! `<spill_dir>/wal/shard-<k>.wal` *before* it is folded into the
//! merger, so a crashed collector can replay the log into a fresh
//! [`IncrementalMerger`](crate::merge::IncrementalMerger) and rebuild
//! every in-flight job ([`crate::recover`]).
//!
//! ## Format
//!
//! A 4-byte magic (`PWL1`) followed by CRC-framed records:
//!
//! ```text
//! [kind: u8] [payload_len: varint] [payload] [crc32: u32 LE]
//! ```
//!
//! The CRC covers kind + length + payload, so a torn or bit-flipped
//! frame fails closed. The reader is torn-tail tolerant: it replays the
//! longest clean prefix and reports (never propagates) the damage —
//! exactly the semantics of the spill path's tmp+sync+rename, applied to
//! an append-only file. The writer [`sync_data`](File::sync_data)s every
//! append and, on a failed append (a real short write or an injected
//! one), truncates back to the last clean frame so one lost record
//! cannot poison the frames after it.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use pilgrim_sequitur::{read_varint, write_varint};

use crate::error::DecodeError;
use crate::export::crc32;
use crate::merge::{RankCompletion, TraceSegment};

/// Leading magic of a shard WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"PWL1";

const KIND_OPEN: u8 = 1;
const KIND_SEGMENT: u8 = 2;
const KIND_COMPLETE: u8 = 3;
const KIND_FINISHED: u8 = 4;
const KIND_QUARANTINE: u8 = 5;

/// One logged ingest event.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A job was opened on this shard.
    JobOpen { job: u64, nranks: usize, identity_check: bool },
    /// A segment arrived (logged before folding, so a segment that
    /// panics the worker is still replayable).
    Segment { job: u64, seg: TraceSegment },
    /// A rank completed its stream.
    Complete { job: u64, done: RankCompletion },
    /// The job was finalized and its outcome delivered; recovery treats
    /// the job as settled.
    Finished { job: u64 },
    /// A segment was quarantined after exhausting the worker retry
    /// budget; the rank's sequence has a deliberate gap.
    Quarantine { job: u64, rank: usize, seq: u32 },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::JobOpen { .. } => KIND_OPEN,
            WalRecord::Segment { .. } => KIND_SEGMENT,
            WalRecord::Complete { .. } => KIND_COMPLETE,
            WalRecord::Finished { .. } => KIND_FINISHED,
            WalRecord::Quarantine { .. } => KIND_QUARANTINE,
        }
    }

    fn serialize_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::JobOpen { job, nranks, identity_check } => {
                write_varint(out, *job);
                write_varint(out, *nranks as u64);
                out.push(u8::from(*identity_check));
            }
            WalRecord::Segment { job, seg } => {
                write_varint(out, *job);
                write_varint(out, seg.rank as u64);
                write_varint(out, seg.seq as u64);
                out.push(u8::from(seg.sealed));
                write_varint(out, seg.bytes.len() as u64);
                out.extend_from_slice(&seg.bytes);
            }
            WalRecord::Complete { job, done } => {
                write_varint(out, *job);
                done.serialize(out);
            }
            WalRecord::Finished { job } => write_varint(out, *job),
            WalRecord::Quarantine { job, rank, seq } => {
                write_varint(out, *job);
                write_varint(out, *rank as u64);
                write_varint(out, *seq as u64);
            }
        }
    }

    /// Job id the record belongs to.
    pub fn job(&self) -> u64 {
        match self {
            WalRecord::JobOpen { job, .. }
            | WalRecord::Segment { job, .. }
            | WalRecord::Complete { job, .. }
            | WalRecord::Finished { job }
            | WalRecord::Quarantine { job, .. } => *job,
        }
    }

    fn decode_payload(kind: u8, buf: &[u8]) -> Result<WalRecord, DecodeError> {
        let pos = &mut 0usize;
        let rec = match kind {
            KIND_OPEN => {
                let job = read(buf, pos, "wal open job")?;
                let nranks = read(buf, pos, "wal open nranks")? as usize;
                let flag_off = *pos;
                let flag = *buf
                    .get(*pos)
                    .ok_or(DecodeError::Truncated { what: "wal open flag", offset: flag_off })?;
                *pos += 1;
                WalRecord::JobOpen { job, nranks, identity_check: flag != 0 }
            }
            KIND_SEGMENT => {
                let job = read(buf, pos, "wal segment job")?;
                let rank = read(buf, pos, "wal segment rank")? as usize;
                let seq = read(buf, pos, "wal segment seq")? as u32;
                let flag_off = *pos;
                let sealed = *buf
                    .get(*pos)
                    .ok_or(DecodeError::Truncated { what: "wal segment flag", offset: flag_off })?
                    != 0;
                *pos += 1;
                let len_off = *pos;
                let len = read(buf, pos, "wal segment len")? as usize;
                let bytes = buf
                    .get(*pos..*pos + len)
                    .ok_or(DecodeError::Truncated { what: "wal segment bytes", offset: len_off })?
                    .to_vec();
                *pos += len;
                WalRecord::Segment { job, seg: TraceSegment { rank, seq, sealed, bytes } }
            }
            KIND_COMPLETE => {
                let job = read(buf, pos, "wal complete job")?;
                let done = RankCompletion::decode(buf, pos)?;
                WalRecord::Complete { job, done }
            }
            KIND_FINISHED => WalRecord::Finished { job: read(buf, pos, "wal finished job")? },
            KIND_QUARANTINE => {
                let job = read(buf, pos, "wal quarantine job")?;
                let rank = read(buf, pos, "wal quarantine rank")? as usize;
                let seq = read(buf, pos, "wal quarantine seq")? as u32;
                WalRecord::Quarantine { job, rank, seq }
            }
            _ => return Err(DecodeError::Corrupt { what: "wal record kind", offset: 0 }),
        };
        if *pos != buf.len() {
            return Err(DecodeError::Corrupt { what: "wal record trailing bytes", offset: *pos });
        }
        Ok(rec)
    }
}

fn read(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, DecodeError> {
    let off = *pos;
    read_varint(buf, pos).ok_or(DecodeError::Truncated { what, offset: off })
}

/// Builds one CRC frame — `[kind: u8] [payload_len: varint] [payload]
/// [crc32: u32 LE]`, the CRC covering everything before it. This is the
/// framing shared by the WAL and the `PNT1` wire protocol
/// ([`crate::net`]): same layout on disk and on the socket, so a frame
/// accepted off the wire can be re-framed into a WAL byte-for-byte.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 10);
    out.push(kind);
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Pulls one CRC frame starting at `*pos`, advancing past it on success.
/// `None` = the buffer ends mid-frame (torn tail — more bytes may still
/// arrive on a stream); `Some(Err)` = framing intact but the CRC does
/// not match. The payload is borrowed, not copied.
pub fn split_frame<'a>(
    buf: &'a [u8],
    pos: &mut usize,
) -> Option<Result<(u8, &'a [u8]), DecodeError>> {
    let start = *pos;
    let kind = *buf.get(*pos)?;
    *pos += 1;
    let Some(len) = read_varint(buf, pos).map(|v| v as usize) else {
        // Torn inside the length varint: leave `pos` where it was so
        // the caller can retry once more bytes arrive.
        *pos = start;
        return None;
    };
    if len > buf.len().saturating_sub(*pos) {
        *pos = start;
        return None;
    }
    let payload = &buf[*pos..*pos + len];
    *pos += len;
    let Some(crc_bytes) = buf.get(*pos..*pos + 4) else {
        *pos = start;
        return None;
    };
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    *pos += 4;
    if crc32(&buf[start..*pos - 4]) != stored {
        return Some(Err(DecodeError::Corrupt { what: "frame crc", offset: start }));
    }
    Some(Ok((kind, payload)))
}

fn frame(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    rec.serialize_payload(&mut payload);
    encode_frame(rec.kind(), &payload)
}

/// Appending writer for one shard's WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// File length up to the last fully-synced frame; a failed append
    /// truncates back here.
    clean_len: u64,
    records: u64,
}

impl WalWriter {
    /// Creates (truncating) the WAL at `path` and writes the magic.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<WalWriter> {
        let path = path.into();
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        Ok(WalWriter { file, path, clean_len: WAL_MAGIC.len() as u64, records: 0 })
    }

    /// Path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames, appends, and syncs one record. Returns the frame size.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<u64> {
        let bytes = frame(rec);
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        self.clean_len += bytes.len() as u64;
        self.records += 1;
        Ok(bytes.len() as u64)
    }

    /// Fault-injection hook: writes only the first half of the frame
    /// (a torn append, as if the process died mid-write) and reports it
    /// as a short-write error. The caller is expected to
    /// [`truncate_to_clean`](WalWriter::truncate_to_clean) — until then
    /// the file carries a torn tail, exactly what a crash leaves.
    pub fn append_torn(&mut self, rec: &WalRecord) -> std::io::Result<u64> {
        let bytes = frame(rec);
        self.file.write_all(&bytes[..bytes.len() / 2])?;
        self.file.sync_data()?;
        Err(std::io::Error::new(
            std::io::ErrorKind::WriteZero,
            format!("injected short write after {} of {} bytes", bytes.len() / 2, bytes.len()),
        ))
    }

    /// Truncates back to the last fully-synced frame after a failed
    /// append, so later records land on a clean boundary.
    pub fn truncate_to_clean(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.clean_len)?;
        self.file.seek(SeekFrom::Start(self.clean_len))?;
        self.file.sync_data()
    }

    /// Records successfully appended.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes in the file up to the last clean frame.
    pub fn clean_len(&self) -> u64 {
        self.clean_len
    }
}

/// Result of replaying one WAL file: the longest clean prefix of
/// records, plus what (if anything) stopped the scan.
#[derive(Debug, Default)]
pub struct WalReplay {
    pub records: Vec<WalRecord>,
    /// Bytes consumed by clean frames (magic included).
    pub clean_bytes: u64,
    /// Why the scan stopped early (torn tail, CRC mismatch, corrupt
    /// frame); `None` when the file ended on a frame boundary.
    pub torn: Option<String>,
}

/// Decodes a WAL image, replaying the longest clean prefix. Errors only
/// when the magic itself is missing — damage past the magic is reported
/// in [`WalReplay::torn`], never propagated.
pub fn decode_wal(buf: &[u8]) -> Result<WalReplay, DecodeError> {
    if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DecodeError::Corrupt { what: "wal magic", offset: 0 });
    }
    let mut replay = WalReplay { clean_bytes: WAL_MAGIC.len() as u64, ..Default::default() };
    let mut pos = WAL_MAGIC.len();
    while pos < buf.len() {
        let start = pos;
        let Some(framed) = next_frame(buf, &mut pos) else {
            replay.torn = Some(format!(
                "torn frame at byte {start} ({} records clean)",
                replay.records.len()
            ));
            break;
        };
        match framed {
            Ok(rec) => {
                replay.records.push(rec);
                replay.clean_bytes = pos as u64;
            }
            Err(e) => {
                replay.torn = Some(format!(
                    "corrupt frame at byte {start}: {e} ({} records clean)",
                    replay.records.len()
                ));
                break;
            }
        }
    }
    Ok(replay)
}

/// Pulls one frame starting at `*pos`. `None` = truncated (torn tail);
/// `Some(Err)` = framing intact but contents corrupt (bad CRC, bad
/// kind, payload decode failure).
fn next_frame(buf: &[u8], pos: &mut usize) -> Option<Result<WalRecord, DecodeError>> {
    let start = *pos;
    match split_frame(buf, pos)? {
        Ok((kind, payload)) => {
            Some(WalRecord::decode_payload(kind, payload).map_err(|e| e.offset_by(start)))
        }
        Err(e) => Some(Err(e)),
    }
}

/// Reads and replays one WAL file from disk.
pub fn read_wal(path: &Path) -> std::io::Result<Result<WalReplay, DecodeError>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(decode_wal(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncoderConfig;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::JobOpen { job: 3, nranks: 4, identity_check: true },
            WalRecord::Segment {
                job: 3,
                seg: TraceSegment { rank: 1, seq: 0, sealed: true, bytes: vec![1, 2, 3, 4, 5] },
            },
            WalRecord::Quarantine { job: 3, rank: 1, seq: 1 },
            WalRecord::Complete {
                job: 3,
                done: RankCompletion {
                    rank: 1,
                    call_count: 9,
                    segments: 2,
                    duration: None,
                    interval: None,
                    encoder_cfg: EncoderConfig::default(),
                    events: Vec::new(),
                },
            },
            WalRecord::Finished { job: 3 },
        ]
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut out = WAL_MAGIC.to_vec();
        for r in records {
            out.extend_from_slice(&frame(r));
        }
        out
    }

    #[test]
    fn roundtrips_every_record_kind() {
        let img = image(&sample_records());
        let replay = decode_wal(&img).expect("magic intact");
        assert!(replay.torn.is_none(), "{:?}", replay.torn);
        assert_eq!(replay.clean_bytes, img.len() as u64);
        assert_eq!(replay.records.len(), 5);
        match &replay.records[1] {
            WalRecord::Segment { job: 3, seg } => {
                assert_eq!((seg.rank, seg.seq, seg.sealed), (1, 0, true));
                assert_eq!(seg.bytes, vec![1, 2, 3, 4, 5]);
            }
            other => panic!("expected segment, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_replays_clean_prefix() {
        let img = image(&sample_records());
        for cut in WAL_MAGIC.len()..img.len() {
            let replay = decode_wal(&img[..cut]).expect("magic intact");
            // Every record reported clean must be bit-exact decodable.
            assert!(replay.records.len() <= 5);
            if cut < img.len() {
                assert!(replay.clean_bytes <= cut as u64);
            }
        }
        // Cut exactly at a frame boundary: no tear reported.
        let one = image(&sample_records()[..1]);
        let replay = decode_wal(&one).expect("magic intact");
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn bit_flip_fails_closed_at_the_flipped_frame() {
        let img = image(&sample_records());
        // Flip a byte inside the second frame's payload.
        let mut bad = img.clone();
        let first_end = WAL_MAGIC.len() + frame(&sample_records()[0]).len();
        bad[first_end + 3] ^= 0x40;
        let replay = decode_wal(&bad).expect("magic intact");
        assert_eq!(replay.records.len(), 1, "only the first frame survives");
        assert!(replay.torn.is_some());
    }

    #[test]
    fn missing_magic_is_an_error() {
        assert!(decode_wal(b"nope").is_err());
        assert!(decode_wal(b"PW").is_err());
    }

    #[test]
    fn shared_frame_codec_roundtrips_and_rejects_bit_flips() {
        let frame = encode_frame(7, b"hello frame");
        let mut pos = 0;
        let (kind, payload) = split_frame(&frame, &mut pos).expect("whole").expect("clean");
        assert_eq!((kind, payload), (7u8, &b"hello frame"[..]));
        assert_eq!(pos, frame.len());
        // Every strict prefix is torn, and `pos` is left where it was.
        for cut in 0..frame.len() {
            let mut p = 0;
            assert!(split_frame(&frame[..cut], &mut p).is_none(), "cut at {cut}");
            assert_eq!(p, 0);
        }
        // Any single bit flip fails the CRC closed.
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x10;
            let mut p = 0;
            match split_frame(&bad, &mut p) {
                Some(Err(_)) | None => {}
                Some(Ok(_)) => panic!("flip at byte {byte} went undetected"),
            }
        }
    }

    /// The satellite case for truncate-on-failed-append: a short write
    /// must leave the file readable *at the last clean frame* even
    /// before `truncate_to_clean` runs, and `clean_len` must agree with
    /// what an independent reader accepts.
    #[test]
    fn short_write_leaves_log_readable_at_last_clean_frame() {
        let dir = std::env::temp_dir().join(format!("pilgrim-wal-short-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("shard-0.wal");
        let recs = sample_records();
        let mut w = WalWriter::create(&path).expect("create wal");
        w.append(&recs[0]).expect("append");
        w.append(&recs[1]).expect("append");
        let clean = w.clean_len();
        assert!(w.append_torn(&recs[2]).is_err());
        // The torn tail is on disk, past the clean length...
        let on_disk = std::fs::metadata(&path).expect("stat").len();
        assert!(on_disk > clean, "torn bytes must be present ({on_disk} <= {clean})");
        // ...and a crash-time reader replays exactly the clean prefix.
        let replay = read_wal(&path).expect("read").expect("magic");
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.clean_bytes, clean);
        assert!(replay.torn.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_appends_syncs_and_recovers_from_torn_append() {
        let dir = std::env::temp_dir().join(format!("pilgrim-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("shard-0.wal");
        let recs = sample_records();
        let mut w = WalWriter::create(&path).expect("create wal");
        w.append(&recs[0]).expect("append");
        w.append(&recs[1]).expect("append");
        // A torn append leaves a damaged tail the reader skips...
        assert!(w.append_torn(&recs[2]).is_err());
        let replay = read_wal(&path).expect("read").expect("magic");
        assert_eq!(replay.records.len(), 2);
        assert!(replay.torn.is_some());
        // ...and truncate-to-clean lets the log continue.
        w.truncate_to_clean().expect("truncate");
        w.append(&recs[3]).expect("append after recovery");
        let replay = read_wal(&path).expect("read").expect("magic");
        assert_eq!(replay.records.len(), 3);
        assert!(replay.torn.is_none());
        assert_eq!(w.records(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
