//! Non-aggregated lossy timing compression (paper §3.2).
//!
//! Durations are binned exponentially: a duration `d` is stored as
//! `ceil(log_b(d))`, giving a user-tunable relative error of at most
//! `b - 1`. Intervals between calls with the same signature are stored the
//! same way, with the *reconstructed* (binned) previous intervals
//! subtracted so the error in absolute wall-clock positions stays bounded
//! instead of accumulating. Both bin streams are compressed with their own
//! Sequitur grammars.

use std::collections::HashMap;

use pilgrim_sequitur::{FlatGrammar, Grammar};

/// Lossy timing compressor for one rank.
#[derive(Debug)]
pub struct TimingCompressor {
    base: f64,
    ln_base: f64,
    duration_grammar: Grammar,
    interval_grammar: Grammar,
    /// Per-signature-terminal: sum of reconstructed interval values, i.e.
    /// the reconstructed entry time of the next expected call.
    recon_entry: HashMap<u32, f64>,
}

impl TimingCompressor {
    /// Creates a compressor with relative error bound `base - 1`
    /// (the paper's evaluation uses `b = 1.2`, a 20% bound).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "binning base must exceed 1");
        TimingCompressor {
            base,
            ln_base: base.ln(),
            duration_grammar: Grammar::new(),
            interval_grammar: Grammar::new(),
            recon_entry: HashMap::new(),
        }
    }

    /// Exponential bin index for a value (0 for values <= 1).
    pub fn bin(&self, v: f64) -> u32 {
        if v <= 1.0 {
            return 0;
        }
        (v.ln() / self.ln_base).ceil() as u32
    }

    /// The representative (upper-bound) value of a bin.
    pub fn unbin(&self, bin: u32) -> f64 {
        if bin == 0 {
            return 1.0;
        }
        self.base.powi(bin as i32)
    }

    /// Records one call: signature terminal `term`, entry time `t_start`,
    /// duration `dur` (both simulated ns).
    pub fn record(&mut self, term: u32, t_start: u64, dur: u64) {
        let dbin = self.bin(dur as f64);
        self.duration_grammar.push(dbin);
        // Adjusted interval: wall-clock entry minus the sum of previously
        // reconstructed intervals for this signature (paper §3.2).
        let recon = *self.recon_entry.get(&term).unwrap_or(&0.0);
        let interval = (t_start as f64 - recon).max(0.0);
        let ibin = self.bin(interval);
        self.interval_grammar.push(ibin);
        self.recon_entry.insert(term, recon + self.unbin(ibin));
    }

    /// Snapshot of the duration-bin grammar.
    pub fn duration_grammar(&self) -> FlatGrammar {
        self.duration_grammar.to_flat()
    }

    /// Snapshot of the interval-bin grammar.
    pub fn interval_grammar(&self) -> FlatGrammar {
        self.interval_grammar.to_flat()
    }

    /// Relative error bound of this compressor.
    pub fn error_bound(&self) -> f64 {
        self.base - 1.0
    }

    /// Number of calls recorded.
    pub fn recorded(&self) -> u64 {
        self.duration_grammar.input_len()
    }

    /// O(1) estimate of the compressor's resident bytes (both bin
    /// grammars plus the per-signature reconstruction map), for the
    /// governor's live budget accounting.
    pub fn approx_bytes(&self) -> usize {
        self.duration_grammar.approx_bytes()
            + self.interval_grammar.approx_bytes()
            + self.recon_entry.len() * 32
    }
}

/// Reconstructs per-call `(t_start, t_end)` estimates from decompressed
/// duration/interval bin streams (post-processing side of §3.2). The
/// caller supplies the per-call signature terminals in call order.
pub fn reconstruct_times(
    base: f64,
    terms: &[u32],
    duration_bins: &[u32],
    interval_bins: &[u32],
) -> Vec<(f64, f64)> {
    assert_eq!(terms.len(), duration_bins.len());
    assert_eq!(terms.len(), interval_bins.len());
    let unbin = |b: u32| if b == 0 { 1.0 } else { base.powi(b as i32) };
    let mut recon_entry: HashMap<u32, f64> = HashMap::new();
    let mut out = Vec::with_capacity(terms.len());
    for i in 0..terms.len() {
        let entry = recon_entry.entry(terms[i]).or_insert(0.0);
        let t_start = *entry + unbin(interval_bins[i]);
        *entry = t_start;
        let t_end = t_start + unbin(duration_bins[i]);
        out.push((t_start, t_end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_error_is_bounded() {
        let t = TimingCompressor::new(1.2);
        for &v in &[1.5f64, 10.0, 1234.0, 9.9e6, 3.7e9] {
            let rep = t.unbin(t.bin(v));
            let rel = (rep - v).abs() / v;
            assert!(rel <= 0.2 + 1e-9, "value {v}: representative {rep}, error {rel}");
            assert!(rep >= v - 1e-9, "ceil binning over-approximates");
        }
    }

    #[test]
    fn tiny_values_map_to_bin_zero() {
        let t = TimingCompressor::new(1.2);
        assert_eq!(t.bin(0.0), 0);
        assert_eq!(t.bin(1.0), 0);
        assert_eq!(t.unbin(0), 1.0);
    }

    #[test]
    fn identical_loop_timings_compress_to_constant_space() {
        let mut t = TimingCompressor::new(1.2);
        // A perfectly regular loop: same duration, same interval.
        for i in 0..10_000u64 {
            t.record(0, i * 1000, 800);
        }
        let dg = t.duration_grammar();
        assert!(dg.total_symbols() <= 2, "regular durations: {} symbols", dg.total_symbols());
        assert_eq!(t.recorded(), 10_000);
    }

    #[test]
    fn noisy_timings_still_roundtrip_within_bound() {
        let mut t = TimingCompressor::new(1.2);
        let mut starts = Vec::new();
        let mut state = 7u64;
        let mut now = 0u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let dur = 900 + (state >> 40) % 200;
            now += 1000 + (state >> 50) % 64;
            starts.push((now, dur));
            t.record(3, now, dur);
        }
        let dbins = t.duration_grammar().expand();
        let ibins = t.interval_grammar().expand();
        let terms = vec![3u32; 500];
        let times = reconstruct_times(1.2, &terms, &dbins, &ibins);
        // Reconstructed entry times stay within the relative error bound.
        for ((t_start, _), &(orig_start, _)) in times.iter().zip(&starts) {
            let rel = (t_start - orig_start as f64).abs() / orig_start as f64;
            assert!(rel <= 0.2 + 1e-6, "entry time drifted: {rel}");
        }
    }

    #[test]
    fn intervals_tracked_per_signature() {
        let mut t = TimingCompressor::new(2.0);
        // Two interleaved signatures with different periods.
        t.record(0, 1000, 10);
        t.record(1, 1500, 10);
        t.record(0, 2000, 10);
        t.record(1, 3000, 10);
        assert_eq!(t.recorded(), 4);
        let ibins = t.interval_grammar().expand();
        assert_eq!(ibins.len(), 4);
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn base_must_exceed_one() {
        TimingCompressor::new(1.0);
    }
}
