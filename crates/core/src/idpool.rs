//! Symbolic-id pools (paper §3.3).
//!
//! Pilgrim maps every MPI object to a small locally unique symbolic id. A
//! pool hands out the smallest free id; when the object is released the id
//! returns to the pool, so programs that recycle objects keep using the
//! same few ids — which is exactly what makes signatures repeat.
//!
//! For `MPI_Request` objects a single pool breaks down: completion order is
//! nondeterministic, so id assignment order would differ across loop
//! iterations. [`SigPools`] therefore keeps one pool *per call signature*
//! (§3.4.3), making the k-th request created by a given call site always
//! get the same id regardless of completion order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A pool of reusable symbolic ids; always hands out the smallest free id.
#[derive(Debug, Default, Clone)]
pub struct IdPool {
    free: BinaryHeap<Reverse<u64>>,
    next: u64,
}

impl IdPool {
    pub fn new() -> Self {
        IdPool::default()
    }

    /// Takes the smallest available id.
    pub fn acquire(&mut self) -> u64 {
        match self.free.pop() {
            Some(Reverse(id)) => id,
            None => {
                let id = self.next;
                self.next += 1;
                id
            }
        }
    }

    /// Returns an id to the pool.
    pub fn release(&mut self, id: u64) {
        debug_assert!(id < self.next, "release of id never acquired");
        self.free.push(Reverse(id));
    }

    /// Highest id ever handed out plus one (the pool's footprint).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

/// Per-signature id pools for `MPI_Request` symbolic ids.
#[derive(Debug, Default)]
pub struct SigPools {
    pools: HashMap<Vec<u8>, IdPool>,
}

impl SigPools {
    pub fn new() -> Self {
        SigPools::default()
    }

    /// Acquires an id from the pool of the given signature (the call
    /// signature *excluding* the request argument).
    pub fn acquire(&mut self, sig: &[u8]) -> u64 {
        self.pools.entry(sig.to_vec()).or_default().acquire()
    }

    /// Releases an id back to its signature's pool.
    pub fn release(&mut self, sig: &[u8], id: u64) {
        self.pools.get_mut(sig).expect("release for unknown signature pool").release(id);
    }

    /// Number of distinct signature pools.
    pub fn num_pools(&self) -> usize {
        self.pools.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_free_id_first() {
        let mut p = IdPool::new();
        assert_eq!(p.acquire(), 0);
        assert_eq!(p.acquire(), 1);
        assert_eq!(p.acquire(), 2);
        p.release(1);
        p.release(0);
        assert_eq!(p.acquire(), 0, "smallest free id is preferred");
        assert_eq!(p.acquire(), 1);
        assert_eq!(p.acquire(), 3);
        assert_eq!(p.high_water(), 4);
    }

    #[test]
    fn reuse_keeps_footprint_small() {
        let mut p = IdPool::new();
        for _ in 0..1000 {
            let id = p.acquire();
            assert_eq!(id, 0);
            p.release(id);
        }
        assert_eq!(p.high_water(), 1);
    }

    #[test]
    fn per_signature_pools_are_independent() {
        let mut sp = SigPools::new();
        let a = b"sig-a".to_vec();
        let b = b"sig-b".to_vec();
        assert_eq!(sp.acquire(&a), 0);
        assert_eq!(sp.acquire(&b), 0, "different signatures use separate pools");
        assert_eq!(sp.acquire(&a), 1);
        sp.release(&a, 0);
        assert_eq!(sp.acquire(&a), 0);
        assert_eq!(sp.num_pools(), 2);
    }

    #[test]
    fn completion_order_does_not_change_assignment() {
        // The paper's §3.4.3 scenario: three requests per iteration,
        // completed in random order; ids must repeat across iterations.
        let mut sp = SigPools::new();
        let sigs: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8]).collect();
        let mut first_iter: Option<Vec<u64>> = None;
        let completion_orders = [[0usize, 1, 2], [2, 1, 0], [1, 2, 0], [0, 2, 1]];
        for order in completion_orders {
            let ids: Vec<u64> = sigs.iter().map(|s| sp.acquire(s)).collect();
            if let Some(f) = &first_iter {
                assert_eq!(&ids, f, "ids must be stable across iterations");
            } else {
                first_iter = Some(ids.clone());
            }
            for &i in &order {
                sp.release(&sigs[i], ids[i]);
            }
        }
    }

    #[test]
    fn single_pool_would_churn_where_sig_pools_do_not() {
        // Demonstrates the failure mode the per-signature design fixes.
        let mut single = IdPool::new();
        let a1 = single.acquire();
        let b1 = single.acquire();
        // Iteration 1 completes b first, then a.
        single.release(b1);
        single.release(a1);
        // Iteration 2 acquires in creation order a, b — now gets the
        // smallest free ids, which SWAPPED relative to iteration 1 only if
        // release order mattered; with min-heap they are stable here, but
        // interleaved completion changes assignment:
        let a2 = single.acquire();
        single.release(a2); // a completes before b is even created
        let b2 = single.acquire();
        assert_eq!(b2, a1, "single pool reassigns a's id to b — churn");
    }
}
