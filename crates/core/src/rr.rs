//! Deterministic record/replay with divergence detection and
//! grammar-aware trace minimization.
//!
//! A Pilgrim trace pins down *what* every rank did; the `PGND`
//! nondeterminism log ([`crate::NondetLog`]) additionally pins down every
//! choice the runtime made freely — which sender a wildcard receive
//! matched, which index a `Waitany` completed, whether a probe or test
//! saw its flag raised. Together they make a recording replayable
//! bit-for-bit:
//!
//! * [`record`] / [`record_faulty`] run a workload under the tracer with
//!   [`crate::PilgrimConfig::record_nondet`] enabled and attach the
//!   collected per-rank events to [`GlobalTrace::nondet`];
//! * [`replay_directed`] re-executes the decoded calls with a
//!   [`ReplayDirector`] installed on every rank, feeding the recorded
//!   resolutions back into the fabric so the replay follows the recorded
//!   schedule exactly — replaying the same recording twice yields
//!   byte-identical retrace containers;
//! * [`replay_strict`] is the checking mode: it first runs the *pure*
//!   oracle (the log the trace's own statuses imply, via
//!   [`NondetLog::derive`], cross-checked against the recorded log —
//!   no execution involved), then the live directed replay, and reports
//!   the first mismatching `(rank, call_index)` as a [`Divergence`];
//! * [`minimize`] shrinks a diverging recording by grammar-aware delta
//!   debugging: candidate cuts come from the per-rank Sequitur grammar
//!   (drop a top-level rule expansion, halve an `A -> B^k` run, drop a
//!   whole rank), and each candidate is accepted only if the pure oracle
//!   still reports the *same* divergence.
//!
//! Degraded traces (lost / checkpoint-truncated / salvaged ranks) do not
//! make promises a replay can check: strict replay classifies them as
//! [`StrictReplay::Degraded`] with the [`PartialReplayReport`] instead
//! of claiming a divergence.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

use mpi_sim::{Directive, Env, FuncId, ReplayDirector, World, WorldConfig};
use pilgrim_sequitur::{DecodeError, Grammar, Symbol};

use crate::decode::decode_rank_calls;
use crate::encode::EncodedCall;
use crate::export::format_arg;
use crate::nondet::{derive_rank_events, NondetEvent, NondetLog};
use crate::replay::{partial_replay_report, PartialReplayReport, Replayer};
use crate::trace::{GlobalTrace, TraceCompleteness};
use crate::tracer::{PilgrimConfig, PilgrimTracer};

// ---------------------------------------------------------------------
// Divergence
// ---------------------------------------------------------------------

/// The first point where a replay (or the pure oracle) disagreed with
/// the recording. Ordered by `(call_index, rank)`: the earliest call
/// position wins, ties broken by rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The diverging rank.
    pub rank: usize,
    /// 0-based call index on that rank.
    pub call_index: u64,
    /// What the recording promised at that point.
    pub expected: String,
    /// What actually happened.
    pub got: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} call {}: expected {}, got {}",
            self.rank, self.call_index, self.expected, self.got
        )
    }
}

/// The verdict of [`replay_strict`] (and of [`replay_directed`], which
/// skips the pure cross-check).
#[derive(Debug)]
pub enum StrictReplay {
    /// The replay followed the recording exactly; the retrace is the
    /// replay's own Pilgrim trace (byte-identical across repeat replays
    /// of the same recording).
    Deterministic(Box<GlobalTrace>),
    /// The replay (or the pure oracle) left the recorded schedule.
    Diverged(Divergence),
    /// The trace is not fully replayable; no divergence claim is made.
    Degraded(Box<PartialReplayReport>),
    /// The trace itself failed to decode.
    Undecodable(DecodeError),
}

// ---------------------------------------------------------------------
// Record
// ---------------------------------------------------------------------

/// Runs `body` on a healthy `nranks`-rank world with nondeterminism
/// recording enabled and returns the trace with its
/// [`GlobalTrace::nondet`] log attached. `None` if rank 0 produced no
/// merged trace (streaming-sink tracers, for example).
pub fn record<B>(nranks: usize, cfg: PilgrimConfig, body: B) -> Option<GlobalTrace>
where
    B: Fn(&mut Env) + Send + Sync + 'static,
{
    record_faulty(&WorldConfig::new(nranks), cfg, body)
}

/// [`record`] over an explicit [`WorldConfig`] — fault plans included.
/// Ranks killed by the plan contribute no events (their side-channel
/// dies with them); the survivors' log still replays the surviving
/// portion deterministically.
pub fn record_faulty<B>(world: &WorldConfig, cfg: PilgrimConfig, body: B) -> Option<GlobalTrace>
where
    B: Fn(&mut Env) + Send + Sync + 'static,
{
    let cfg = cfg.record_nondet(true);
    let mut outcome = World::run_faulty(world, |rank| PilgrimTracer::new(rank, cfg), body);
    let mut log = NondetLog::new(world.n_ranks);
    for (rank, slot) in outcome.tracers.iter_mut().enumerate() {
        if let (Some(tracer), Some(map)) = (slot.as_mut(), log.ranks.get_mut(rank)) {
            *map = tracer.take_nondet();
        }
    }
    let mut trace = outcome.tracers.first_mut()?.as_mut()?.take_output().trace?;
    trace.nondet = Some(log);
    Some(trace)
}

// ---------------------------------------------------------------------
// Directed replay
// ---------------------------------------------------------------------

/// Shared across the replaying ranks: the earliest divergence any rank
/// reported, by `(call_index, rank)`.
struct DirectorState {
    divergence: Mutex<Option<Divergence>>,
}

impl DirectorState {
    fn report(&self, d: Divergence) {
        let mut slot = self.divergence.lock().unwrap_or_else(|p| p.into_inner());
        let earlier = match &*slot {
            Some(cur) => (d.call_index, d.rank) < (cur.call_index, cur.rank),
            None => true,
        };
        if earlier {
            *slot = Some(d);
        }
    }

    fn take(&self) -> Option<Divergence> {
        self.divergence.lock().unwrap_or_else(|p| p.into_inner()).take()
    }
}

/// One rank's recorded resolutions, fed back through the
/// [`mpi_sim::ReplayDirector`] seam.
struct RankDirector {
    map: HashMap<u64, Directive>,
    state: Arc<DirectorState>,
}

impl ReplayDirector for RankDirector {
    fn directive(&mut self, call_index: u64, _func: FuncId) -> Option<Directive> {
        self.map.get(&call_index).cloned()
    }

    fn unsatisfied(&mut self, rank: usize, call_index: u64, func: FuncId, detail: String) {
        let expected = match self.map.get(&call_index) {
            Some(d) => format!("{}: {:?}", func.name(), d),
            None => func.name().to_string(),
        };
        self.state.report(Divergence { rank, call_index, expected, got: detail });
    }
}

/// Replays `trace` with every rank's recorded resolutions pinned, and
/// retraces the replay with Pilgrim under `cfg`. The directed schedule
/// makes the retrace a pure function of the recording: replaying twice
/// yields byte-identical containers. A directive the fabric cannot
/// satisfy (the recorded message never arrives, the recorded index
/// never completes) halts that rank and surfaces as
/// [`StrictReplay::Diverged`] naming the exact `(rank, call_index)`.
pub fn replay_directed(trace: &GlobalTrace, cfg: PilgrimConfig) -> StrictReplay {
    let report = partial_replay_report(trace);
    if !report.is_fully_replayable() {
        return StrictReplay::Degraded(Box::new(report));
    }
    let mut per_rank = Vec::with_capacity(trace.nranks);
    for rank in 0..trace.nranks {
        match decode_rank_calls(trace, rank) {
            Ok(calls) => per_rank.push(calls),
            Err(e) => return StrictReplay::Undecodable(e),
        }
    }
    let per_rank = Arc::new(per_rank);
    let log = trace.nondet.clone().unwrap_or_default();
    let directives: Arc<Vec<HashMap<u64, Directive>>> =
        Arc::new((0..trace.nranks).map(|r| log.directives(r)).collect());
    let state = Arc::new(DirectorState { divergence: Mutex::new(None) });
    let body_state = Arc::clone(&state);
    let mut outcome = World::run_faulty(
        &WorldConfig::new(trace.nranks),
        |rank| PilgrimTracer::new(rank, cfg),
        move |env| {
            let rank = env.world_rank();
            env.set_replay_director(Box::new(RankDirector {
                map: directives[rank].clone(),
                state: Arc::clone(&body_state),
            }));
            let mut rp = Replayer::new_directed();
            for call in &per_rank[rank] {
                rp.step(env, call);
            }
            rp.drain(env);
        },
    );
    if let Some(d) = state.take() {
        return StrictReplay::Diverged(d);
    }
    let retrace = outcome
        .tracers
        .first_mut()
        .and_then(|slot| slot.as_mut())
        .and_then(|tracer| tracer.take_output().trace);
    match retrace {
        Some(t) => StrictReplay::Deterministic(Box::new(t)),
        None => {
            // A rank died without reporting a directive miss (it hit a
            // dead peer, or rank 0 itself was lost).
            let got = outcome
                .failures
                .first()
                .map(|f| format!("rank {} halted after {} calls", f.rank, f.calls))
                .unwrap_or_else(|| "replay produced no merged trace".to_string());
            StrictReplay::Diverged(Divergence {
                rank: outcome.failures.first().map_or(0, |f| f.rank),
                call_index: outcome.failures.first().map_or(0, |f| f.calls),
                expected: "a deterministic replay to finalize".to_string(),
                got,
            })
        }
    }
}

/// Strict replay: proves the recording deterministic or names the first
/// divergence.
///
/// 1. Degraded traces short-circuit to [`StrictReplay::Degraded`] — a
///    truncated rank is missing data, not diverging.
/// 2. The *pure* oracle runs first: [`NondetLog::derive`] recomputes
///    the log the trace's own statuses, completion indices and flags
///    imply, and any mismatch against the recorded log is a divergence
///    found without executing anything (this is what catches a mutated
///    recording in CI).
/// 3. The live directed replay runs, and its retrace is compared
///    call-for-call against the original ([`first_divergence`]).
pub fn replay_strict(trace: &GlobalTrace) -> StrictReplay {
    let report = partial_replay_report(trace);
    // Any degradation voids the bit-determinism promise: truncated and
    // lost ranks cannot replay at all, and governor-degraded (frozen or
    // sealed) ranks legitimately renumber grammar segments on retrace —
    // reporting that as a Divergence would be a false positive.
    if !report.is_fully_replayable() || trace.is_degraded() {
        return StrictReplay::Degraded(Box::new(report));
    }
    if let Some(recorded) = &trace.nondet {
        let derived = match NondetLog::derive(trace) {
            Ok(d) => d,
            Err(e) => return StrictReplay::Undecodable(e),
        };
        if let Some(d) = cross_check(recorded, &derived) {
            return StrictReplay::Diverged(d);
        }
    }
    let retrace = match replay_directed(trace, PilgrimConfig::default()) {
        StrictReplay::Deterministic(t) => t,
        other => return other,
    };
    match first_divergence(trace, &retrace) {
        Some(d) => StrictReplay::Diverged(d),
        None => StrictReplay::Deterministic(retrace),
    }
}

/// Cross-checks the recorded log against the derived one, returning the
/// earliest mismatch by `(call_index, rank)`. `expected` is the
/// recording, `got` is what the trace implies.
fn cross_check(recorded: &NondetLog, derived: &NondetLog) -> Option<Divergence> {
    let empty = BTreeMap::new();
    let mut best: Option<Divergence> = None;
    let nranks = recorded.ranks.len().max(derived.ranks.len());
    for rank in 0..nranks {
        let rec = recorded.ranks.get(rank).unwrap_or(&empty);
        let der = derived.ranks.get(rank).unwrap_or(&empty);
        if let Some(d) = first_event_mismatch(rank, rec, der) {
            let earlier = match &best {
                Some(cur) => (d.call_index, d.rank) < (cur.call_index, cur.rank),
                None => true,
            };
            if earlier {
                best = Some(d);
            }
        }
    }
    best
}

/// First mismatching call index between two event maps of one rank.
fn first_event_mismatch(
    rank: usize,
    recorded: &BTreeMap<u64, NondetEvent>,
    derived: &BTreeMap<u64, NondetEvent>,
) -> Option<Divergence> {
    let mut keys: Vec<u64> = recorded.keys().chain(derived.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    for idx in keys {
        match (recorded.get(&idx), derived.get(&idx)) {
            (Some(a), Some(b)) if a == b => {}
            (a, b) => {
                return Some(Divergence {
                    rank,
                    call_index: idx,
                    expected: fmt_event(a),
                    got: fmt_event(b),
                });
            }
        }
    }
    None
}

fn fmt_event(e: Option<&NondetEvent>) -> String {
    e.map_or_else(|| "no recorded resolution".to_string(), |ev| format!("{ev:?}"))
}

/// Renders a decoded call for divergence messages.
fn format_call(call: &EncodedCall) -> String {
    let name = FuncId::from_id(call.func).map_or("?", |f| f.name());
    let args: Vec<String> = call.args.iter().map(format_arg).collect();
    format!("{name}({})", args.join(", "))
}

/// Call equivalence modulo buffer identity: pointer arguments name
/// allocator segments, and a replay allocates in its own order, so
/// segments are compared *referentially* — a bijection per rank, the
/// same treatment [`crate::verify_lossless`] gives opaque references.
/// Everything else must match exactly.
fn calls_equivalent(
    x: &EncodedCall,
    y: &EncodedCall,
    seg_ab: &mut HashMap<u64, u64>,
    seg_ba: &mut HashMap<u64, u64>,
) -> bool {
    use crate::encode::EncodedArg as A;
    if x.func != y.func || x.args.len() != y.args.len() {
        return false;
    }
    for (ax, ay) in x.args.iter().zip(&y.args) {
        match (ax, ay) {
            (A::Ptr { segment: sa, offset: oa }, A::Ptr { segment: sb, offset: ob }) => {
                if oa != ob {
                    return false;
                }
                let fwd = *seg_ab.entry(*sa).or_insert(*sb);
                let bwd = *seg_ba.entry(*sb).or_insert(*sa);
                if fwd != *sb || bwd != *sa {
                    return false;
                }
            }
            _ => {
                if ax != ay {
                    return false;
                }
            }
        }
    }
    true
}

/// Compares two traces call-for-call and returns the earliest differing
/// `(call_index, rank)` — the bit-determinism check behind
/// `replay(trace)` twice yielding identical retraces. Buffer segments
/// are compared referentially (see [`calls_equivalent`]); `expected`
/// renders `a`'s call, `got` renders `b`'s.
pub fn first_divergence(a: &GlobalTrace, b: &GlobalTrace) -> Option<Divergence> {
    if a.nranks != b.nranks {
        return Some(Divergence {
            rank: 0,
            call_index: 0,
            expected: format!("{} ranks", a.nranks),
            got: format!("{} ranks", b.nranks),
        });
    }
    let mut best: Option<Divergence> = None;
    let consider = |d: Divergence, best: &mut Option<Divergence>| {
        let earlier = match best {
            Some(cur) => (d.call_index, d.rank) < (cur.call_index, cur.rank),
            None => true,
        };
        if earlier {
            *best = Some(d);
        }
    };
    for rank in 0..a.nranks {
        let ca = match decode_rank_calls(a, rank) {
            Ok(c) => c,
            Err(e) => {
                consider(
                    Divergence {
                        rank,
                        call_index: 0,
                        expected: "a decodable rank".to_string(),
                        got: format!("decode error: {e}"),
                    },
                    &mut best,
                );
                continue;
            }
        };
        let cb = match decode_rank_calls(b, rank) {
            Ok(c) => c,
            Err(e) => {
                consider(
                    Divergence {
                        rank,
                        call_index: 0,
                        expected: "a decodable rank".to_string(),
                        got: format!("decode error: {e}"),
                    },
                    &mut best,
                );
                continue;
            }
        };
        let (mut seg_ab, mut seg_ba) = (HashMap::new(), HashMap::new());
        for i in 0..ca.len().max(cb.len()) {
            let d = match (ca.get(i), cb.get(i)) {
                (Some(x), Some(y)) if calls_equivalent(x, y, &mut seg_ab, &mut seg_ba) => continue,
                (x, y) => Divergence {
                    rank,
                    call_index: i as u64,
                    expected: x.map_or_else(|| "end of sequence".to_string(), format_call),
                    got: y.map_or_else(|| "end of sequence".to_string(), format_call),
                },
            };
            consider(d, &mut best);
            break;
        }
    }
    best
}

// ---------------------------------------------------------------------
// Grammar-aware minimization
// ---------------------------------------------------------------------

/// Why [`minimize`] refused to run.
#[derive(Debug)]
pub enum MinimizeError {
    /// Degraded traces make no replay promise to shrink against.
    Degraded(Box<PartialReplayReport>),
    /// The trace carries no `PGND` log — nothing records the schedule.
    NoNondetLog,
    /// The recording already replays cleanly; there is no divergence to
    /// preserve.
    NoDivergence,
    /// The trace failed to decode.
    Undecodable(DecodeError),
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::Degraded(_) => write!(f, "trace is degraded; nothing to minimize"),
            MinimizeError::NoNondetLog => write!(f, "trace carries no nondeterminism log"),
            MinimizeError::NoDivergence => write!(f, "recording replays cleanly; no divergence"),
            MinimizeError::Undecodable(e) => write!(f, "trace undecodable: {e}"),
        }
    }
}

impl std::error::Error for MinimizeError {}

/// A minimized reproducer and the bookkeeping around it.
#[derive(Debug)]
pub struct MinimizeResult {
    /// The shrunk, self-contained trace: same CST and encoder config,
    /// fresh grammar over the surviving calls, nondet log remapped to
    /// the surviving indices, timing dropped.
    pub trace: GlobalTrace,
    /// The preserved divergence, re-keyed to the minimized call indices.
    pub divergence: Divergence,
    /// Expanded call count of the input trace.
    pub original_calls: u64,
    /// Expanded call count of the minimized trace.
    pub minimized_calls: u64,
    /// Container bytes of the input trace.
    pub original_bytes: usize,
    /// Container bytes of the minimized trace.
    pub minimized_bytes: usize,
    /// Oracle evaluations spent.
    pub candidates_tried: usize,
}

/// Per-rank terminal sequences of a trace, split from the merged
/// grammar's expansion by the rank length table.
fn rank_terms(trace: &GlobalTrace) -> Vec<Vec<u32>> {
    let all = trace.grammar.expand();
    let mut out = Vec::with_capacity(trace.nranks);
    let mut off = 0usize;
    for rank in 0..trace.nranks {
        let len = trace.rank_lengths.get(rank).copied().unwrap_or(0) as usize;
        let end = (off + len).min(all.len());
        out.push(all[off..end].to_vec());
        off = end;
    }
    out
}

/// Expanded length of every rule in `flat` (memoized walk; our own
/// Sequitur output is acyclic by construction).
fn rule_lengths(flat: &pilgrim_sequitur::FlatGrammar) -> Vec<u64> {
    fn walk(flat: &pilgrim_sequitur::FlatGrammar, rid: usize, memo: &mut [Option<u64>]) -> u64 {
        if let Some(v) = memo[rid] {
            return v;
        }
        // Pre-mark to break (impossible) cycles instead of recursing forever.
        memo[rid] = Some(0);
        let mut len = 0u64;
        for &(sym, exp) in &flat.rules[rid].symbols {
            let unit = match sym {
                Symbol::Terminal(_) => 1,
                Symbol::Rule(r) => walk(flat, r as usize, memo),
            };
            len += unit * exp;
        }
        memo[rid] = Some(len);
        len
    }
    let mut memo = vec![None; flat.rules.len()];
    (0..flat.rules.len()).map(|r| walk(flat, r, &mut memo)).collect()
}

/// Candidate cuts for one rank's current sequence, derived from a fresh
/// Sequitur grammar over it: for every top-level span, try dropping the
/// whole span; for counted runs (`B^k`), also try dropping the tail
/// half. Largest cuts first.
fn grammar_cuts(terms: &[u32]) -> Vec<std::ops::Range<usize>> {
    let mut g = Grammar::new();
    for &t in terms {
        g.push(t);
    }
    let flat = g.to_flat();
    if flat.rules.is_empty() {
        return Vec::new();
    }
    let lens = rule_lengths(&flat);
    let mut cuts = Vec::new();
    let mut pos = 0u64;
    for &(sym, exp) in &flat.rules[0].symbols {
        let unit = match sym {
            Symbol::Terminal(_) => 1,
            Symbol::Rule(r) => lens.get(r as usize).copied().unwrap_or(0),
        };
        let span = unit * exp;
        if span == 0 {
            continue;
        }
        cuts.push(pos as usize..(pos + span) as usize);
        if exp > 1 {
            // Halve the run: keep the leading floor(k/2) repetitions.
            let keep = exp / 2;
            cuts.push((pos + unit * keep) as usize..(pos + span) as usize);
        }
        pos += span;
    }
    cuts.sort_by_key(|c| std::cmp::Reverse(c.len()));
    cuts
}

/// The pure oracle over a candidate subset: derives each rank's implied
/// events from the kept calls and cross-checks them against the
/// recorded events remapped onto the kept indices.
fn subset_divergence(
    orig_calls: &[Vec<EncodedCall>],
    recorded: &NondetLog,
    kept: &[Vec<u64>],
) -> Option<Divergence> {
    let empty = BTreeMap::new();
    let mut best: Option<Divergence> = None;
    for (rank, kept_idx) in kept.iter().enumerate() {
        let calls: Vec<EncodedCall> =
            kept_idx.iter().filter_map(|&i| orig_calls[rank].get(i as usize).cloned()).collect();
        let derived = derive_rank_events(rank as i64, &calls);
        let rec_map = recorded.ranks.get(rank).unwrap_or(&empty);
        let remapped: BTreeMap<u64, NondetEvent> = kept_idx
            .iter()
            .enumerate()
            .filter_map(|(newi, oldi)| rec_map.get(oldi).map(|e| (newi as u64, e.clone())))
            .collect();
        if let Some(d) = first_event_mismatch(rank, &remapped, &derived) {
            let earlier = match &best {
                Some(cur) => (d.call_index, d.rank) < (cur.call_index, cur.rank),
                None => true,
            };
            if earlier {
                best = Some(d);
            }
        }
    }
    best
}

/// Does the candidate still reproduce the target divergence? The call
/// index may shift as calls before it are cut; the rank and the
/// expected/got pair must match exactly.
fn preserves(d: &Option<Divergence>, target: &Divergence) -> bool {
    match d {
        Some(d) => d.rank == target.rank && d.expected == target.expected && d.got == target.got,
        None => false,
    }
}

/// Shrinks a diverging recording to a small self-contained reproducer.
///
/// The oracle is the pure derive-vs-recorded cross-check — per-rank and
/// execution-free, so every candidate is evaluated in microseconds. Cuts
/// are grammar-aware: each round re-runs Sequitur on the surviving
/// sequence and proposes top-level spans and run-halvings, so a loop of
/// `k` iterations shrinks geometrically (`k → k/2 → …`) instead of one
/// element at a time; whole non-essential ranks are dropped first. The
/// minimized trace keeps the CST and encoder config, rebuilds the
/// grammar over the surviving calls, remaps the nondet log onto the new
/// indices, and drops timing (a reproducer has no use for it).
pub fn minimize(trace: &GlobalTrace) -> Result<MinimizeResult, MinimizeError> {
    let report = partial_replay_report(trace);
    // Same gate as [`replay_strict`]: a degraded recording cannot make
    // the bit-determinism promise the minimizer's oracle relies on.
    if !report.is_fully_replayable() || trace.is_degraded() {
        return Err(MinimizeError::Degraded(Box::new(report)));
    }
    let Some(recorded) = &trace.nondet else {
        return Err(MinimizeError::NoNondetLog);
    };
    let mut orig_calls = Vec::with_capacity(trace.nranks);
    for rank in 0..trace.nranks {
        orig_calls.push(decode_rank_calls(trace, rank).map_err(MinimizeError::Undecodable)?);
    }
    let terms = rank_terms(trace);

    // Everything kept, initially; indices are into the original decode.
    let mut kept: Vec<Vec<u64>> =
        orig_calls.iter().map(|c| (0..c.len() as u64).collect()).collect();
    let mut tried = 1usize;
    let target = match subset_divergence(&orig_calls, recorded, &kept) {
        Some(d) => d,
        None => return Err(MinimizeError::NoDivergence),
    };

    loop {
        let mut progress = false;
        // Whole-rank drops first: the oracle is per-rank, so any rank
        // other than the diverging one is a candidate.
        for rank in 0..trace.nranks {
            if rank == target.rank || kept[rank].is_empty() {
                continue;
            }
            let saved = std::mem::take(&mut kept[rank]);
            tried += 1;
            if preserves(&subset_divergence(&orig_calls, recorded, &kept), &target) {
                progress = true;
            } else {
                kept[rank] = saved;
            }
        }
        // Grammar-derived cuts within each surviving rank.
        for rank in 0..trace.nranks {
            loop {
                let cur_terms: Vec<u32> =
                    kept[rank].iter().map(|&i| terms[rank][i as usize]).collect();
                let cuts = grammar_cuts(&cur_terms);
                let mut cut_worked = false;
                for cut in cuts {
                    if cut.end > kept[rank].len() || cut.is_empty() {
                        continue;
                    }
                    if cut.len() == kept[rank].len() && rank == target.rank {
                        continue; // dropping everything cannot keep the divergence
                    }
                    let mut candidate = kept[rank].clone();
                    candidate.drain(cut);
                    let saved = std::mem::replace(&mut kept[rank], candidate);
                    tried += 1;
                    if preserves(&subset_divergence(&orig_calls, recorded, &kept), &target) {
                        cut_worked = true;
                        progress = true;
                        break; // re-run Sequitur on the shrunk sequence
                    }
                    kept[rank] = saved;
                }
                if !cut_worked {
                    break;
                }
            }
        }
        if !progress {
            break;
        }
    }

    // Rebuild: fresh grammar over the surviving terminals (rank by rank,
    // concatenated like the merged trace), remapped nondet log, timing
    // dropped. The CST is carried over unchanged so surviving terminals
    // keep their signatures.
    let mut g = Grammar::new();
    let mut rank_lengths = Vec::with_capacity(trace.nranks);
    let mut log = NondetLog::new(trace.nranks);
    for rank in 0..trace.nranks {
        rank_lengths.push(kept[rank].len() as u64);
        for &i in &kept[rank] {
            g.push(terms[rank][i as usize]);
        }
        if let Some(rec_map) = recorded.ranks.get(rank) {
            for (newi, oldi) in kept[rank].iter().enumerate() {
                if let Some(e) = rec_map.get(oldi) {
                    log.insert(rank, newi as u64, e.clone());
                }
            }
        }
    }
    let minimized = GlobalTrace {
        nranks: trace.nranks,
        encoder_cfg: trace.encoder_cfg,
        cst: trace.cst.clone(),
        grammar: g.to_flat(),
        rank_lengths,
        unique_grammars: trace.unique_grammars,
        duration_grammars: Vec::new(),
        interval_grammars: Vec::new(),
        duration_rank_map: Vec::new(),
        interval_rank_map: Vec::new(),
        completeness: TraceCompleteness::complete(),
        nondet: Some(log),
    };

    // Re-key the divergence to the minimized indices via the oracle on
    // the final trace (same mismatch by construction).
    let divergence = match NondetLog::derive(&minimized) {
        Ok(derived) => minimized
            .nondet
            .as_ref()
            .and_then(|rec| cross_check(rec, &derived))
            .unwrap_or_else(|| target.clone()),
        Err(_) => target.clone(),
    };

    let original_calls: u64 = orig_calls.iter().map(|c| c.len() as u64).sum();
    let minimized_calls: u64 = minimized.rank_lengths.iter().sum();
    Ok(MinimizeResult {
        original_bytes: crate::export::write_container(trace).len(),
        minimized_bytes: crate::export::write_container(&minimized).len(),
        trace: minimized,
        divergence,
        original_calls,
        minimized_calls,
        candidates_tried: tried,
    })
}
