//! Seeded fault injection for the `PNT1` wire transport.
//!
//! [`NetFaultPlan`] is the network-layer sibling of
//! [`IngestFaultPlan`](crate::ingest_fault::IngestFaultPlan): every
//! decision — a refused connection, a mid-frame cut, a flipped byte, a
//! stalled send, a duplicated delivery, a permanent partition — is a
//! pure function of the plan's seed and the fault coordinates, keyed
//! splitmix64-style on `(job, rank, seq)` for per-frame faults and on
//! `(client, attempt)` for connection faults. Two runs with the same
//! plan inject exactly the same faults no matter how the client and
//! server threads interleave, which is what the `chaos_net` sweep's
//! bit-identical gate relies on.
//!
//! Frame faults fire on a frame's *first* transmission only (the client
//! keys them off its retransmit counter): a cut or corrupted frame
//! breaks the connection, the client reconnects and resends, and the
//! clean retransmit gets through — otherwise a rate-1.0 cut would loop
//! forever. Duplicate delivery sends the frame twice back-to-back and
//! leans on the server's `(job, rank, seq)` watermark dedup.

/// A seeded, deterministic schedule of wire-transport faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Probability that connection attempt `attempt` of a client is
    /// refused before the socket is even dialed.
    pub connect_refuse_rate: f64,
    /// Probability that a frame's first transmission is cut mid-frame:
    /// half the bytes go out, then the connection breaks.
    pub cut_rate: f64,
    /// Probability that one byte of a frame's first transmission is
    /// flipped in flight (the server's CRC fails closed and drops the
    /// connection).
    pub corrupt_rate: f64,
    /// Probability that a frame is delivered twice back-to-back.
    pub duplicate_rate: f64,
    /// Probability that a frame's send stalls for [`NetFaultPlan::stall_ms`]
    /// first (latency only; nothing is lost).
    pub stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability that sending a frame trips a *permanent* partition:
    /// the connection breaks and every later connect attempt by this
    /// client fails, so the retry budget runs out and the client
    /// degrades to local spill.
    pub partition_rate: f64,
}

impl NetFaultPlan {
    pub fn new(seed: u64) -> Self {
        NetFaultPlan { seed, stall_ms: 20, ..Default::default() }
    }

    pub fn connect_refuse_rate(mut self, p: f64) -> Self {
        self.connect_refuse_rate = p;
        self
    }

    pub fn cut_rate(mut self, p: f64) -> Self {
        self.cut_rate = p;
        self
    }

    pub fn corrupt_rate(mut self, p: f64) -> Self {
        self.corrupt_rate = p;
        self
    }

    pub fn duplicate_rate(mut self, p: f64) -> Self {
        self.duplicate_rate = p;
        self
    }

    pub fn stall_rate(mut self, p: f64) -> Self {
        self.stall_rate = p;
        self
    }

    pub fn stall_ms(mut self, ms: u64) -> Self {
        self.stall_ms = ms;
        self
    }

    pub fn partition_rate(mut self, p: f64) -> Self {
        self.partition_rate = p;
        self
    }

    /// True when the plan can inject at least one fault.
    pub fn is_active(&self) -> bool {
        self.connect_refuse_rate > 0.0
            || self.cut_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.stall_rate > 0.0
            || self.partition_rate > 0.0
    }

    /// Refuse connection attempt `attempt` of `client`? Keyed on the
    /// attempt index, so a transient refusal storm is a fixed prefix of
    /// the client's (deterministic) attempt sequence.
    pub fn refuses_connect(&self, client: u64, attempt: u64) -> bool {
        coin(hash4(self.seed ^ 0x11, client, attempt, 0)) < self.connect_refuse_rate
    }

    /// Cut frame `(job, rank, seq)` mid-transmission (first send only)?
    pub fn cuts(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x12, job, rank, seq)) < self.cut_rate
    }

    /// Flip a byte of frame `(job, rank, seq)` in flight (first send
    /// only)? The returned offset picks which payload byte.
    pub fn corrupts(&self, job: u64, rank: u64, seq: u64) -> Option<u64> {
        let h = hash4(self.seed ^ 0x13, job, rank, seq);
        (coin(h) < self.corrupt_rate).then(|| splitmix(h))
    }

    /// Deliver frame `(job, rank, seq)` twice?
    pub fn duplicates(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x14, job, rank, seq)) < self.duplicate_rate
    }

    /// Stall before sending frame `(job, rank, seq)`?
    pub fn stalls(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x15, job, rank, seq)) < self.stall_rate
    }

    /// Does sending frame `(job, rank, seq)` trip a permanent partition?
    pub fn partitions(&self, job: u64, rank: u64, seq: u64) -> bool {
        coin(hash4(self.seed ^ 0x16, job, rank, seq)) < self.partition_rate
    }
}

/// The behaviors in the hostile-peer corpus. Each adversary connection
/// in the `chaos_adversary` sweep plays exactly one of these against a
/// live collector; none of them may panic it, hang it, or grow its
/// memory without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Random bytes where the `PNT1` magic + hello should be.
    GarbageHello,
    /// Valid magic, then a frame header declaring a huge payload length
    /// that never arrives — probes the decode-size cap.
    OversizeLength,
    /// CRC-valid frames that are semantically invalid: unknown kinds,
    /// truncated payloads, server-only frames sent client→server.
    SemanticGarbage,
    /// A well-formed handshake, then a CRC-valid `JobOpen` declaring an
    /// absurd rank count (~2^50) — probes the declared-allocation
    /// ceiling, which must answer with a typed reject, not reserve
    /// petabytes of merger state.
    HugeJobOpen,
    /// Replays a challenge response captured from an earlier handshake
    /// on a fresh connection — must fail against the fresh nonce.
    HandshakeReplay,
    /// Authenticates with the wrong key and must get a typed reject.
    WrongKey,
    /// Drips a valid frame one byte at a time, slower than the
    /// collector's patience.
    SlowLoris,
    /// Opens a connection and holds it silently, consuming an
    /// admission slot until the idle reaper claims it.
    ConnectHold,
    /// Connects, sends half a hello, and vanishes.
    MidHandshakeDisconnect,
}

/// Every kind in corpus order; the plan cycles through these so a sweep
/// of `n >= ADVERSARY_KINDS.len()` peers covers the whole corpus.
pub const ADVERSARY_KINDS: [AdversaryKind; 9] = [
    AdversaryKind::GarbageHello,
    AdversaryKind::OversizeLength,
    AdversaryKind::SemanticGarbage,
    AdversaryKind::HugeJobOpen,
    AdversaryKind::HandshakeReplay,
    AdversaryKind::WrongKey,
    AdversaryKind::SlowLoris,
    AdversaryKind::ConnectHold,
    AdversaryKind::MidHandshakeDisconnect,
];

/// A seeded, deterministic corpus of hostile peers. Like
/// [`NetFaultPlan`], every decision is a pure function of the seed and
/// the peer index, so two sweeps with the same plan dispatch exactly
/// the same adversaries with exactly the same payload bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdversaryPlan {
    /// Seed for every byte and choice the corpus generates.
    pub seed: u64,
}

impl AdversaryPlan {
    pub fn new(seed: u64) -> Self {
        AdversaryPlan { seed }
    }

    /// Which behavior peer `peer` plays. Cycles the corpus in order so
    /// coverage is guaranteed, not merely probable.
    pub fn kind(&self, peer: u64) -> AdversaryKind {
        ADVERSARY_KINDS[(peer as usize) % ADVERSARY_KINDS.len()]
    }

    /// Per-peer salt for any parameter a behavior needs beyond bytes.
    pub fn salt(&self, peer: u64) -> u64 {
        hash4(self.seed ^ 0x21, peer, 0, 0)
    }

    /// `len` deterministic pseudo-random bytes for peer `peer`.
    pub fn garbage(&self, peer: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut x = hash4(self.seed ^ 0x22, peer, len as u64, 0);
        while out.len() < len {
            x = splitmix(x);
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(len);
        out
    }
}

/// SplitMix64 finalizer — the same cheap mixer the other fault plans use.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    splitmix(splitmix(splitmix(splitmix(a) ^ b) ^ c) ^ d)
}

/// Maps a hash to [0, 1).
fn coin(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Mixes a client id and a local job index into the stable wire job id
/// the collector keys everything on. Public because the `pilgrimd send`
/// driver and the chaos sweep both need to predict server-side ids.
pub fn stable_job_id(client_id: u64, local_job: u64) -> u64 {
    hash4(0x504E_5431, client_id, local_job, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = NetFaultPlan::new(7);
        assert!(!p.is_active());
        for i in 0..200 {
            assert!(!p.refuses_connect(i, i));
            assert!(!p.cuts(i, i, i));
            assert!(p.corrupts(i, i, i).is_none());
            assert!(!p.duplicates(i, i, i));
            assert!(!p.stalls(i, i, i));
            assert!(!p.partitions(i, i, i));
        }
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let a = NetFaultPlan::new(42).cut_rate(0.3).corrupt_rate(0.2).duplicate_rate(0.4);
        let b = a.clone();
        for job in 0..16 {
            for seq in 0..16 {
                assert_eq!(a.cuts(job, 1, seq), b.cuts(job, 1, seq));
                assert_eq!(a.corrupts(job, 1, seq), b.corrupts(job, 1, seq));
                assert_eq!(a.duplicates(job, 1, seq), b.duplicates(job, 1, seq));
            }
        }
        let c = NetFaultPlan::new(43).cut_rate(0.3);
        let flips = (0..256).filter(|&i| a.cuts(i, 1, 0) != c.cuts(i, 1, 0)).count();
        assert!(flips > 0, "seeds 42 and 43 agreed on all 256 decisions");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = NetFaultPlan::new(9).cut_rate(0.25);
        let hits = (0..4000).filter(|&i| p.cuts(i, i % 7, i % 13)).count();
        assert!((700..1300).contains(&hits), "0.25 rate produced {hits}/4000 hits");
    }

    #[test]
    fn adversary_plan_is_deterministic_and_covers_the_corpus() {
        let a = AdversaryPlan::new(77);
        let b = AdversaryPlan::new(77);
        let mut kinds = std::collections::HashSet::new();
        for peer in 0..32 {
            assert_eq!(a.kind(peer), b.kind(peer));
            assert_eq!(a.salt(peer), b.salt(peer));
            assert_eq!(a.garbage(peer, 64), b.garbage(peer, 64));
            kinds.insert(format!("{:?}", a.kind(peer)));
        }
        assert_eq!(kinds.len(), ADVERSARY_KINDS.len(), "corpus not fully covered");
        // Different seeds produce different payload bytes.
        assert_ne!(a.garbage(0, 64), AdversaryPlan::new(78).garbage(0, 64));
    }

    #[test]
    fn stable_job_ids_do_not_collide_across_clients() {
        let mut seen = std::collections::HashSet::new();
        for client in 0..64 {
            for job in 0..64 {
                assert!(seen.insert(stable_job_id(client, job)), "collision at {client}/{job}");
            }
        }
    }
}
