//! The call signature table (CST, paper §2.1).
//!
//! Maps each distinct call signature to a grammar terminal and keeps
//! per-signature aggregate timing (the default timing mode: average call
//! duration, §3.2).

use std::collections::HashMap;

use pilgrim_sequitur::{decode_varint, write_varint, DecodeError};

/// Aggregate statistics kept per signature.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SigStats {
    /// Number of calls with this signature.
    pub count: u64,
    /// Sum of call durations (simulated ns).
    pub dur_sum: u64,
}

impl SigStats {
    /// Average duration of calls with this signature.
    pub fn avg_duration(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.dur_sum as f64 / self.count as f64
        }
    }
}

/// A per-rank (or merged) call signature table.
#[derive(Debug, Default, Clone)]
pub struct Cst {
    map: HashMap<Vec<u8>, u32>,
    entries: Vec<(Vec<u8>, SigStats)>,
    /// Incrementally maintained resident-byte estimate (see
    /// [`Cst::approx_bytes`]); updated only when a new entry is interned.
    approx_bytes: usize,
}

/// Estimated per-entry overhead beyond the signature bytes themselves:
/// map key copy, hash-table slot, entry tuple, and stats.
const ENTRY_OVERHEAD: usize = 96;

impl Cst {
    pub fn new() -> Self {
        Cst::default()
    }

    /// Interns a signature, returning its terminal and recording one call
    /// of `duration`.
    pub fn observe(&mut self, sig: &[u8], duration: u64) -> u32 {
        let term = match self.map.get(sig) {
            Some(&t) => t,
            None => {
                let t = self.entries.len() as u32;
                self.map.insert(sig.to_vec(), t);
                self.entries.push((sig.to_vec(), SigStats::default()));
                self.approx_bytes += 2 * sig.len() + ENTRY_OVERHEAD;
                t
            }
        };
        let stats = &mut self.entries[term as usize].1;
        stats.count += 1;
        stats.dur_sum += duration;
        term
    }

    /// Interns a signature without timing (used during merges).
    pub fn intern(&mut self, sig: &[u8], stats: SigStats) -> u32 {
        match self.map.get(sig) {
            Some(&t) => {
                let s = &mut self.entries[t as usize].1;
                s.count += stats.count;
                s.dur_sum += stats.dur_sum;
                t
            }
            None => {
                let t = self.entries.len() as u32;
                self.map.insert(sig.to_vec(), t);
                self.entries.push((sig.to_vec(), stats));
                self.approx_bytes += 2 * sig.len() + ENTRY_OVERHEAD;
                t
            }
        }
    }

    /// O(1) estimate of the table's resident bytes (two copies of every
    /// signature plus per-entry overhead), maintained incrementally for
    /// the governor's live budget accounting — unlike [`Cst::byte_size`],
    /// which is the O(n) serialized size.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Looks up a signature's terminal without inserting.
    pub fn lookup(&self, sig: &[u8]) -> Option<u32> {
        self.map.get(sig).copied()
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The signature bytes for a terminal.
    pub fn signature(&self, term: u32) -> &[u8] {
        &self.entries[term as usize].0
    }

    /// The aggregate stats for a terminal.
    pub fn stats(&self, term: u32) -> SigStats {
        self.entries[term as usize].1
    }

    /// Iterates `(terminal, signature, stats)` in terminal order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u8], SigStats)> + '_ {
        self.entries.iter().enumerate().map(|(i, (sig, st))| (i as u32, sig.as_slice(), *st))
    }

    /// Serialized size in bytes (what the trace-size experiments count).
    pub fn byte_size(&self) -> usize {
        let mut buf = Vec::new();
        self.serialize(&mut buf);
        buf.len()
    }

    /// Serializes the table: count, then per entry (len, bytes, stats).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.entries.len() as u64);
        for (sig, stats) in &self.entries {
            write_varint(out, sig.len() as u64);
            out.extend_from_slice(sig);
            write_varint(out, stats.count);
            write_varint(out, stats.dur_sum);
        }
    }

    /// Decodes a table written by [`Cst::serialize`], advancing `pos` and
    /// reporting exactly where a malformed buffer went wrong.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Cst, DecodeError> {
        let count_off = *pos;
        let n = decode_varint(buf, pos)? as usize;
        // Every entry costs at least three bytes (length + two stat
        // varints), so an impossible count is corruption, not data.
        if n > buf.len().saturating_sub(*pos) / 3 + 1 {
            return Err(DecodeError::Corrupt { what: "CST entry count", offset: count_off });
        }
        let mut cst = Cst::new();
        for _ in 0..n {
            let len = decode_varint(buf, pos)? as usize;
            let sig_off = *pos;
            let sig = buf
                .get(*pos..pos.saturating_add(len))
                .ok_or(DecodeError::Truncated { what: "CST signature", offset: sig_off })?
                .to_vec();
            *pos += len;
            let count = decode_varint(buf, pos)?;
            let dur_sum = decode_varint(buf, pos)?;
            cst.intern(&sig, SigStats { count, dur_sum });
        }
        Ok(cst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_signatures_get_one_terminal() {
        let mut c = Cst::new();
        let a1 = c.observe(b"send:1", 100);
        let b = c.observe(b"recv:0", 150);
        let a2 = c.observe(b"send:1", 120);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(c.len(), 2);
        let st = c.stats(a1);
        assert_eq!(st.count, 2);
        assert_eq!(st.dur_sum, 220);
        assert!((st.avg_duration() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn terminals_are_dense_and_ordered() {
        let mut c = Cst::new();
        for i in 0..10u8 {
            assert_eq!(c.observe(&[i], 1), i as u32);
        }
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut c = Cst::new();
        assert_eq!(c.lookup(b"x"), None);
        c.observe(b"x", 1);
        assert_eq!(c.lookup(b"x"), Some(0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn serialize_roundtrip() {
        let mut c = Cst::new();
        c.observe(b"alpha", 10);
        c.observe(b"beta", 20);
        c.observe(b"alpha", 30);
        let mut buf = Vec::new();
        c.serialize(&mut buf);
        assert_eq!(buf.len(), c.byte_size());
        let mut pos = 0;
        let back = Cst::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back.len(), 2);
        assert_eq!(back.signature(0), b"alpha");
        assert_eq!(back.stats(0), SigStats { count: 2, dur_sum: 40 });
    }

    #[test]
    fn intern_merges_stats() {
        let mut c = Cst::new();
        c.intern(b"s", SigStats { count: 3, dur_sum: 30 });
        c.intern(b"s", SigStats { count: 2, dur_sum: 20 });
        assert_eq!(c.stats(0), SigStats { count: 5, dur_sum: 50 });
    }

    #[test]
    fn empty_table_roundtrip() {
        let c = Cst::new();
        let mut buf = Vec::new();
        c.serialize(&mut buf);
        let mut pos = 0;
        let back = Cst::decode(&buf, &mut pos).unwrap();
        assert!(back.is_empty());
    }
}
