//! The merged trace format: a globally merged CST, one grammar generating
//! the concatenation of all ranks' terminal sequences, and (optionally)
//! deduplicated timing grammars. This is what Pilgrim writes to disk; its
//! serialized size is the "trace file size" of every experiment.

use pilgrim_sequitur::{decode_varint, varint_len, write_varint, DecodeError, FlatGrammar};

use crate::cst::Cst;
use crate::encode::EncoderConfig;
use crate::governor::{DegradationEvent, DegradationStage};

/// How one rank's trace entered the merged result (the completeness
/// manifest written by the degraded merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankStatus {
    /// Fully merged through the binomial tree.
    Merged,
    /// Neither merged nor checkpointed. `round` is the 1-based merge
    /// round at which its subtree timed out; 0 means it was lost before
    /// the grammar gather (CST phase or broadcast failure).
    Lost { round: u32 },
    /// Recovered from the rank's last crash-consistent checkpoint, which
    /// covered `calls` traced calls.
    Checkpoint { calls: u64 },
    /// Recovered by [`GlobalTrace::decode_salvage`] from a container
    /// whose per-rank section failed its checksum: the rank's span in the
    /// grammar was inferred (`calls`), and its timing maps are gone.
    Salvaged { calls: u64 },
}

/// Per-rank merge completeness, serialized into the trace format. An
/// empty rank list means every rank merged fully (the common case costs
/// one byte on disk); degradation events appear only when a governed run
/// actually degraded, so ungoverned traces are byte-identical to the
/// pre-governor format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCompleteness {
    /// One status per rank, or empty when all ranks merged.
    pub ranks: Vec<RankStatus>,
    /// Governor transitions, as `(rank, event)` sorted by rank then call
    /// index. Empty for ungoverned or never-pressured runs.
    pub events: Vec<(u32, DegradationEvent)>,
}

impl TraceCompleteness {
    /// A manifest recording that every rank merged fully.
    pub fn complete() -> Self {
        TraceCompleteness::default()
    }

    /// True when every rank's trace was fully merged.
    pub fn is_complete(&self) -> bool {
        self.ranks.iter().all(|s| matches!(s, RankStatus::Merged))
    }

    /// Status of `rank` (ranks beyond the list are fully merged).
    pub fn status(&self, rank: usize) -> RankStatus {
        self.ranks.get(rank).copied().unwrap_or(RankStatus::Merged)
    }

    /// Ranks whose data was lost entirely, with the losing round.
    pub fn lost_ranks(&self) -> Vec<(usize, u32)> {
        self.ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s {
                RankStatus::Lost { round } => Some((r, *round)),
                _ => None,
            })
            .collect()
    }

    /// Ranks recovered from checkpoints, with the covered call count.
    pub fn checkpoint_ranks(&self) -> Vec<(usize, u64)> {
        self.ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s {
                RankStatus::Checkpoint { calls } => Some((r, *calls)),
                _ => None,
            })
            .collect()
    }

    /// Ranks salvaged from a corrupt container, with the inferred span.
    pub fn salvaged_ranks(&self) -> Vec<(usize, u64)> {
        self.ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s {
                RankStatus::Salvaged { calls } => Some((r, *calls)),
                _ => None,
            })
            .collect()
    }

    /// The degradation events recorded for one rank, in call order.
    pub fn events_for(&self, rank: usize) -> impl Iterator<Item = &DegradationEvent> + '_ {
        self.events.iter().filter(move |(r, _)| *r as usize == rank).map(|(_, e)| e)
    }

    /// True when `rank` reached at least `stage` of the degradation
    /// ladder during tracing. Memory rungs order among themselves;
    /// out-of-band stages ([`DegradationStage::LocalSpill`]) match only
    /// exactly — a net-spilled rank has not, e.g., aggregated its timing.
    pub fn rank_reached(&self, rank: usize, stage: DegradationStage) -> bool {
        if !stage.is_memory_rung() {
            return self.events_for(rank).any(|e| e.stage == stage);
        }
        self.events_for(rank).any(|e| e.stage.is_memory_rung() && e.stage >= stage)
    }

    fn serialize(&self, nranks: usize, out: &mut Vec<u8>) {
        // Flag bits: 1 = per-rank status list present, 2 = degradation
        // events present. Plain complete manifests still cost one 0 byte,
        // keeping ungoverned traces byte-identical to the old format.
        let statuses = !self.is_complete();
        let flag = u8::from(statuses) | (u8::from(!self.events.is_empty()) << 1);
        out.push(flag);
        if statuses {
            for r in 0..nranks {
                match self.status(r) {
                    RankStatus::Merged => write_varint(out, 0),
                    RankStatus::Lost { round } => {
                        write_varint(out, 1);
                        write_varint(out, round as u64);
                    }
                    RankStatus::Checkpoint { calls } => {
                        write_varint(out, 2);
                        write_varint(out, calls);
                    }
                    RankStatus::Salvaged { calls } => {
                        write_varint(out, 3);
                        write_varint(out, calls);
                    }
                }
            }
        }
        if !self.events.is_empty() {
            write_varint(out, self.events.len() as u64);
            for (rank, event) in &self.events {
                write_varint(out, *rank as u64);
                event.serialize(out);
            }
        }
    }

    fn byte_size(&self, nranks: usize) -> usize {
        let mut total = 1;
        if !self.is_complete() {
            total += (0..nranks)
                .map(|r| match self.status(r) {
                    RankStatus::Merged => 1,
                    RankStatus::Lost { round } => 1 + varint_len(round as u64),
                    RankStatus::Checkpoint { calls } | RankStatus::Salvaged { calls } => {
                        1 + varint_len(calls)
                    }
                })
                .sum::<usize>();
        }
        if !self.events.is_empty() {
            total += varint_len(self.events.len() as u64);
            total += self
                .events
                .iter()
                .map(|(rank, e)| varint_len(*rank as u64) + e.byte_size())
                .sum::<usize>();
        }
        total
    }

    fn decode(buf: &[u8], pos: &mut usize, nranks: usize) -> Result<Self, DecodeError> {
        let flag_off = *pos;
        let flag = *buf
            .get(*pos)
            .ok_or(DecodeError::Truncated { what: "completeness flag", offset: flag_off })?;
        *pos += 1;
        if flag > 3 {
            return Err(DecodeError::Corrupt { what: "completeness flag", offset: flag_off });
        }
        let mut ranks = Vec::new();
        if flag & 1 != 0 {
            ranks.reserve(nranks);
            for _ in 0..nranks {
                let off = *pos;
                ranks.push(match decode_varint(buf, pos)? {
                    0 => RankStatus::Merged,
                    1 => RankStatus::Lost { round: decode_varint(buf, pos)? as u32 },
                    2 => RankStatus::Checkpoint { calls: decode_varint(buf, pos)? },
                    3 => RankStatus::Salvaged { calls: decode_varint(buf, pos)? },
                    _ => return Err(DecodeError::Corrupt { what: "rank status", offset: off }),
                });
            }
        }
        let mut events = Vec::new();
        if flag & 2 != 0 {
            let count_off = *pos;
            let count = decode_varint(buf, pos)? as usize;
            // Each event costs at least five varint bytes.
            if count > buf.len().saturating_sub(*pos) / 5 + 1 {
                return Err(DecodeError::Corrupt { what: "event count", offset: count_off });
            }
            events.reserve(count);
            for _ in 0..count {
                let rank_off = *pos;
                let rank = decode_varint(buf, pos)?;
                if rank >= nranks as u64 {
                    return Err(DecodeError::Corrupt { what: "event rank", offset: rank_off });
                }
                events.push((rank as u32, DegradationEvent::decode(buf, pos)?));
            }
        }
        Ok(TraceCompleteness { ranks, events })
    }
}

/// Full per-component byte decomposition of a serialized trace. Every
/// serialized byte is attributed to exactly one field, so the components
/// sum to the serialized length ([`SizeReport::full_total`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeReport {
    /// Globally merged call signature table.
    pub cst_bytes: usize,
    /// The merged call-sequence grammar (CFG).
    pub grammar_bytes: usize,
    /// Deduplicated duration grammars (non-aggregated timing mode).
    pub duration_bytes: usize,
    /// Deduplicated interval grammars (non-aggregated timing mode).
    pub interval_bytes: usize,
    /// Fixed header: encoder config byte plus the rank/grammar counts.
    pub header_bytes: usize,
    /// Per-rank call-count varints (split points for the expansion).
    pub rank_length_bytes: usize,
    /// Rank -> timing-grammar index maps.
    pub rank_map_bytes: usize,
    /// Completeness manifest (one byte when every rank merged fully).
    pub manifest_bytes: usize,
}

impl SizeReport {
    /// Metadata bytes: everything that is neither CST, CFG, nor a timing
    /// grammar body.
    pub fn meta_bytes(&self) -> usize {
        self.header_bytes + self.rank_length_bytes + self.rank_map_bytes + self.manifest_bytes
    }

    /// Total trace size excluding non-aggregated timing (the paper reports
    /// timing grammar sizes separately, Fig 10).
    pub fn core_total(&self) -> usize {
        self.cst_bytes + self.grammar_bytes + self.meta_bytes()
    }

    /// Total including timing grammars; equals the serialized length.
    pub fn full_total(&self) -> usize {
        self.core_total() + self.duration_bytes + self.interval_bytes
    }
}

/// Per-trace fidelity summary: which ranks lost what, and why. Built by
/// [`GlobalTrace::fidelity`] from the completeness manifest; surfaced by
/// the query engine and the `trace_tool fidelity` subcommand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FidelityReport {
    /// Every rank merged fully and no degradation events were recorded.
    pub lossless: bool,
    /// Ranks whose call grammar was frozen (structure fidelity kept; the
    /// compression ratio suffers, the call stream does not).
    pub frozen_ranks: Vec<usize>,
    /// Ranks whose per-call timing collapsed to per-signature aggregates.
    pub timing_degraded_ranks: Vec<usize>,
    /// Ranks whose grammar was sealed into segments at least once.
    pub sealed_ranks: Vec<usize>,
    /// Ranks lost entirely in a degraded merge.
    pub lost_ranks: Vec<usize>,
    /// Ranks truncated at their last checkpoint.
    pub checkpoint_ranks: Vec<usize>,
    /// Ranks salvaged from a corrupt container (span inferred).
    pub salvaged_ranks: Vec<usize>,
    /// Ranks whose networked delivery degraded to a local spill file
    /// (call data intact on the client's disk; the wire path gave up).
    pub net_spilled_ranks: Vec<usize>,
    /// Total degradation events recorded.
    pub events: usize,
}

/// The merged, serializable trace.
#[derive(Debug, Clone)]
pub struct GlobalTrace {
    pub nranks: usize,
    pub encoder_cfg: EncoderConfig,
    /// Globally merged call signature table.
    pub cst: Cst,
    /// Grammar generating rank 0's terminals, then rank 1's, etc.
    pub grammar: FlatGrammar,
    /// Number of calls per rank (to split the expansion).
    pub rank_lengths: Vec<u64>,
    /// How many structurally distinct per-rank grammars were observed
    /// before merging (the paper tracks this as its key scaling metric).
    pub unique_grammars: usize,
    /// Deduplicated non-aggregated timing grammars (empty in aggregate
    /// timing mode), plus the rank -> grammar-index maps.
    pub duration_grammars: Vec<FlatGrammar>,
    pub interval_grammars: Vec<FlatGrammar>,
    pub duration_rank_map: Vec<u32>,
    pub interval_rank_map: Vec<u32>,
    /// Per-rank merge completeness (empty = all ranks fully merged).
    pub completeness: TraceCompleteness,
    /// Recorded nondeterministic resolutions (the record/replay
    /// side-channel; `None` for traces recorded without it). Carried by
    /// the `PGND` container section, not the flat serialization.
    pub nondet: Option<crate::nondet::NondetLog>,
}

/// Sentinel in the timing rank maps for a rank with no timing grammar
/// (lost or checkpoint-recovered ranks in a degraded merge).
pub const RANK_MAP_NONE: u32 = u32::MAX;

impl GlobalTrace {
    /// Expands the merged grammar and splits it into per-rank terminal
    /// sequences.
    pub fn decode_all_ranks(&self) -> Vec<Vec<u32>> {
        let all = self.grammar.expand();
        let mut out = Vec::with_capacity(self.nranks);
        let mut pos = 0usize;
        for &len in &self.rank_lengths {
            let len = len as usize;
            out.push(all[pos..pos + len].to_vec());
            pos += len;
        }
        assert_eq!(pos, all.len(), "grammar length mismatch vs rank lengths");
        out
    }

    /// Expands a single rank's terminal sequence.
    pub fn decode_rank(&self, rank: usize) -> Vec<u32> {
        self.decode_all_ranks().swap_remove(rank)
    }

    /// Serializes the trace; the returned buffer's length is the trace
    /// file size.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.encoder_cfg.to_byte());
        write_varint(&mut out, self.nranks as u64);
        write_varint(&mut out, self.unique_grammars as u64);
        for &l in &self.rank_lengths {
            write_varint(&mut out, l);
        }
        self.cst.serialize(&mut out);
        self.grammar.serialize(&mut out);
        write_varint(&mut out, self.duration_grammars.len() as u64);
        for g in &self.duration_grammars {
            g.serialize(&mut out);
        }
        write_varint(&mut out, self.interval_grammars.len() as u64);
        for g in &self.interval_grammars {
            g.serialize(&mut out);
        }
        // Entries are stored +1 so zero encodes the "no grammar" sentinel
        // (a lost rank in a degraded merge has no timing grammar).
        for &m in self.duration_rank_map.iter().chain(&self.interval_rank_map) {
            write_varint(&mut out, if m == RANK_MAP_NONE { 0 } else { m as u64 + 1 });
        }
        self.completeness.serialize(self.nranks, &mut out);
        out
    }

    /// Decodes a trace written by [`GlobalTrace::serialize`], reporting
    /// exactly where a malformed buffer went wrong. The whole buffer must
    /// be consumed; leftover bytes are [`DecodeError::TrailingBytes`].
    pub fn decode(buf: &[u8]) -> Result<GlobalTrace, DecodeError> {
        let mut pos = 0usize;
        let encoder_cfg = EncoderConfig::from_byte(
            *buf.first().ok_or(DecodeError::Truncated { what: "encoder config", offset: 0 })?,
        );
        pos += 1;
        let nranks_off = pos;
        let nranks = decode_varint(buf, &mut pos)? as usize;
        let unique_grammars = decode_varint(buf, &mut pos)? as usize;
        // Each rank contributes at least a one-byte length varint.
        if nranks > buf.len().saturating_sub(pos) + 1 {
            return Err(DecodeError::Corrupt { what: "rank count", offset: nranks_off });
        }
        let mut rank_lengths = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            rank_lengths.push(decode_varint(buf, &mut pos)?);
        }
        let cst = Cst::decode(buf, &mut pos)?;
        let (grammar, used) = FlatGrammar::decode(&buf[pos..]).map_err(|e| e.offset_by(pos))?;
        pos += used;
        let nd_off = pos;
        let nd = decode_varint(buf, &mut pos)? as usize;
        if nd > buf.len().saturating_sub(pos) + 1 {
            return Err(DecodeError::Corrupt { what: "duration grammar count", offset: nd_off });
        }
        let mut duration_grammars = Vec::with_capacity(nd);
        for _ in 0..nd {
            let (g, used) = FlatGrammar::decode(&buf[pos..]).map_err(|e| e.offset_by(pos))?;
            pos += used;
            duration_grammars.push(g);
        }
        let ni_off = pos;
        let ni = decode_varint(buf, &mut pos)? as usize;
        if ni > buf.len().saturating_sub(pos) + 1 {
            return Err(DecodeError::Corrupt { what: "interval grammar count", offset: ni_off });
        }
        let mut interval_grammars = Vec::with_capacity(ni);
        for _ in 0..ni {
            let (g, used) = FlatGrammar::decode(&buf[pos..]).map_err(|e| e.offset_by(pos))?;
            pos += used;
            interval_grammars.push(g);
        }
        let mut duration_rank_map = Vec::with_capacity(nranks);
        let mut interval_rank_map = Vec::with_capacity(nranks);
        if nd > 0 || ni > 0 {
            for (map, pool, what) in [
                (&mut duration_rank_map, nd, "duration rank map"),
                (&mut interval_rank_map, ni, "interval rank map"),
            ] {
                for _ in 0..nranks {
                    let off = pos;
                    // Entries are stored +1; zero is the no-grammar
                    // sentinel (lost ranks in a degraded merge).
                    match decode_varint(buf, &mut pos)?.checked_sub(1) {
                        None => map.push(RANK_MAP_NONE),
                        Some(idx) if idx >= pool as u64 => {
                            return Err(DecodeError::Corrupt { what, offset: off });
                        }
                        Some(idx) => map.push(idx as u32),
                    }
                }
            }
        }
        let completeness = TraceCompleteness::decode(buf, &mut pos, nranks)?;
        if pos != buf.len() {
            return Err(DecodeError::TrailingBytes { consumed: pos, len: buf.len() });
        }
        Ok(GlobalTrace {
            nranks,
            encoder_cfg,
            cst,
            grammar,
            rank_lengths,
            unique_grammars,
            duration_grammars,
            interval_grammars,
            duration_rank_map,
            interval_rank_map,
            completeness,
            nondet: None,
        })
    }

    /// Component size breakdown. Computed analytically from the parts (no
    /// serialization pass), and guaranteed to sum to the serialized length.
    pub fn size_report(&self) -> SizeReport {
        let cst_bytes = self.cst.byte_size();
        let grammar_bytes = self.grammar.byte_size();
        let duration_bytes: usize = self.duration_grammars.iter().map(|g| g.byte_size()).sum();
        let interval_bytes: usize = self.interval_grammars.iter().map(|g| g.byte_size()).sum();
        // Mirrors `serialize` field by field: config byte, three counts...
        let header_bytes = 1
            + varint_len(self.nranks as u64)
            + varint_len(self.unique_grammars as u64)
            + varint_len(self.duration_grammars.len() as u64)
            + varint_len(self.interval_grammars.len() as u64);
        let rank_length_bytes: usize = self.rank_lengths.iter().map(|&l| varint_len(l)).sum();
        let rank_map_bytes: usize = self
            .duration_rank_map
            .iter()
            .chain(&self.interval_rank_map)
            .map(|&m| varint_len(if m == RANK_MAP_NONE { 0 } else { m as u64 + 1 }))
            .sum();
        SizeReport {
            cst_bytes,
            grammar_bytes,
            duration_bytes,
            interval_bytes,
            header_bytes,
            rank_length_bytes,
            rank_map_bytes,
            manifest_bytes: self.completeness.byte_size(self.nranks),
        }
    }

    /// Trace file size in bytes (core trace, timing reported separately).
    pub fn size_bytes(&self) -> usize {
        self.size_report().core_total()
    }

    /// Structural integrity checks beyond what decoding enforces: the
    /// grammar must generate exactly the per-rank lengths, every terminal
    /// must resolve in the CST, the manifest must cover every rank and
    /// agree with the rank lengths, and timing maps must be complete.
    /// Returns a list of human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.rank_lengths.len() != self.nranks {
            problems.push(format!(
                "rank length table has {} entries for {} ranks",
                self.rank_lengths.len(),
                self.nranks
            ));
        }
        let total: u64 = self.rank_lengths.iter().sum();
        let expanded = self.grammar.expanded_len();
        if expanded != total {
            problems.push(format!(
                "grammar generates {expanded} calls but rank lengths sum to {total}"
            ));
        }
        let nsigs = self.cst.len() as u64;
        let mut bad_terms = 0usize;
        for rule in &self.grammar.rules {
            for &(sym, _) in &rule.symbols {
                if let pilgrim_sequitur::Symbol::Terminal(t) = sym {
                    if t as u64 >= nsigs {
                        bad_terms += 1;
                    }
                }
            }
        }
        if bad_terms > 0 {
            problems.push(format!(
                "{bad_terms} grammar terminal(s) reference signatures beyond the CST ({nsigs})"
            ));
        }
        if !self.completeness.ranks.is_empty() && self.completeness.ranks.len() != self.nranks {
            problems.push(format!(
                "completeness manifest covers {} of {} ranks",
                self.completeness.ranks.len(),
                self.nranks
            ));
        }
        for (rank, status) in self.completeness.ranks.iter().enumerate() {
            match status {
                RankStatus::Lost { .. } => {
                    if self.rank_lengths.get(rank).copied().unwrap_or(0) != 0 {
                        problems.push(format!(
                            "rank {rank} is marked lost but contributes {} calls",
                            self.rank_lengths[rank]
                        ));
                    }
                }
                RankStatus::Checkpoint { calls } => {
                    if self.rank_lengths.get(rank).copied().unwrap_or(0) != *calls {
                        problems.push(format!(
                            "rank {rank} checkpoint covers {calls} calls but contributes {}",
                            self.rank_lengths.get(rank).copied().unwrap_or(0)
                        ));
                    }
                }
                RankStatus::Salvaged { calls } => {
                    if self.rank_lengths.get(rank).copied().unwrap_or(0) != *calls {
                        problems.push(format!(
                            "rank {rank} salvaged span is {calls} calls but contributes {}",
                            self.rank_lengths.get(rank).copied().unwrap_or(0)
                        ));
                    }
                }
                RankStatus::Merged => {}
            }
        }
        for (rank, event) in &self.completeness.events {
            if *rank as usize >= self.nranks {
                problems.push(format!(
                    "degradation event at call {} names rank {rank} of {}",
                    event.call_index, self.nranks
                ));
            }
        }
        for (map, pool, name) in [
            (&self.duration_rank_map, self.duration_grammars.len(), "duration"),
            (&self.interval_rank_map, self.interval_grammars.len(), "interval"),
        ] {
            if !map.is_empty() && map.len() != self.nranks {
                problems.push(format!(
                    "{name} rank map has {} entries for {} ranks",
                    map.len(),
                    self.nranks
                ));
            }
            for (rank, &idx) in map.iter().enumerate() {
                if idx != RANK_MAP_NONE && idx as usize >= pool {
                    problems.push(format!(
                        "{name} rank map entry for rank {rank} points past {pool} grammars"
                    ));
                }
                // A merged rank without a timing grammar is only
                // consistent if the governor collapsed its timing.
                if idx == RANK_MAP_NONE
                    && matches!(self.completeness.status(rank), RankStatus::Merged)
                    && !self.completeness.rank_reached(rank, DegradationStage::AggregateTiming)
                {
                    problems.push(format!("rank {rank} merged fully but has no {name} grammar"));
                }
            }
        }
        problems
    }

    /// True when any rank's data is less than fully lossless: a degraded
    /// merge, a governor degradation, or a salvage recovery.
    pub fn is_degraded(&self) -> bool {
        !self.completeness.is_complete() || !self.completeness.events.is_empty()
    }

    /// Summarizes per-rank fidelity from the completeness manifest.
    pub fn fidelity(&self) -> FidelityReport {
        let mut report = FidelityReport { lossless: !self.is_degraded(), ..Default::default() };
        report.events = self.completeness.events.len();
        for rank in 0..self.nranks {
            match self.completeness.status(rank) {
                RankStatus::Merged => {}
                RankStatus::Lost { .. } => report.lost_ranks.push(rank),
                RankStatus::Checkpoint { .. } => report.checkpoint_ranks.push(rank),
                RankStatus::Salvaged { .. } => report.salvaged_ranks.push(rank),
            }
            if self.completeness.rank_reached(rank, DegradationStage::FreezeGrammar) {
                report.frozen_ranks.push(rank);
            }
            if self.completeness.rank_reached(rank, DegradationStage::AggregateTiming) {
                report.timing_degraded_ranks.push(rank);
            }
            if self.completeness.rank_reached(rank, DegradationStage::SealSegment) {
                report.sealed_ranks.push(rank);
            }
            if self.completeness.rank_reached(rank, DegradationStage::LocalSpill) {
                report.net_spilled_ranks.push(rank);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilgrim_sequitur::Grammar;

    fn tiny_trace() -> GlobalTrace {
        let mut cst = Cst::new();
        cst.observe(b"a", 10);
        cst.observe(b"b", 20);
        let mut g = Grammar::new();
        for _ in 0..3 {
            g.push(0);
            g.push(1);
        }
        GlobalTrace {
            nranks: 2,
            encoder_cfg: EncoderConfig::default(),
            cst,
            grammar: g.to_flat(),
            rank_lengths: vec![4, 2],
            unique_grammars: 1,
            duration_grammars: vec![],
            interval_grammars: vec![],
            duration_rank_map: vec![],
            interval_rank_map: vec![],
            completeness: TraceCompleteness::complete(),
            nondet: None,
        }
    }

    #[test]
    fn decode_splits_by_rank_lengths() {
        let t = tiny_trace();
        let ranks = t.decode_all_ranks();
        assert_eq!(ranks[0], vec![0, 1, 0, 1]);
        assert_eq!(ranks[1], vec![0, 1]);
    }

    #[test]
    fn serialize_roundtrip() {
        let t = tiny_trace();
        let bytes = t.serialize();
        let back = GlobalTrace::decode(&bytes).expect("decodable");
        assert_eq!(back.nranks, 2);
        assert_eq!(back.rank_lengths, vec![4, 2]);
        assert_eq!(back.unique_grammars, 1);
        assert_eq!(back.decode_all_ranks(), t.decode_all_ranks());
        assert_eq!(back.cst.len(), 2);
    }

    #[test]
    fn size_report_components_sum() {
        let t = tiny_trace();
        let r = t.size_report();
        assert_eq!(r.full_total(), t.serialize().len());
        assert!(r.cst_bytes > 0 && r.grammar_bytes > 0);
    }

    #[test]
    fn timing_grammars_roundtrip() {
        let mut t = tiny_trace();
        let mut dg = Grammar::new();
        dg.push_run(5, 10);
        t.duration_grammars = vec![dg.to_flat()];
        t.interval_grammars = vec![dg.to_flat()];
        t.duration_rank_map = vec![0, 0];
        t.interval_rank_map = vec![0, 0];
        let back = GlobalTrace::decode(&t.serialize()).unwrap();
        assert_eq!(back.duration_grammars.len(), 1);
        assert_eq!(back.duration_rank_map, vec![0, 0]);
        assert_eq!(back.duration_grammars[0].expanded_len(), 10);
    }

    #[test]
    fn manifest_roundtrips_and_costs_one_byte_when_complete() {
        let t = tiny_trace();
        assert!(t.completeness.is_complete());
        assert_eq!(t.size_report().manifest_bytes, 1);
        let back = GlobalTrace::decode(&t.serialize()).unwrap();
        assert!(back.completeness.is_complete());

        let mut d = tiny_trace();
        d.rank_lengths = vec![6, 0];
        d.completeness = TraceCompleteness {
            ranks: vec![RankStatus::Merged, RankStatus::Lost { round: 1 }],
            ..Default::default()
        };
        let back = GlobalTrace::decode(&d.serialize()).unwrap();
        assert_eq!(back.completeness.status(1), RankStatus::Lost { round: 1 });
        assert_eq!(back.completeness.lost_ranks(), vec![(1, 1)]);
        assert!(!back.completeness.is_complete());
        assert_eq!(d.size_report().full_total(), d.serialize().len());
    }

    #[test]
    fn checkpoint_status_roundtrips() {
        let mut t = tiny_trace();
        t.rank_lengths = vec![4, 2];
        t.completeness = TraceCompleteness {
            ranks: vec![RankStatus::Merged, RankStatus::Checkpoint { calls: 2 }],
            ..Default::default()
        };
        let back = GlobalTrace::decode(&t.serialize()).unwrap();
        assert_eq!(back.completeness.checkpoint_ranks(), vec![(1, 2)]);
        assert!(back.validate().is_empty(), "{:?}", back.validate());
    }

    #[test]
    fn rank_map_sentinel_roundtrips() {
        let mut t = tiny_trace();
        let mut dg = Grammar::new();
        dg.push_run(5, 4);
        t.rank_lengths = vec![6, 0];
        t.duration_grammars = vec![dg.to_flat()];
        t.interval_grammars = vec![dg.to_flat()];
        t.duration_rank_map = vec![0, RANK_MAP_NONE];
        t.interval_rank_map = vec![0, RANK_MAP_NONE];
        t.completeness = TraceCompleteness {
            ranks: vec![RankStatus::Merged, RankStatus::Lost { round: 2 }],
            ..Default::default()
        };
        let bytes = t.serialize();
        assert_eq!(t.size_report().full_total(), bytes.len());
        let back = GlobalTrace::decode(&bytes).unwrap();
        assert_eq!(back.duration_rank_map, vec![0, RANK_MAP_NONE]);
        assert!(back.validate().is_empty(), "{:?}", back.validate());
    }

    #[test]
    fn validate_flags_inconsistencies() {
        let mut t = tiny_trace();
        assert!(t.validate().is_empty());
        // Lost rank that still claims calls.
        t.completeness = TraceCompleteness {
            ranks: vec![RankStatus::Merged, RankStatus::Lost { round: 1 }],
            ..Default::default()
        };
        assert!(!t.validate().is_empty());
        // Rank lengths that disagree with the grammar.
        let mut t2 = tiny_trace();
        t2.rank_lengths = vec![4, 3];
        assert!(!t2.validate().is_empty());
    }

    fn sample_event(call_index: u64, stage: DegradationStage) -> DegradationEvent {
        DegradationEvent {
            call_index,
            stage,
            component: crate::governor::Component::CallGrammar,
            bytes: 4096,
        }
    }

    #[test]
    fn degradation_events_roundtrip_and_cost_nothing_when_absent() {
        // No events: the manifest is the legacy single zero byte.
        let clean = tiny_trace();
        assert_eq!(clean.size_report().manifest_bytes, 1);

        let mut t = tiny_trace();
        t.completeness.events = vec![
            (0, sample_event(10, DegradationStage::FreezeGrammar)),
            (0, sample_event(20, DegradationStage::AggregateTiming)),
            (1, sample_event(15, DegradationStage::SealSegment)),
        ];
        let bytes = t.serialize();
        assert_eq!(t.size_report().full_total(), bytes.len());
        let back = GlobalTrace::decode(&bytes).unwrap();
        assert_eq!(back.completeness.events, t.completeness.events);
        assert!(back.completeness.is_complete(), "events alone keep ranks merged");
        assert!(back.is_degraded());
        assert_eq!(back.completeness.events_for(0).count(), 2);
        assert!(back.completeness.rank_reached(0, DegradationStage::AggregateTiming));
        assert!(!back.completeness.rank_reached(0, DegradationStage::SealSegment));
        assert!(back.validate().is_empty(), "{:?}", back.validate());
    }

    #[test]
    fn salvaged_status_roundtrips_and_validates() {
        let mut t = tiny_trace();
        t.completeness = TraceCompleteness {
            ranks: vec![RankStatus::Merged, RankStatus::Salvaged { calls: 2 }],
            ..Default::default()
        };
        let bytes = t.serialize();
        assert_eq!(t.size_report().full_total(), bytes.len());
        let back = GlobalTrace::decode(&bytes).unwrap();
        assert_eq!(back.completeness.status(1), RankStatus::Salvaged { calls: 2 });
        assert_eq!(back.completeness.salvaged_ranks(), vec![(1, 2)]);
        assert!(back.validate().is_empty(), "{:?}", back.validate());
        assert_eq!(back.fidelity().salvaged_ranks, vec![1]);
        assert!(!back.fidelity().lossless);
    }

    #[test]
    fn timing_degraded_rank_passes_validate_with_event() {
        let mut t = tiny_trace();
        let mut dg = Grammar::new();
        dg.push_run(5, 6);
        t.duration_grammars = vec![dg.to_flat()];
        t.interval_grammars = vec![dg.to_flat()];
        // Rank 1 dropped its timing mid-run: map sentinel + an event.
        t.duration_rank_map = vec![0, RANK_MAP_NONE];
        t.interval_rank_map = vec![0, RANK_MAP_NONE];
        t.completeness.events = vec![(1, sample_event(3, DegradationStage::AggregateTiming))];
        let back = GlobalTrace::decode(&t.serialize()).unwrap();
        assert!(back.validate().is_empty(), "{:?}", back.validate());
        assert_eq!(back.fidelity().timing_degraded_ranks, vec![1]);
        // Without the event the same trace is inconsistent.
        let mut bad = back.clone();
        bad.completeness.events.clear();
        assert!(!bad.validate().is_empty());
    }

    #[test]
    fn fidelity_of_clean_trace_is_lossless() {
        let t = tiny_trace();
        let f = t.fidelity();
        assert!(f.lossless);
        assert!(f.frozen_ranks.is_empty() && f.sealed_ranks.is_empty());
        assert_eq!(f.events, 0);
    }
}
