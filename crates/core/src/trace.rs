//! The merged trace format: a globally merged CST, one grammar generating
//! the concatenation of all ranks' terminal sequences, and (optionally)
//! deduplicated timing grammars. This is what Pilgrim writes to disk; its
//! serialized size is the "trace file size" of every experiment.

use pilgrim_sequitur::{read_varint, write_varint, FlatGrammar};

use crate::cst::Cst;
use crate::encode::EncoderConfig;

/// Size breakdown of a serialized trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeReport {
    pub cst_bytes: usize,
    pub grammar_bytes: usize,
    pub duration_bytes: usize,
    pub interval_bytes: usize,
    pub meta_bytes: usize,
}

impl SizeReport {
    /// Total trace size excluding non-aggregated timing (the paper reports
    /// timing grammar sizes separately, Fig 10).
    pub fn core_total(&self) -> usize {
        self.cst_bytes + self.grammar_bytes + self.meta_bytes
    }

    /// Total including timing grammars.
    pub fn full_total(&self) -> usize {
        self.core_total() + self.duration_bytes + self.interval_bytes
    }
}

/// The merged, serializable trace.
#[derive(Debug, Clone)]
pub struct GlobalTrace {
    pub nranks: usize,
    pub encoder_cfg: EncoderConfig,
    /// Globally merged call signature table.
    pub cst: Cst,
    /// Grammar generating rank 0's terminals, then rank 1's, etc.
    pub grammar: FlatGrammar,
    /// Number of calls per rank (to split the expansion).
    pub rank_lengths: Vec<u64>,
    /// How many structurally distinct per-rank grammars were observed
    /// before merging (the paper tracks this as its key scaling metric).
    pub unique_grammars: usize,
    /// Deduplicated non-aggregated timing grammars (empty in aggregate
    /// timing mode), plus the rank -> grammar-index maps.
    pub duration_grammars: Vec<FlatGrammar>,
    pub interval_grammars: Vec<FlatGrammar>,
    pub duration_rank_map: Vec<u32>,
    pub interval_rank_map: Vec<u32>,
}

impl GlobalTrace {
    /// Expands the merged grammar and splits it into per-rank terminal
    /// sequences.
    pub fn decode_all_ranks(&self) -> Vec<Vec<u32>> {
        let all = self.grammar.expand();
        let mut out = Vec::with_capacity(self.nranks);
        let mut pos = 0usize;
        for &len in &self.rank_lengths {
            let len = len as usize;
            out.push(all[pos..pos + len].to_vec());
            pos += len;
        }
        assert_eq!(pos, all.len(), "grammar length mismatch vs rank lengths");
        out
    }

    /// Expands a single rank's terminal sequence.
    pub fn decode_rank(&self, rank: usize) -> Vec<u32> {
        self.decode_all_ranks().swap_remove(rank)
    }

    /// Serializes the trace; the returned buffer's length is the trace
    /// file size.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.encoder_cfg.to_byte());
        write_varint(&mut out, self.nranks as u64);
        write_varint(&mut out, self.unique_grammars as u64);
        for &l in &self.rank_lengths {
            write_varint(&mut out, l);
        }
        self.cst.serialize(&mut out);
        self.grammar.serialize(&mut out);
        write_varint(&mut out, self.duration_grammars.len() as u64);
        for g in &self.duration_grammars {
            g.serialize(&mut out);
        }
        write_varint(&mut out, self.interval_grammars.len() as u64);
        for g in &self.interval_grammars {
            g.serialize(&mut out);
        }
        for &m in &self.duration_rank_map {
            write_varint(&mut out, m as u64 + 1);
        }
        for &m in &self.interval_rank_map {
            write_varint(&mut out, m as u64 + 1);
        }
        out
    }

    /// Deserializes a trace written by [`GlobalTrace::serialize`].
    pub fn deserialize(buf: &[u8]) -> Option<GlobalTrace> {
        let mut pos = 0usize;
        let encoder_cfg = EncoderConfig::from_byte(*buf.first()?);
        pos += 1;
        let nranks = read_varint(buf, &mut pos)? as usize;
        let unique_grammars = read_varint(buf, &mut pos)? as usize;
        let mut rank_lengths = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            rank_lengths.push(read_varint(buf, &mut pos)?);
        }
        let cst = Cst::deserialize(buf, &mut pos)?;
        let (grammar, used) = FlatGrammar::deserialize(&buf[pos..])?;
        pos += used;
        let nd = read_varint(buf, &mut pos)? as usize;
        let mut duration_grammars = Vec::with_capacity(nd);
        for _ in 0..nd {
            let (g, used) = FlatGrammar::deserialize(&buf[pos..])?;
            pos += used;
            duration_grammars.push(g);
        }
        let ni = read_varint(buf, &mut pos)? as usize;
        let mut interval_grammars = Vec::with_capacity(ni);
        for _ in 0..ni {
            let (g, used) = FlatGrammar::deserialize(&buf[pos..])?;
            pos += used;
            interval_grammars.push(g);
        }
        let mut duration_rank_map = Vec::with_capacity(nranks);
        let mut interval_rank_map = Vec::with_capacity(nranks);
        if nd > 0 || ni > 0 {
            for _ in 0..nranks {
                duration_rank_map.push((read_varint(buf, &mut pos)? - 1) as u32);
            }
            for _ in 0..nranks {
                interval_rank_map.push((read_varint(buf, &mut pos)? - 1) as u32);
            }
        }
        Some(GlobalTrace {
            nranks,
            encoder_cfg,
            cst,
            grammar,
            rank_lengths,
            unique_grammars,
            duration_grammars,
            interval_grammars,
            duration_rank_map,
            interval_rank_map,
        })
    }

    /// Component size breakdown.
    pub fn size_report(&self) -> SizeReport {
        let cst_bytes = self.cst.byte_size();
        let grammar_bytes = self.grammar.byte_size();
        let duration_bytes: usize = self.duration_grammars.iter().map(|g| g.byte_size()).sum();
        let interval_bytes: usize = self.interval_grammars.iter().map(|g| g.byte_size()).sum();
        let total = self.serialize().len();
        SizeReport {
            cst_bytes,
            grammar_bytes,
            duration_bytes,
            interval_bytes,
            meta_bytes: total - cst_bytes - grammar_bytes - duration_bytes - interval_bytes,
        }
    }

    /// Trace file size in bytes (core trace, timing reported separately).
    pub fn size_bytes(&self) -> usize {
        self.size_report().core_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilgrim_sequitur::Grammar;

    fn tiny_trace() -> GlobalTrace {
        let mut cst = Cst::new();
        cst.observe(b"a", 10);
        cst.observe(b"b", 20);
        let mut g = Grammar::new();
        for _ in 0..3 {
            g.push(0);
            g.push(1);
        }
        GlobalTrace {
            nranks: 2,
            encoder_cfg: EncoderConfig::default(),
            cst,
            grammar: g.to_flat(),
            rank_lengths: vec![4, 2],
            unique_grammars: 1,
            duration_grammars: vec![],
            interval_grammars: vec![],
            duration_rank_map: vec![],
            interval_rank_map: vec![],
        }
    }

    #[test]
    fn decode_splits_by_rank_lengths() {
        let t = tiny_trace();
        let ranks = t.decode_all_ranks();
        assert_eq!(ranks[0], vec![0, 1, 0, 1]);
        assert_eq!(ranks[1], vec![0, 1]);
    }

    #[test]
    fn serialize_roundtrip() {
        let t = tiny_trace();
        let bytes = t.serialize();
        let back = GlobalTrace::deserialize(&bytes).expect("deserializable");
        assert_eq!(back.nranks, 2);
        assert_eq!(back.rank_lengths, vec![4, 2]);
        assert_eq!(back.unique_grammars, 1);
        assert_eq!(back.decode_all_ranks(), t.decode_all_ranks());
        assert_eq!(back.cst.len(), 2);
    }

    #[test]
    fn size_report_components_sum() {
        let t = tiny_trace();
        let r = t.size_report();
        assert_eq!(r.full_total(), t.serialize().len());
        assert!(r.cst_bytes > 0 && r.grammar_bytes > 0);
    }

    #[test]
    fn timing_grammars_roundtrip() {
        let mut t = tiny_trace();
        let mut dg = Grammar::new();
        dg.push_run(5, 10);
        t.duration_grammars = vec![dg.to_flat()];
        t.interval_grammars = vec![dg.to_flat()];
        t.duration_rank_map = vec![0, 0];
        t.interval_rank_map = vec![0, 0];
        let back = GlobalTrace::deserialize(&t.serialize()).unwrap();
        assert_eq!(back.duration_grammars.len(), 1);
        assert_eq!(back.duration_rank_map, vec![0, 0]);
        assert_eq!(back.duration_grammars[0].expanded_len(), 10);
    }
}
