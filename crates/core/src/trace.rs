//! The merged trace format: a globally merged CST, one grammar generating
//! the concatenation of all ranks' terminal sequences, and (optionally)
//! deduplicated timing grammars. This is what Pilgrim writes to disk; its
//! serialized size is the "trace file size" of every experiment.

use pilgrim_sequitur::{decode_varint, varint_len, write_varint, DecodeError, FlatGrammar};

use crate::cst::Cst;
use crate::encode::EncoderConfig;

/// Full per-component byte decomposition of a serialized trace. Every
/// serialized byte is attributed to exactly one field, so the components
/// sum to the serialized length ([`SizeReport::full_total`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeReport {
    /// Globally merged call signature table.
    pub cst_bytes: usize,
    /// The merged call-sequence grammar (CFG).
    pub grammar_bytes: usize,
    /// Deduplicated duration grammars (non-aggregated timing mode).
    pub duration_bytes: usize,
    /// Deduplicated interval grammars (non-aggregated timing mode).
    pub interval_bytes: usize,
    /// Fixed header: encoder config byte plus the rank/grammar counts.
    pub header_bytes: usize,
    /// Per-rank call-count varints (split points for the expansion).
    pub rank_length_bytes: usize,
    /// Rank -> timing-grammar index maps.
    pub rank_map_bytes: usize,
}

impl SizeReport {
    /// Metadata bytes: everything that is neither CST, CFG, nor a timing
    /// grammar body.
    pub fn meta_bytes(&self) -> usize {
        self.header_bytes + self.rank_length_bytes + self.rank_map_bytes
    }

    /// Total trace size excluding non-aggregated timing (the paper reports
    /// timing grammar sizes separately, Fig 10).
    pub fn core_total(&self) -> usize {
        self.cst_bytes + self.grammar_bytes + self.meta_bytes()
    }

    /// Total including timing grammars; equals the serialized length.
    pub fn full_total(&self) -> usize {
        self.core_total() + self.duration_bytes + self.interval_bytes
    }
}

/// The merged, serializable trace.
#[derive(Debug, Clone)]
pub struct GlobalTrace {
    pub nranks: usize,
    pub encoder_cfg: EncoderConfig,
    /// Globally merged call signature table.
    pub cst: Cst,
    /// Grammar generating rank 0's terminals, then rank 1's, etc.
    pub grammar: FlatGrammar,
    /// Number of calls per rank (to split the expansion).
    pub rank_lengths: Vec<u64>,
    /// How many structurally distinct per-rank grammars were observed
    /// before merging (the paper tracks this as its key scaling metric).
    pub unique_grammars: usize,
    /// Deduplicated non-aggregated timing grammars (empty in aggregate
    /// timing mode), plus the rank -> grammar-index maps.
    pub duration_grammars: Vec<FlatGrammar>,
    pub interval_grammars: Vec<FlatGrammar>,
    pub duration_rank_map: Vec<u32>,
    pub interval_rank_map: Vec<u32>,
}

impl GlobalTrace {
    /// Expands the merged grammar and splits it into per-rank terminal
    /// sequences.
    pub fn decode_all_ranks(&self) -> Vec<Vec<u32>> {
        let all = self.grammar.expand();
        let mut out = Vec::with_capacity(self.nranks);
        let mut pos = 0usize;
        for &len in &self.rank_lengths {
            let len = len as usize;
            out.push(all[pos..pos + len].to_vec());
            pos += len;
        }
        assert_eq!(pos, all.len(), "grammar length mismatch vs rank lengths");
        out
    }

    /// Expands a single rank's terminal sequence.
    pub fn decode_rank(&self, rank: usize) -> Vec<u32> {
        self.decode_all_ranks().swap_remove(rank)
    }

    /// Serializes the trace; the returned buffer's length is the trace
    /// file size.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.encoder_cfg.to_byte());
        write_varint(&mut out, self.nranks as u64);
        write_varint(&mut out, self.unique_grammars as u64);
        for &l in &self.rank_lengths {
            write_varint(&mut out, l);
        }
        self.cst.serialize(&mut out);
        self.grammar.serialize(&mut out);
        write_varint(&mut out, self.duration_grammars.len() as u64);
        for g in &self.duration_grammars {
            g.serialize(&mut out);
        }
        write_varint(&mut out, self.interval_grammars.len() as u64);
        for g in &self.interval_grammars {
            g.serialize(&mut out);
        }
        for &m in &self.duration_rank_map {
            write_varint(&mut out, m as u64 + 1);
        }
        for &m in &self.interval_rank_map {
            write_varint(&mut out, m as u64 + 1);
        }
        out
    }

    /// Deserializes a trace written by [`GlobalTrace::serialize`].
    #[deprecated(
        since = "0.1.0",
        note = "use `GlobalTrace::decode`, which reports why decoding failed"
    )]
    pub fn deserialize(buf: &[u8]) -> Option<GlobalTrace> {
        Self::decode(buf).ok()
    }

    /// Decodes a trace written by [`GlobalTrace::serialize`], reporting
    /// exactly where a malformed buffer went wrong. The whole buffer must
    /// be consumed; leftover bytes are [`DecodeError::TrailingBytes`].
    pub fn decode(buf: &[u8]) -> Result<GlobalTrace, DecodeError> {
        let mut pos = 0usize;
        let encoder_cfg = EncoderConfig::from_byte(
            *buf.first().ok_or(DecodeError::Truncated { what: "encoder config", offset: 0 })?,
        );
        pos += 1;
        let nranks_off = pos;
        let nranks = decode_varint(buf, &mut pos)? as usize;
        let unique_grammars = decode_varint(buf, &mut pos)? as usize;
        // Each rank contributes at least a one-byte length varint.
        if nranks > buf.len().saturating_sub(pos) + 1 {
            return Err(DecodeError::Corrupt { what: "rank count", offset: nranks_off });
        }
        let mut rank_lengths = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            rank_lengths.push(decode_varint(buf, &mut pos)?);
        }
        let cst = Cst::decode(buf, &mut pos)?;
        let (grammar, used) = FlatGrammar::decode(&buf[pos..]).map_err(|e| e.offset_by(pos))?;
        pos += used;
        let nd_off = pos;
        let nd = decode_varint(buf, &mut pos)? as usize;
        if nd > buf.len().saturating_sub(pos) + 1 {
            return Err(DecodeError::Corrupt { what: "duration grammar count", offset: nd_off });
        }
        let mut duration_grammars = Vec::with_capacity(nd);
        for _ in 0..nd {
            let (g, used) = FlatGrammar::decode(&buf[pos..]).map_err(|e| e.offset_by(pos))?;
            pos += used;
            duration_grammars.push(g);
        }
        let ni_off = pos;
        let ni = decode_varint(buf, &mut pos)? as usize;
        if ni > buf.len().saturating_sub(pos) + 1 {
            return Err(DecodeError::Corrupt { what: "interval grammar count", offset: ni_off });
        }
        let mut interval_grammars = Vec::with_capacity(ni);
        for _ in 0..ni {
            let (g, used) = FlatGrammar::decode(&buf[pos..]).map_err(|e| e.offset_by(pos))?;
            pos += used;
            interval_grammars.push(g);
        }
        let mut duration_rank_map = Vec::with_capacity(nranks);
        let mut interval_rank_map = Vec::with_capacity(nranks);
        if nd > 0 || ni > 0 {
            for (map, pool, what) in [
                (&mut duration_rank_map, nd, "duration rank map"),
                (&mut interval_rank_map, ni, "interval rank map"),
            ] {
                for _ in 0..nranks {
                    let off = pos;
                    // Entries are stored +1 so zero is never a valid byte.
                    let idx = decode_varint(buf, &mut pos)?
                        .checked_sub(1)
                        .ok_or(DecodeError::Corrupt { what, offset: off })?;
                    if idx >= pool as u64 {
                        return Err(DecodeError::Corrupt { what, offset: off });
                    }
                    map.push(idx as u32);
                }
            }
        }
        if pos != buf.len() {
            return Err(DecodeError::TrailingBytes { consumed: pos, len: buf.len() });
        }
        Ok(GlobalTrace {
            nranks,
            encoder_cfg,
            cst,
            grammar,
            rank_lengths,
            unique_grammars,
            duration_grammars,
            interval_grammars,
            duration_rank_map,
            interval_rank_map,
        })
    }

    /// Component size breakdown. Computed analytically from the parts (no
    /// serialization pass), and guaranteed to sum to the serialized length.
    pub fn size_report(&self) -> SizeReport {
        let cst_bytes = self.cst.byte_size();
        let grammar_bytes = self.grammar.byte_size();
        let duration_bytes: usize = self.duration_grammars.iter().map(|g| g.byte_size()).sum();
        let interval_bytes: usize = self.interval_grammars.iter().map(|g| g.byte_size()).sum();
        // Mirrors `serialize` field by field: config byte, three counts...
        let header_bytes = 1
            + varint_len(self.nranks as u64)
            + varint_len(self.unique_grammars as u64)
            + varint_len(self.duration_grammars.len() as u64)
            + varint_len(self.interval_grammars.len() as u64);
        let rank_length_bytes: usize = self.rank_lengths.iter().map(|&l| varint_len(l)).sum();
        let rank_map_bytes: usize = self
            .duration_rank_map
            .iter()
            .chain(&self.interval_rank_map)
            .map(|&m| varint_len(m as u64 + 1))
            .sum();
        SizeReport {
            cst_bytes,
            grammar_bytes,
            duration_bytes,
            interval_bytes,
            header_bytes,
            rank_length_bytes,
            rank_map_bytes,
        }
    }

    /// Trace file size in bytes (core trace, timing reported separately).
    pub fn size_bytes(&self) -> usize {
        self.size_report().core_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilgrim_sequitur::Grammar;

    fn tiny_trace() -> GlobalTrace {
        let mut cst = Cst::new();
        cst.observe(b"a", 10);
        cst.observe(b"b", 20);
        let mut g = Grammar::new();
        for _ in 0..3 {
            g.push(0);
            g.push(1);
        }
        GlobalTrace {
            nranks: 2,
            encoder_cfg: EncoderConfig::default(),
            cst,
            grammar: g.to_flat(),
            rank_lengths: vec![4, 2],
            unique_grammars: 1,
            duration_grammars: vec![],
            interval_grammars: vec![],
            duration_rank_map: vec![],
            interval_rank_map: vec![],
        }
    }

    #[test]
    fn decode_splits_by_rank_lengths() {
        let t = tiny_trace();
        let ranks = t.decode_all_ranks();
        assert_eq!(ranks[0], vec![0, 1, 0, 1]);
        assert_eq!(ranks[1], vec![0, 1]);
    }

    #[test]
    fn serialize_roundtrip() {
        let t = tiny_trace();
        let bytes = t.serialize();
        let back = GlobalTrace::decode(&bytes).expect("decodable");
        assert_eq!(back.nranks, 2);
        assert_eq!(back.rank_lengths, vec![4, 2]);
        assert_eq!(back.unique_grammars, 1);
        assert_eq!(back.decode_all_ranks(), t.decode_all_ranks());
        assert_eq!(back.cst.len(), 2);
    }

    #[test]
    fn size_report_components_sum() {
        let t = tiny_trace();
        let r = t.size_report();
        assert_eq!(r.full_total(), t.serialize().len());
        assert!(r.cst_bytes > 0 && r.grammar_bytes > 0);
    }

    #[test]
    fn timing_grammars_roundtrip() {
        let mut t = tiny_trace();
        let mut dg = Grammar::new();
        dg.push_run(5, 10);
        t.duration_grammars = vec![dg.to_flat()];
        t.interval_grammars = vec![dg.to_flat()];
        t.duration_rank_map = vec![0, 0];
        t.interval_rank_map = vec![0, 0];
        let back = GlobalTrace::decode(&t.serialize()).unwrap();
        assert_eq!(back.duration_grammars.len(), 1);
        assert_eq!(back.duration_rank_map, vec![0, 0]);
        assert_eq!(back.duration_grammars[0].expanded_len(), 10);
    }
}
