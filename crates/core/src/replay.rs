//! Mini-app generation: replaying a Pilgrim trace as a live program.
//!
//! The paper's conclusion sketches this as future work: "a mini-app
//! generator that could automatically generate a proxy MPI program that
//! has the same communication patterns as captured in the traces". This
//! module implements it against the simulator: [`replay`] decodes every
//! rank's call sequence from a merged trace and re-issues the calls,
//! resolving symbolic ids back to live objects:
//!
//! * communicator symbols are rebuilt by re-executing the recorded
//!   creation calls (dup/split/create/idup/intercomm) in order;
//! * datatype symbols are rebuilt from the recorded constructors;
//! * memory segments are materialized as fresh allocations, sized from
//!   the transfers that use them;
//! * request symbols map to live requests; because completion order is
//!   nondeterministic, a replay reproduces the *pattern* (which calls,
//!   which partners, which sizes), not the original completion order —
//!   the wait/test family is re-driven live.

use std::collections::HashMap;
use std::sync::Arc;

use mpi_sim::comm::{CommHandle, GroupHandle};
use mpi_sim::datatype::DatatypeHandle;
use mpi_sim::request::{RequestHandle, REQUEST_NULL};
use mpi_sim::types::ReduceOp;
use mpi_sim::{Env, FuncId, World, WorldConfig};

use crate::encode::{EncodedArg, EncodedCall, RankCode};
use crate::governor::DegradationStage;
use crate::trace::{GlobalTrace, RankStatus};
use crate::tracer::{PilgrimConfig, PilgrimTracer};

/// What a degraded trace can and cannot replay, per rank.
///
/// A live replay ([`replay_and_retrace`]) re-runs every rank's sequence
/// concurrently; a rank that is truncated (checkpoint-recovered) or lost
/// stops short of its matching sends/receives, so only the fully merged
/// ranks replay as a world. Truncated ranks still *decode* — their calls
/// can be inspected or diffed up to the checkpoint boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialReplayReport {
    /// Fully merged ranks: decodable and live-replayable.
    pub replayable_ranks: Vec<usize>,
    /// Checkpoint-recovered ranks with the call count each covers:
    /// decodable up to that boundary, not live-replayable.
    pub truncated_ranks: Vec<(usize, u64)>,
    /// Ranks with no data at all (and the merge round that lost them).
    pub lost_ranks: Vec<(usize, u32)>,
    /// Ranks recovered section-by-section from a corrupted container with
    /// the call count each spans: decodable, not live-replayable (their
    /// stats and timing may be gone).
    pub salvaged_ranks: Vec<(usize, u64)>,
    /// Ranks whose data reached this trace through a local spill instead
    /// of the network ([`DegradationStage::LocalSpill`]). Their calls are
    /// intact — they replay fine — but the collection path was degraded,
    /// consistent with [`crate::trace::FidelityReport::net_spilled_ranks`].
    pub net_spilled_ranks: Vec<usize>,
}

impl PartialReplayReport {
    /// True when every rank merged fully (a plain [`replay`] is safe).
    pub fn is_fully_replayable(&self) -> bool {
        self.truncated_ranks.is_empty()
            && self.lost_ranks.is_empty()
            && self.salvaged_ranks.is_empty()
    }
}

/// Classifies every rank of a possibly degraded trace by what a replay
/// can do with it (driven by the trace's completeness manifest).
pub fn partial_replay_report(trace: &GlobalTrace) -> PartialReplayReport {
    let mut report = PartialReplayReport::default();
    for rank in 0..trace.nranks {
        match trace.completeness.status(rank) {
            RankStatus::Merged => report.replayable_ranks.push(rank),
            RankStatus::Checkpoint { calls } => report.truncated_ranks.push((rank, calls)),
            RankStatus::Lost { round } => report.lost_ranks.push((rank, round)),
            RankStatus::Salvaged { calls } => report.salvaged_ranks.push((rank, calls)),
        }
        if trace.completeness.rank_reached(rank, DegradationStage::LocalSpill) {
            report.net_spilled_ranks.push(rank);
        }
    }
    report
}

/// Replays `trace` as a fresh world and re-traces it with Pilgrim,
/// returning the trace of the replay. A faithful replay produces a trace
/// with the same shape (signature count, per-rank call counts for
/// deterministic programs).
pub fn replay_and_retrace(trace: &GlobalTrace, cfg: PilgrimConfig) -> GlobalTrace {
    let per_rank: Arc<Vec<Vec<EncodedCall>>> = Arc::new(
        (0..trace.nranks)
            .map(|r| {
                crate::decode::decode_rank_calls(trace, r)
                    .unwrap_or_else(|e| panic!("rank {r} undecodable: {e}"))
            })
            .collect(),
    );
    let mut tracers = World::run(
        &WorldConfig::new(trace.nranks),
        |rank| PilgrimTracer::new(rank, cfg),
        move |env| {
            let calls = &per_rank[env.world_rank()];
            let mut rp = Replayer::new();
            for call in calls {
                rp.step(env, call);
            }
            rp.drain(env);
        },
    );
    tracers[0].take_output().trace.expect("replay trace")
}

/// Per-rank replay state: symbolic id -> live object maps.
pub(crate) struct Replayer {
    comms: HashMap<u64, CommHandle>,
    /// Handles of idup'd communicators whose symbolic id is not yet known
    /// (the trace carries a deferred marker at the idup itself).
    pending_idups: Vec<CommHandle>,
    dtypes: HashMap<u64, DatatypeHandle>,
    groups: HashMap<u64, GroupHandle>,
    /// Symbolic request ids are unique only within their (per-signature)
    /// pool, so several live requests can share a symbol: keep a FIFO of
    /// live handles per symbol.
    reqs: HashMap<u64, Vec<RequestHandle>>,
    segs: HashMap<u64, (u64, u64)>, // seg sym -> (addr, size)
    /// Directed replay (`pilgrim::rr`): a [`mpi_sim::ReplayDirector`] is
    /// installed, so blocking probes are re-issued blocking — the
    /// director pins their match, and unsatisfiable directives unwind
    /// the rank instead of deadlocking it.
    directed: bool,
}

impl Replayer {
    pub(crate) fn new() -> Self {
        let mut comms = HashMap::new();
        comms.insert(0u64, CommHandle(0));
        Replayer {
            comms,
            pending_idups: Vec::new(),
            dtypes: HashMap::new(),
            groups: HashMap::new(),
            reqs: HashMap::new(),
            segs: HashMap::new(),
            directed: false,
        }
    }

    /// A replayer for directed (record/replay) mode.
    pub(crate) fn new_directed() -> Self {
        Replayer { directed: true, ..Self::new() }
    }

    fn comm(&mut self, sym: u64) -> CommHandle {
        if let Some(&h) = self.comms.get(&sym) {
            return h;
        }
        // First use of an unknown communicator: it must be the oldest
        // idup whose id was deferred at creation time.
        if !self.pending_idups.is_empty() {
            let h = self.pending_idups.remove(0);
            self.comms.insert(sym, h);
            return h;
        }
        panic!("replay references unknown communicator symbol {sym}");
    }

    fn dtype(&self, sym: u64) -> DatatypeHandle {
        if sym < 16 {
            return DatatypeHandle(sym as u32);
        }
        *self.dtypes.get(&sym).unwrap_or_else(|| panic!("unknown datatype symbol {sym}"))
    }

    /// Materializes a buffer for `(segment, offset)` covering `need`
    /// bytes past the offset, growing the backing segment if required.
    fn ptr(&mut self, env: &mut Env, seg: u64, offset: u64, need: u64) -> u64 {
        let required = offset + need.max(1);
        match self.segs.get(&seg) {
            Some(&(addr, size)) if size >= required => addr + offset,
            _ => {
                let size = required.next_power_of_two().max(64);
                let addr = env.malloc(size);
                self.segs.insert(seg, (addr, size));
                addr + offset
            }
        }
    }

    fn push_req(&mut self, sym: u64, h: RequestHandle) {
        self.reqs.entry(sym).or_default().push(h);
    }

    /// Takes one live handle for a symbol out of the map (FIFO).
    fn pop_req(&mut self, sym: u64) -> RequestHandle {
        match self.reqs.get_mut(&sym) {
            Some(v) if !v.is_empty() => v.remove(0),
            _ => REQUEST_NULL,
        }
    }

    /// Takes the handles for a completion call's request array.
    fn req_arr(&mut self, syms: &[Option<u64>]) -> (Vec<RequestHandle>, Vec<Option<u64>>) {
        let handles = syms.iter().map(|s| s.map_or(REQUEST_NULL, |v| self.pop_req(v))).collect();
        (handles, syms.to_vec())
    }

    /// Returns still-live handles (not completed by the call) to the map.
    fn sync_reqs(&mut self, handles: &[RequestHandle], syms: &[Option<u64>]) {
        for (h, s) in handles.iter().zip(syms) {
            if *h != REQUEST_NULL {
                if let Some(sym) = s {
                    self.push_req(*sym, *h);
                }
            }
        }
    }

    /// Issues one decoded call against the live environment.
    pub(crate) fn step(&mut self, env: &mut Env, call: &EncodedCall) {
        use EncodedArg as A;
        let func = FuncId::from_id(call.func).expect("known function id");
        let a = &call.args;
        // Helper projections.
        let int = |i: usize| -> i64 {
            match &a[i] {
                A::Int(v) => *v,
                other => panic!("expected Int at {i}, got {other:?}"),
            }
        };
        match func {
            FuncId::Init | FuncId::Finalize => {} // driven by the world
            FuncId::CommRank => {
                let c = self.arg_comm(0, a);
                let _ = env.comm_rank(c);
            }
            FuncId::CommSize => {
                let c = self.arg_comm(0, a);
                let _ = env.comm_size(c);
            }
            FuncId::CommSetName => {
                let c = self.arg_comm(0, a);
                if let A::Str(s) = &a[1] {
                    env.comm_set_name(c, s);
                }
            }
            FuncId::CommDup => {
                let c = self.arg_comm(0, a);
                let new = env.comm_dup(c);
                if let A::Comm(sym) = a[1] {
                    self.comms.insert(sym, new);
                }
            }
            FuncId::CommIdup => {
                let c = self.arg_comm(0, a);
                let (new, req) = env.comm_idup(c);
                self.pending_idups.push(new);
                if let A::Request(sym) = a[2] {
                    self.push_req(sym, req);
                }
            }
            FuncId::CommSplit => {
                let c = self.arg_comm(0, a);
                let me = env.comm_rank_untraced(c) as i64;
                let color = match &a[1] {
                    A::Color(v) => *v,
                    other => panic!("expected Color, got {other:?}"),
                };
                let key = match &a[2] {
                    A::Key(v) => *v,
                    other => panic!("expected Key, got {other:?}"),
                };
                // Relative-aux encoding stores color/key as deltas; the
                // default config stores them raw. Both decode the same
                // way here because the trace header says which was used.
                let _ = me;
                let new = env.comm_split(c, color as i32, key as i32);
                if let (Some(new), A::Comm(sym)) = (new, a[3].clone()) {
                    if sym != u64::MAX {
                        self.comms.insert(sym, new);
                    }
                }
            }
            FuncId::CommCreate => {
                let c = self.arg_comm(0, a);
                let g = match a[1] {
                    A::Group(sym) => *self.groups.get(&sym).expect("known group"),
                    _ => panic!("expected Group"),
                };
                let new = env.comm_create(c, g);
                if let (Some(new), A::Comm(sym)) = (new, a[2].clone()) {
                    if sym != u64::MAX {
                        self.comms.insert(sym, new);
                    }
                }
            }
            FuncId::CommFree => {
                if let A::Comm(sym) = a[0] {
                    let h = self.comm(sym);
                    env.comm_free(h);
                    self.comms.remove(&sym);
                }
            }
            FuncId::CommGroup => {
                let c = self.arg_comm(0, a);
                let g = env.comm_group(c);
                if let A::Group(sym) = a[1] {
                    self.groups.insert(sym, g);
                }
            }
            FuncId::GroupIncl => {
                let base = match a[0] {
                    A::Group(sym) => *self.groups.get(&sym).expect("known group"),
                    _ => panic!("expected Group"),
                };
                let ranks: Vec<usize> = match &a[2] {
                    A::IntArr(v) => v.iter().map(|&x| x as usize).collect(),
                    _ => panic!("expected IntArr"),
                };
                let g = env.group_incl(base, &ranks);
                if let A::Group(sym) = a[3] {
                    self.groups.insert(sym, g);
                }
            }
            FuncId::GroupFree => {
                if let A::Group(sym) = a[0] {
                    if let Some(g) = self.groups.remove(&sym) {
                        env.group_free(g);
                    }
                }
            }
            FuncId::IntercommCreate => {
                let local = self.arg_comm(0, a);
                let local_leader = self.arg_rank(1, a, env, local);
                let peer = self.arg_comm(2, a);
                let remote_leader = self.arg_rank(3, a, env, peer);
                let tag = match &a[4] {
                    A::Tag(t) => *t as i32,
                    _ => panic!("expected Tag"),
                };
                let new =
                    env.intercomm_create(local, local_leader as usize, peer, remote_leader, tag);
                if let A::Comm(sym) = a[5] {
                    self.comms.insert(sym, new);
                }
            }
            FuncId::IntercommMerge => {
                let inter = self.arg_comm(0, a);
                let high = int(1) != 0;
                let new = env.intercomm_merge(inter, high);
                if let A::Comm(sym) = a[2] {
                    self.comms.insert(sym, new);
                }
            }
            FuncId::TypeContiguous => {
                let base = self.dtype(self.arg_dtype_sym(1, a));
                let new = env.type_contiguous(int(0) as u64, base);
                self.dtypes.insert(self.arg_dtype_sym(2, a), new);
            }
            FuncId::TypeVector => {
                let base = self.dtype(self.arg_dtype_sym(3, a));
                let new = env.type_vector(int(0) as u64, int(1) as u64, int(2), base);
                self.dtypes.insert(self.arg_dtype_sym(4, a), new);
            }
            FuncId::TypeIndexed => {
                let (blocklens, displs) = match (&a[1], &a[2]) {
                    (A::IntArr(b), A::IntArr(d)) => {
                        (b.iter().map(|&x| x as u64).collect::<Vec<_>>(), d.clone())
                    }
                    _ => panic!("expected IntArr pair"),
                };
                let base = self.dtype(self.arg_dtype_sym(3, a));
                let new = env.type_indexed(&blocklens, &displs, base);
                self.dtypes.insert(self.arg_dtype_sym(4, a), new);
            }
            FuncId::TypeCreateStruct => {
                let (blocklens, displs, types) = match (&a[1], &a[2], &a[3]) {
                    (A::IntArr(b), A::IntArr(d), A::IntArr(t)) => (
                        b.iter().map(|&x| x as u64).collect::<Vec<_>>(),
                        d.clone(),
                        t.iter().map(|&x| DatatypeHandle(x as u32)).collect::<Vec<_>>(),
                    ),
                    _ => panic!("expected IntArr triple"),
                };
                let new = env.type_create_struct(&blocklens, &displs, &types);
                self.dtypes.insert(self.arg_dtype_sym(4, a), new);
            }
            FuncId::TypeCommit => env.type_commit(self.dtype(self.arg_dtype_sym(0, a))),
            FuncId::TypeFree => {
                let sym = self.arg_dtype_sym(0, a);
                let h = self.dtype(sym);
                env.type_free(h);
                self.dtypes.remove(&sym);
            }
            FuncId::DimsCreate => {
                let _ = env.dims_create(int(0) as usize, int(1) as usize);
            }
            FuncId::CartCreate => {
                let c = self.arg_comm(0, a);
                let (dims, periods) = self.arg_varr(2, 3, a);
                let dims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
                let periods: Vec<bool> = periods.iter().map(|&p| p != 0).collect();
                let new = env.cart_create(c, &dims, &periods, false);
                if let (Some(new), A::Comm(sym)) = (new, a[5].clone()) {
                    if sym != u64::MAX {
                        self.comms.insert(sym, new);
                    }
                }
            }
            FuncId::CartRank => {
                let c = self.arg_comm(0, a);
                if let A::IntArr(coords) = &a[1] {
                    let coords: Vec<usize> = coords.iter().map(|&x| x as usize).collect();
                    let _ = env.cart_rank(c, &coords);
                }
            }
            FuncId::CartCoords => {
                let c = self.arg_comm(0, a);
                let _ = env.cart_coords(c, int(1) as usize);
            }
            FuncId::CartShift => {
                let c = self.arg_comm(0, a);
                let _ = env.cart_shift(c, int(1) as usize, int(2));
            }
            FuncId::SendInit
            | FuncId::BsendInit
            | FuncId::SsendInit
            | FuncId::RsendInit
            | FuncId::RecvInit => {
                let comm = self.arg_comm(5, a);
                let count = int(1) as u64;
                let dt = self.dtype(self.arg_dtype_sym(2, a));
                let bytes = count * env.type_size(dt).max(1) * 2;
                let buf = self.arg_ptr(0, a, env, bytes);
                let peer = self.arg_rank(3, a, env, comm);
                let tag = self.arg_tag(4, a, env, comm);
                let req = match func {
                    FuncId::SendInit => env.send_init(buf, count, dt, peer, tag, comm),
                    FuncId::BsendInit => env.bsend_init(buf, count, dt, peer, tag, comm),
                    FuncId::SsendInit => env.ssend_init(buf, count, dt, peer, tag, comm),
                    FuncId::RsendInit => env.rsend_init(buf, count, dt, peer, tag, comm),
                    _ => env.recv_init(buf, count, dt, peer, tag, comm),
                };
                if let A::Request(sym) = a[6] {
                    self.push_req(sym, req);
                }
            }
            FuncId::Start => {
                if let A::Request(sym) = a[0] {
                    let h = self.pop_req(sym);
                    if h != REQUEST_NULL {
                        env.start(h);
                        self.push_req(sym, h);
                    }
                }
            }
            FuncId::Startall => {
                if let A::RequestArr(syms) = &a[1] {
                    let (handles, syms) = self.req_arr(syms);
                    let live: Vec<_> =
                        handles.iter().copied().filter(|&h| h != REQUEST_NULL).collect();
                    env.startall(&live);
                    self.sync_reqs(&handles, &syms);
                }
            }
            FuncId::Send | FuncId::Bsend | FuncId::Ssend | FuncId::Rsend => {
                let comm = self.arg_comm(5, a);
                let count = int(1) as u64;
                let dt = self.dtype(self.arg_dtype_sym(2, a));
                let bytes = count * env.type_size(dt).max(1) * 2;
                let buf = self.arg_ptr(0, a, env, bytes);
                let dest = self.arg_rank(1 + 2, a, env, comm);
                let tag = self.arg_tag(4, a, env, comm);
                match func {
                    FuncId::Send => env.send(buf, count, dt, dest, tag, comm),
                    FuncId::Bsend => env.bsend(buf, count, dt, dest, tag, comm),
                    FuncId::Ssend => env.ssend(buf, count, dt, dest, tag, comm),
                    _ => env.rsend(buf, count, dt, dest, tag, comm),
                }
            }
            FuncId::Recv => {
                let comm = self.arg_comm(5, a);
                let count = int(1) as u64;
                let dt = self.dtype(self.arg_dtype_sym(2, a));
                let bytes = count * env.type_size(dt).max(1) * 2;
                let buf = self.arg_ptr(0, a, env, bytes);
                let src = self.arg_rank(3, a, env, comm);
                let tag = self.arg_tag(4, a, env, comm);
                env.recv(buf, count, dt, src, tag, comm);
            }
            FuncId::Isend | FuncId::Ibsend | FuncId::Issend | FuncId::Irsend | FuncId::Irecv => {
                let comm = self.arg_comm(5, a);
                let count = int(1) as u64;
                let dt = self.dtype(self.arg_dtype_sym(2, a));
                let bytes = count * env.type_size(dt).max(1) * 2;
                let buf = self.arg_ptr(0, a, env, bytes);
                let peer = self.arg_rank(3, a, env, comm);
                let tag = self.arg_tag(4, a, env, comm);
                let req = match func {
                    FuncId::Isend => env.isend(buf, count, dt, peer, tag, comm),
                    FuncId::Ibsend => env.ibsend(buf, count, dt, peer, tag, comm),
                    FuncId::Issend => env.issend(buf, count, dt, peer, tag, comm),
                    FuncId::Irsend => env.irsend(buf, count, dt, peer, tag, comm),
                    _ => env.irecv(buf, count, dt, peer, tag, comm),
                };
                if let A::Request(sym) = a[6] {
                    self.push_req(sym, req);
                }
            }
            FuncId::Sendrecv => {
                let comm = self.arg_comm(10, a);
                let scount = int(1) as u64;
                let sdt = self.dtype(self.arg_dtype_sym(2, a));
                let sbytes = scount * env.type_size(sdt).max(1) * 2;
                let sbuf = self.arg_ptr(0, a, env, sbytes);
                let dest = self.arg_rank(3, a, env, comm);
                let stag = self.arg_tag(4, a, env, comm);
                let rcount = int(6) as u64;
                let rdt = self.dtype(self.arg_dtype_sym(7, a));
                let rbytes = rcount * env.type_size(rdt).max(1) * 2;
                let rbuf = self.arg_ptr(5, a, env, rbytes);
                let src = self.arg_rank(8, a, env, comm);
                let rtag = self.arg_tag(9, a, env, comm);
                env.sendrecv(sbuf, scount, sdt, dest, stag, rbuf, rcount, rdt, src, rtag, comm);
            }
            FuncId::SendrecvReplace => {
                let comm = self.arg_comm(7, a);
                let count = int(1) as u64;
                let dt = self.dtype(self.arg_dtype_sym(2, a));
                let bytes = count * env.type_size(dt).max(1) * 2;
                let buf = self.arg_ptr(0, a, env, bytes);
                let dest = self.arg_rank(3, a, env, comm);
                let stag = self.arg_tag(4, a, env, comm);
                let src = self.arg_rank(5, a, env, comm);
                let rtag = self.arg_tag(6, a, env, comm);
                env.sendrecv_replace(buf, count, dt, dest, stag, src, rtag, comm);
            }
            FuncId::Probe | FuncId::Iprobe => {
                // Probes are timing-sensitive: replay as non-blocking so a
                // different interleaving cannot deadlock. Under a director
                // the recorded resolution pins the match, so a blocking
                // probe is safe (and required for a bit-identical retrace).
                let comm = self.arg_comm(2, a);
                let src = self.arg_rank(0, a, env, comm);
                let tag = self.arg_tag(1, a, env, comm);
                if self.directed && func == FuncId::Probe {
                    let _ = env.probe(src, tag, comm);
                } else {
                    let _ = env.iprobe(src, tag, comm);
                }
            }
            FuncId::Wait => {
                if let A::Request(sym) = a[0] {
                    let mut h = self.pop_req(sym);
                    env.wait(&mut h);
                    if h != REQUEST_NULL {
                        // Persistent requests stay valid after completion.
                        self.push_req(sym, h);
                    }
                }
            }
            FuncId::Waitall => {
                if let A::RequestArr(syms) = &a[1] {
                    let (mut handles, syms) = self.req_arr(syms);
                    env.waitall(&mut handles);
                    self.sync_reqs(&handles, &syms);
                }
            }
            FuncId::Waitany => {
                if let A::RequestArr(syms) = &a[1] {
                    let (mut handles, syms) = self.req_arr(syms);
                    env.waitany(&mut handles);
                    self.sync_reqs(&handles, &syms);
                }
            }
            FuncId::Waitsome => {
                if let A::RequestArr(syms) = &a[1] {
                    let (mut handles, syms) = self.req_arr(syms);
                    env.waitsome(&mut handles);
                    self.sync_reqs(&handles, &syms);
                }
            }
            FuncId::Test | FuncId::Testall | FuncId::Testany | FuncId::Testsome => {
                // Re-drive the test nondeterministically.
                match &a[0..2] {
                    [A::Request(sym), _] => {
                        let mut h = self.pop_req(*sym);
                        env.test(&mut h);
                        if h != REQUEST_NULL {
                            self.push_req(*sym, h);
                        }
                    }
                    [_, A::RequestArr(syms)] => {
                        let (mut handles, syms) = self.req_arr(syms);
                        match func {
                            FuncId::Testall => {
                                env.testall(&mut handles);
                            }
                            FuncId::Testany => {
                                env.testany(&mut handles);
                            }
                            _ => {
                                env.testsome(&mut handles);
                            }
                        }
                        self.sync_reqs(&handles, &syms);
                    }
                    _ => {}
                }
            }
            FuncId::RequestFree => {
                if let A::Request(sym) = a[0] {
                    let mut h = self.pop_req(sym);
                    if h != REQUEST_NULL {
                        env.request_free(&mut h);
                    }
                }
            }
            FuncId::Barrier => env.barrier(self.arg_comm(0, a)),
            FuncId::Ibarrier => {
                let req = env.ibarrier(self.arg_comm(0, a));
                if let A::Request(sym) = a[1] {
                    self.push_req(sym, req);
                }
            }
            FuncId::Bcast => {
                let comm = self.arg_comm(4, a);
                let count = int(1) as u64;
                let dt = self.dtype(self.arg_dtype_sym(2, a));
                let bytes = count * env.type_size(dt).max(1) * 2;
                let buf = self.arg_ptr(0, a, env, bytes);
                let root = self.arg_rank(3, a, env, comm);
                env.bcast(buf, count, dt, root, comm);
            }
            FuncId::Reduce
            | FuncId::Allreduce
            | FuncId::Iallreduce
            | FuncId::Scan
            | FuncId::Exscan => {
                let (comm_idx, has_root) = match func {
                    FuncId::Reduce => (6, true),
                    FuncId::Iallreduce => (5, false),
                    _ => (5, false),
                };
                let comm = self.arg_comm(comm_idx, a);
                let count = int(2) as u64;
                let dt = self.dtype(self.arg_dtype_sym(3, a));
                let bytes = count * env.type_size(dt).max(8) * 2;
                let sbuf = self.arg_ptr(0, a, env, bytes);
                let rbuf = self.arg_ptr(1, a, env, bytes);
                let op = match a[4] {
                    A::Op(o) => ReduceOp::from_id(o).expect("known op"),
                    _ => panic!("expected Op"),
                };
                match func {
                    FuncId::Reduce => {
                        let root = self.arg_rank(5, a, env, comm);
                        let _ = has_root;
                        env.reduce(sbuf, rbuf, count, dt, op, root, comm);
                    }
                    FuncId::Allreduce => env.allreduce(sbuf, rbuf, count, dt, op, comm),
                    FuncId::Iallreduce => {
                        let req = env.iallreduce(sbuf, rbuf, count, dt, op, comm);
                        if let A::Request(sym) = a[6] {
                            self.push_req(sym, req);
                        }
                    }
                    FuncId::Scan => env.scan(sbuf, rbuf, count, dt, op, comm),
                    _ => env.exscan(sbuf, rbuf, count, dt, op, comm),
                }
            }
            FuncId::Gather | FuncId::Scatter | FuncId::Allgather | FuncId::Alltoall => {
                let (comm_idx, root_idx) = match func {
                    FuncId::Gather | FuncId::Scatter => (7usize, Some(6usize)),
                    _ => (6, None),
                };
                let comm = self.arg_comm(comm_idx, a);
                let n = env.comm_size_untraced(comm) as u64;
                let scount = int(1) as u64;
                let sdt = self.dtype(self.arg_dtype_sym(2, a));
                let rcount = int(4) as u64;
                let rdt = self.dtype(self.arg_dtype_sym(5, a));
                let sbytes = scount * env.type_size(sdt).max(1) * n * 2;
                let rbytes = rcount * env.type_size(rdt).max(1) * n * 2;
                let sbuf = self.arg_ptr(0, a, env, sbytes);
                let rbuf = self.arg_ptr(3, a, env, rbytes);
                match func {
                    FuncId::Gather => {
                        let root = self.arg_rank(root_idx.expect("gather root"), a, env, comm);
                        env.gather(sbuf, scount, sdt, rbuf, rcount, rdt, root, comm);
                    }
                    FuncId::Scatter => {
                        let root = self.arg_rank(root_idx.expect("scatter root"), a, env, comm);
                        env.scatter(sbuf, scount, sdt, rbuf, rcount, rdt, root, comm);
                    }
                    FuncId::Allgather => env.allgather(sbuf, scount, sdt, rbuf, rcount, rdt, comm),
                    _ => env.alltoall(sbuf, scount, sdt, rbuf, rcount, rdt, comm),
                }
            }
            FuncId::Gatherv => {
                let comm = self.arg_comm(8, a);
                let scount = int(1) as u64;
                let sdt = self.dtype(self.arg_dtype_sym(2, a));
                let rdt = self.dtype(self.arg_dtype_sym(6, a));
                let (rcounts, displs) = self.arg_varr(4, 5, a);
                let total: u64 = rcounts.iter().sum::<u64>().max(1);
                let sbuf = self.arg_ptr(0, a, env, scount * env.type_size(sdt).max(1) * 2);
                let rbuf = self.arg_ptr(3, a, env, total * env.type_size(rdt).max(1) * 4);
                let root = self.arg_rank(7, a, env, comm);
                env.gatherv(sbuf, scount, sdt, rbuf, &rcounts, &displs, rdt, root, comm);
            }
            FuncId::Scatterv => {
                let comm = self.arg_comm(8, a);
                let (scounts, displs) = self.arg_varr(1, 2, a);
                let sdt = self.dtype(self.arg_dtype_sym(3, a));
                let rcount = int(5) as u64;
                let rdt = self.dtype(self.arg_dtype_sym(6, a));
                let total: u64 = scounts.iter().sum::<u64>().max(1);
                let sbuf = self.arg_ptr(0, a, env, total * env.type_size(sdt).max(1) * 4);
                let rbuf = self.arg_ptr(4, a, env, rcount * env.type_size(rdt).max(1) * 2);
                let root = self.arg_rank(7, a, env, comm);
                env.scatterv(sbuf, &scounts, &displs, sdt, rbuf, rcount, rdt, root, comm);
            }
            FuncId::Allgatherv => {
                let comm = self.arg_comm(7, a);
                let scount = int(1) as u64;
                let sdt = self.dtype(self.arg_dtype_sym(2, a));
                let (rcounts, displs) = self.arg_varr(4, 5, a);
                let rdt = self.dtype(self.arg_dtype_sym(6, a));
                let total: u64 = rcounts.iter().sum::<u64>().max(1);
                let sbuf = self.arg_ptr(0, a, env, scount * env.type_size(sdt).max(1) * 2);
                let rbuf = self.arg_ptr(3, a, env, total * env.type_size(rdt).max(1) * 4);
                env.allgatherv(sbuf, scount, sdt, rbuf, &rcounts, &displs, rdt, comm);
            }
            FuncId::Alltoallv => {
                let comm = self.arg_comm(8, a);
                let (scounts, sdispls) = self.arg_varr(1, 2, a);
                let sdt = self.dtype(self.arg_dtype_sym(3, a));
                let (rcounts, rdispls) = self.arg_varr(5, 6, a);
                let rdt = self.dtype(self.arg_dtype_sym(7, a));
                let stotal: u64 = scounts.iter().sum::<u64>().max(1);
                let rtotal: u64 = rcounts.iter().sum::<u64>().max(1);
                let sbuf = self.arg_ptr(0, a, env, stotal * env.type_size(sdt).max(1) * 4);
                let rbuf = self.arg_ptr(4, a, env, rtotal * env.type_size(rdt).max(1) * 4);
                env.alltoallv(sbuf, &scounts, &sdispls, sdt, rbuf, &rcounts, &rdispls, rdt, comm);
            }
            FuncId::ReduceScatterBlock => {
                let comm = self.arg_comm(5, a);
                let n = env.comm_size_untraced(comm) as u64;
                let count = int(2) as u64;
                let dt = self.dtype(self.arg_dtype_sym(3, a));
                let sbuf = self.arg_ptr(0, a, env, count * n * env.type_size(dt).max(8) * 2);
                let rbuf = self.arg_ptr(1, a, env, count * env.type_size(dt).max(8) * 2);
                let op = match a[4] {
                    A::Op(o) => ReduceOp::from_id(o).expect("known op"),
                    _ => panic!("expected Op"),
                };
                env.reduce_scatter_block(sbuf, rbuf, count, dt, op, comm);
            }
        }
    }

    /// Completes any still-pending requests (a replay may leave requests
    /// live when the recorded nondeterministic outcome differed).
    pub(crate) fn drain(&mut self, env: &mut Env) {
        let mut handles: Vec<RequestHandle> = self.reqs.values().flatten().copied().collect();
        if !handles.is_empty() {
            env.waitall(&mut handles);
        }
        self.reqs.clear();
    }

    // -- argument projections --------------------------------------------

    fn arg_comm(&mut self, i: usize, a: &[EncodedArg]) -> CommHandle {
        match a[i] {
            EncodedArg::Comm(sym) => self.comm(sym),
            ref other => panic!("expected Comm at {i}, got {other:?}"),
        }
    }

    fn arg_dtype_sym(&self, i: usize, a: &[EncodedArg]) -> u64 {
        match a[i] {
            EncodedArg::Datatype(sym) => sym,
            ref other => panic!("expected Datatype at {i}, got {other:?}"),
        }
    }

    fn arg_rank(&self, i: usize, a: &[EncodedArg], env: &Env, comm: CommHandle) -> i32 {
        match a[i] {
            EncodedArg::Rank(code) => code.absolutize(env.comm_rank_untraced(comm) as i64) as i32,
            ref other => panic!("expected Rank at {i}, got {other:?}"),
        }
    }

    fn arg_tag(&self, i: usize, a: &[EncodedArg], env: &Env, comm: CommHandle) -> i32 {
        match &a[i] {
            EncodedArg::Tag(t) => {
                // Tags are stored raw under the default config.
                let _ = env;
                let _ = comm;
                *t as i32
            }
            other => panic!("expected Tag at {i}, got {other:?}"),
        }
    }

    fn arg_ptr(&mut self, i: usize, a: &[EncodedArg], env: &mut Env, need: u64) -> u64 {
        match a[i] {
            EncodedArg::Ptr { segment, offset } => self.ptr(env, segment, offset, need),
            ref other => panic!("expected Ptr at {i}, got {other:?}"),
        }
    }

    fn arg_varr(&self, ci: usize, di: usize, a: &[EncodedArg]) -> (Vec<u64>, Vec<i64>) {
        match (&a[ci], &a[di]) {
            (EncodedArg::IntArr(c), EncodedArg::IntArr(d)) => {
                (c.iter().map(|&x| x as u64).collect(), d.clone())
            }
            _ => panic!("expected count/displ arrays"),
        }
    }
}

/// Convenience wrapper: replay with a default Pilgrim re-trace.
pub fn replay(trace: &GlobalTrace) -> GlobalTrace {
    replay_and_retrace(trace, PilgrimConfig::default())
}

// Ranks in `RankCode` wildcards pass through `absolutize`.
#[allow(unused_imports)]
use RankCode as _RankCodeUsed;
