//! An AVL tree keyed by segment start address, used to track live memory
//! segments (paper §3.3.3): lookups find the segment *containing* a given
//! address in O(log N).

/// Arena-based AVL tree mapping `start -> (size, payload)`.
#[derive(Debug, Clone)]
pub struct AvlTree<T> {
    nodes: Vec<AvlNode<T>>,
    free: Vec<usize>,
    root: Option<usize>,
    len: usize,
}

#[derive(Debug, Clone)]
struct AvlNode<T> {
    start: u64,
    size: u64,
    value: T,
    left: Option<usize>,
    right: Option<usize>,
    height: i32,
}

impl<T> Default for AvlTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AvlTree<T> {
    pub fn new() -> Self {
        AvlTree { nodes: Vec::new(), free: Vec::new(), root: None, len: 0 }
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn height(&self, n: Option<usize>) -> i32 {
        n.map_or(0, |i| self.nodes[i].height)
    }

    fn update(&mut self, i: usize) {
        let h = 1 + self.height(self.nodes[i].left).max(self.height(self.nodes[i].right));
        self.nodes[i].height = h;
    }

    fn balance_factor(&self, i: usize) -> i32 {
        self.height(self.nodes[i].left) - self.height(self.nodes[i].right)
    }

    fn rotate_right(&mut self, y: usize) -> usize {
        let x = self.nodes[y].left.expect("rotate_right without left child");
        self.nodes[y].left = self.nodes[x].right;
        self.nodes[x].right = Some(y);
        self.update(y);
        self.update(x);
        x
    }

    fn rotate_left(&mut self, x: usize) -> usize {
        let y = self.nodes[x].right.expect("rotate_left without right child");
        self.nodes[x].right = self.nodes[y].left;
        self.nodes[y].left = Some(x);
        self.update(x);
        self.update(y);
        y
    }

    fn rebalance(&mut self, i: usize) -> usize {
        self.update(i);
        let bf = self.balance_factor(i);
        if bf > 1 {
            if self.balance_factor(self.nodes[i].left.unwrap()) < 0 {
                let l = self.nodes[i].left.unwrap();
                let nl = self.rotate_left(l);
                self.nodes[i].left = Some(nl);
            }
            self.rotate_right(i)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[i].right.unwrap()) > 0 {
                let r = self.nodes[i].right.unwrap();
                let nr = self.rotate_right(r);
                self.nodes[i].right = Some(nr);
            }
            self.rotate_left(i)
        } else {
            i
        }
    }

    /// Inserts a segment `[start, start+size)`. Panics on duplicate starts
    /// (the allocator never hands out the same live address twice).
    pub fn insert(&mut self, start: u64, size: u64, value: T) {
        let node = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = AvlNode { start, size, value, left: None, right: None, height: 1 };
                i
            }
            None => {
                self.nodes.push(AvlNode { start, size, value, left: None, right: None, height: 1 });
                self.nodes.len() - 1
            }
        };
        self.root = Some(self.insert_at(self.root, node));
        self.len += 1;
    }

    fn insert_at(&mut self, at: Option<usize>, node: usize) -> usize {
        let Some(i) = at else { return node };
        let key = self.nodes[node].start;
        if key < self.nodes[i].start {
            let child = self.insert_at(self.nodes[i].left, node);
            self.nodes[i].left = Some(child);
        } else if key > self.nodes[i].start {
            let child = self.insert_at(self.nodes[i].right, node);
            self.nodes[i].right = Some(child);
        } else {
            panic!("duplicate segment start {key:#x}");
        }
        self.rebalance(i)
    }

    /// Finds the segment containing `addr`, returning
    /// `(start, size, &value)`.
    pub fn find_containing(&self, addr: u64) -> Option<(u64, u64, &T)> {
        let mut cur = self.root;
        let mut best: Option<usize> = None;
        while let Some(i) = cur {
            if self.nodes[i].start <= addr {
                best = Some(i);
                cur = self.nodes[i].right;
            } else {
                cur = self.nodes[i].left;
            }
        }
        let i = best?;
        let n = &self.nodes[i];
        (addr < n.start + n.size).then_some((n.start, n.size, &n.value))
    }

    /// Removes the segment starting exactly at `start`, returning its value.
    pub fn remove(&mut self, start: u64) -> Option<T>
    where
        T: Clone,
    {
        let (root, removed) = self.remove_at(self.root, start);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, at: Option<usize>, key: u64) -> (Option<usize>, Option<T>)
    where
        T: Clone,
    {
        let Some(i) = at else { return (None, None) };
        let removed;
        let mut node = i;
        if key < self.nodes[i].start {
            let (child, r) = self.remove_at(self.nodes[i].left, key);
            self.nodes[i].left = child;
            removed = r;
        } else if key > self.nodes[i].start {
            let (child, r) = self.remove_at(self.nodes[i].right, key);
            self.nodes[i].right = child;
            removed = r;
        } else {
            removed = Some(self.nodes[i].value.clone());
            match (self.nodes[i].left, self.nodes[i].right) {
                (None, None) => {
                    self.free.push(i);
                    return (None, removed);
                }
                (Some(c), None) | (None, Some(c)) => {
                    self.free.push(i);
                    return (Some(c), removed);
                }
                (Some(_), Some(r)) => {
                    // Replace with in-order successor.
                    let mut s = r;
                    while let Some(l) = self.nodes[s].left {
                        s = l;
                    }
                    let (succ_start, succ_size) = (self.nodes[s].start, self.nodes[s].size);
                    let succ_val = self.nodes[s].value.clone();
                    let (child, _) = self.remove_at(self.nodes[i].right, succ_start);
                    self.nodes[i].right = child;
                    self.nodes[i].start = succ_start;
                    self.nodes[i].size = succ_size;
                    self.nodes[i].value = succ_val;
                }
            }
        }
        node = self.rebalance(node);
        (Some(node), removed)
    }

    /// Start keys of all segments whose start lies in `[lo, hi)`, in
    /// ascending order. Traversal is pruned by the BST order, so this is
    /// O(log N + K) for K matches.
    pub fn keys_in_range(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.range_walk(self.root, lo, hi, &mut out);
        out
    }

    fn range_walk(&self, at: Option<usize>, lo: u64, hi: u64, out: &mut Vec<u64>) {
        let Some(i) = at else { return };
        let start = self.nodes[i].start;
        if start >= lo {
            self.range_walk(self.nodes[i].left, lo, hi, out);
            if start < hi {
                out.push(start);
            }
        }
        if start < hi {
            self.range_walk(self.nodes[i].right, lo, hi, out);
        }
    }

    /// In-order traversal (ascending start address).
    pub fn iter(&self) -> Vec<(u64, u64, &T)> {
        let mut out = Vec::with_capacity(self.len);
        self.walk(self.root, &mut out);
        out
    }

    fn walk<'a>(&'a self, at: Option<usize>, out: &mut Vec<(u64, u64, &'a T)>) {
        if let Some(i) = at {
            self.walk(self.nodes[i].left, out);
            out.push((self.nodes[i].start, self.nodes[i].size, &self.nodes[i].value));
            self.walk(self.nodes[i].right, out);
        }
    }

    /// Validates AVL invariants (tests only).
    #[doc(hidden)]
    pub fn validate(&self) {
        fn check<T>(t: &AvlTree<T>, at: Option<usize>, lo: Option<u64>, hi: Option<u64>) -> i32 {
            let Some(i) = at else { return 0 };
            let n = &t.nodes[i];
            if let Some(lo) = lo {
                assert!(n.start > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(n.start < hi, "BST order violated");
            }
            let hl = check(t, n.left, lo, Some(n.start));
            let hr = check(t, n.right, Some(n.start), hi);
            assert!((hl - hr).abs() <= 1, "AVL balance violated at {:#x}", n.start);
            let h = 1 + hl.max(hr);
            assert_eq!(h, n.height, "stale height at {:#x}", n.start);
            h
        }
        check(self, self.root, None, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_find_remove_basic() {
        let mut t = AvlTree::new();
        t.insert(100, 50, "a");
        t.insert(200, 10, "b");
        t.validate();
        assert_eq!(t.find_containing(100), Some((100, 50, &"a")));
        assert_eq!(t.find_containing(149), Some((100, 50, &"a")));
        assert_eq!(t.find_containing(150), None);
        assert_eq!(t.find_containing(205), Some((200, 10, &"b")));
        assert_eq!(t.remove(100), Some("a"));
        t.validate();
        assert_eq!(t.find_containing(120), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stays_balanced_under_sequential_insert() {
        let mut t = AvlTree::new();
        for i in 0..1000u64 {
            t.insert(i * 16, 16, i);
        }
        t.validate();
        for i in 0..1000u64 {
            assert_eq!(t.find_containing(i * 16 + 7), Some((i * 16, 16, &i)));
        }
    }

    #[test]
    fn matches_btreemap_model_under_random_ops() {
        // Deterministic pseudo-random insert/remove/query mix.
        let mut t = AvlTree::new();
        let mut model: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut state = 0xabcdefu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..3000 {
            let op = next() % 3;
            if op == 0 || model.len() < 4 {
                let start = (next() % 1000) * 64;
                let size = 16 + next() % 48;
                model.entry(start).or_insert_with(|| {
                    t.insert(start, size, step as u64);
                    (size, step as u64)
                });
            } else if op == 1 {
                let keys: Vec<u64> = model.keys().copied().collect();
                let k = keys[(next() as usize) % keys.len()];
                let expect = model.remove(&k).map(|(_, v)| v);
                assert_eq!(t.remove(k), expect);
            } else {
                let addr = next() % 64_000;
                let expect = model
                    .range(..=addr)
                    .next_back()
                    .filter(|(s, (sz, _))| addr < *s + *sz)
                    .map(|(s, (sz, v))| (*s, *sz, v));
                let got = t.find_containing(addr);
                assert_eq!(got.map(|(s, sz, &v)| (s, sz, v)), expect.map(|(s, sz, &v)| (s, sz, v)));
            }
            if step % 100 == 0 {
                t.validate();
            }
        }
        t.validate();
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t: AvlTree<u32> = AvlTree::new();
        assert_eq!(t.remove(5), None);
        t.insert(10, 5, 1);
        assert_eq!(t.remove(11), None, "remove requires exact start");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_is_ordered() {
        let mut t = AvlTree::new();
        for &s in &[50u64, 10, 90, 30, 70] {
            t.insert(s, 5, ());
        }
        let starts: Vec<u64> = t.iter().iter().map(|&(s, _, _)| s).collect();
        assert_eq!(starts, vec![10, 30, 50, 70, 90]);
    }

    #[test]
    fn keys_in_range_matches_model() {
        let mut t = AvlTree::new();
        for &s in &[50u64, 10, 90, 30, 70, 110, 20] {
            t.insert(s, 5, ());
        }
        assert_eq!(t.keys_in_range(20, 90), vec![20, 30, 50, 70]);
        assert_eq!(t.keys_in_range(0, 15), vec![10]);
        assert_eq!(t.keys_in_range(95, 100), Vec::<u64>::new());
        assert_eq!(t.keys_in_range(0, u64::MAX), vec![10, 20, 30, 50, 70, 90, 110]);
    }

    #[test]
    fn node_reuse_after_remove() {
        let mut t = AvlTree::new();
        for i in 0..100u64 {
            t.insert(i * 8, 8, i);
        }
        for i in 0..100u64 {
            t.remove(i * 8);
        }
        assert!(t.is_empty());
        for i in 0..100u64 {
            t.insert(i * 8, 8, i);
        }
        t.validate();
        assert_eq!(t.nodes.len(), 100, "arena slots must be reused");
    }
}
